//! Synthetic UMass-campus YouTube trace (Fig. 11).
//!
//! The paper plots requests-per-interval across a day of campus-gateway
//! YouTube traffic and calls out three representative features it then
//! stresses HotC with:
//!
//! 1. "a burst from 20 requests to 300 requests at T710",
//! 2. "the request keeps decreasing in the afternoon from T800 to T1200",
//! 3. "the throughput increases from T1200 to T1400 at night".
//!
//! The original trace is not redistributable, so this generator synthesizes
//! a rate series over time indices `0..length` with exactly those features
//! plus multiplicative noise, and can expand the rates into Poisson arrivals.

use crate::Arrival;
use simclock::{SimDuration, SimRng, SimTime};

/// Parameters of the synthetic trace.
#[derive(Debug, Clone)]
pub struct YoutubeTraceParams {
    /// Number of time indices (the paper's day spans ~1440 minute indices).
    pub length: usize,
    /// Baseline request level in the early morning.
    pub base_level: f64,
    /// Level immediately before the burst.
    pub pre_burst_level: f64,
    /// Peak level of the T710 burst.
    pub burst_peak: f64,
    /// Level the afternoon decline bottoms out at (by T1200).
    pub evening_trough: f64,
    /// Level the night rise reaches (by T1400).
    pub night_peak: f64,
    /// Multiplicative noise spread (e.g. 0.08 = ±8 %).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YoutubeTraceParams {
    fn default() -> Self {
        YoutubeTraceParams {
            length: 1440,
            base_level: 15.0,
            pre_burst_level: 20.0,
            burst_peak: 300.0,
            evening_trough: 40.0,
            night_peak: 150.0,
            noise: 0.08,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// Generates the requests-per-index rate series.
///
/// Shape: flat base (0–T600) → climb to `pre_burst_level` (T600–T700) →
/// sharp burst to `burst_peak` at T710, holding through T800 → linear decline
/// to `evening_trough` at T1200 → linear rise to `night_peak` at T1400 →
/// gentle decay to the end.
pub fn youtube_trace(params: &YoutubeTraceParams) -> Vec<f64> {
    assert!(params.length > 0, "trace length must be positive");
    let mut rng = SimRng::seeded(params.seed);
    let p = params;
    // Anchor indices scaled to the configured length (paper anchors assume
    // a 1440-index day).
    let scale = p.length as f64 / 1440.0;
    let idx = |t: f64| (t * scale) as usize;
    let (t600, t700, t710, t800, t1200, t1400) = (
        idx(600.0),
        idx(700.0),
        idx(710.0),
        idx(800.0),
        idx(1200.0),
        idx(1400.0),
    );

    let lerp = |a: f64, b: f64, frac: f64| a + (b - a) * frac;
    let mut out = Vec::with_capacity(p.length);
    for i in 0..p.length {
        let level = if i < t600 {
            p.base_level
        } else if i < t700 {
            lerp(
                p.base_level,
                p.pre_burst_level,
                (i - t600) as f64 / (t700 - t600).max(1) as f64,
            )
        } else if i < t710 {
            // The burst front: 20 → 300 in ten indices.
            lerp(
                p.pre_burst_level,
                p.burst_peak,
                (i - t700) as f64 / (t710 - t700).max(1) as f64,
            )
        } else if i < t800 {
            p.burst_peak
        } else if i < t1200 {
            lerp(
                p.burst_peak,
                p.evening_trough,
                (i - t800) as f64 / (t1200 - t800).max(1) as f64,
            )
        } else if i < t1400 {
            lerp(
                p.evening_trough,
                p.night_peak,
                (i - t1200) as f64 / (t1400 - t1200).max(1) as f64,
            )
        } else {
            lerp(
                p.night_peak,
                p.night_peak * 0.7,
                (i - t1400) as f64 / (p.length - t1400).max(1) as f64,
            )
        };
        out.push((level * rng.jitter(p.noise)).max(0.0));
    }
    out
}

/// Expands a rate series into Poisson arrivals: index `i` covers virtual
/// window `[i·width, (i+1)·width)` with `rates[i]` expected requests.
pub fn expand_to_arrivals(
    rates: &[f64],
    index_width: SimDuration,
    config_id: usize,
    seed: u64,
) -> Vec<Arrival> {
    let mut rng = SimRng::seeded(seed);
    let mut out = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let n = rng.poisson(rate);
        let start = SimTime::ZERO + index_width * i as u64;
        let mut offsets: Vec<u64> = (0..n)
            .map(|_| rng.uniform_u64(0, index_width.as_nanos().max(1)))
            .collect();
        // Offsets are plain u64s, so `sort_unstable` is already a total
        // order here; equal offsets are indistinguishable and all map to the
        // same config_id, satisfying the (at, config_id, seq) merge order.
        offsets.sort_unstable();
        out.extend(offsets.into_iter().map(|off| Arrival {
            at: start + SimDuration::from_nanos(off),
            config_id,
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_time_ordered;

    #[test]
    fn trace_has_the_three_features() {
        let p = YoutubeTraceParams {
            noise: 0.0,
            ..Default::default()
        };
        let trace = youtube_trace(&p);
        assert_eq!(trace.len(), 1440);

        // Feature 1: burst 20 → 300 at T710.
        assert!((trace[700] - 20.0).abs() < 2.0, "pre-burst {}", trace[700]);
        assert!((trace[710] - 300.0).abs() < 2.0, "peak {}", trace[710]);

        // Feature 2: monotone decline T800 → T1200.
        assert!(trace[800] > trace[1000] && trace[1000] > trace[1199]);
        assert!((trace[1199] - 40.0).abs() < 3.0);

        // Feature 3: rise T1200 → T1400.
        assert!(trace[1399] > trace[1200] * 2.0);
    }

    #[test]
    fn noise_preserves_shape() {
        let trace = youtube_trace(&YoutubeTraceParams::default());
        // Peak region is still far above base region despite noise.
        let peak: f64 = trace[710..790].iter().sum::<f64>() / 80.0;
        let base: f64 = trace[0..500].iter().sum::<f64>() / 500.0;
        assert!(peak > base * 10.0);
        // Determinism.
        assert_eq!(trace, youtube_trace(&YoutubeTraceParams::default()));
    }

    #[test]
    fn scaled_length_keeps_anchors() {
        let p = YoutubeTraceParams {
            length: 288, // 5-minute indices
            noise: 0.0,
            ..Default::default()
        };
        let trace = youtube_trace(&p);
        assert_eq!(trace.len(), 288);
        let t710 = 710 * 288 / 1440;
        assert!((trace[t710] - 300.0).abs() < 40.0, "peak {}", trace[t710]);
    }

    #[test]
    fn expand_matches_rates_roughly() {
        let rates = vec![50.0; 20];
        let arr = expand_to_arrivals(&rates, SimDuration::from_secs(60), 0, 7);
        assert!(is_time_ordered(&arr));
        let total = arr.len() as f64;
        assert!((800.0..1200.0).contains(&total), "total={total}");
        // All arrivals inside the horizon.
        assert!(arr
            .iter()
            .all(|a| a.at < SimTime::ZERO + SimDuration::from_secs(60) * 20));
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn empty_trace_rejected() {
        let p = YoutubeTraceParams {
            length: 0,
            ..Default::default()
        };
        let _ = youtube_trace(&p);
    }
}
