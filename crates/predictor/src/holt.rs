//! Holt's double exponential smoothing (trend-aware ES).
//!
//! §IV-C notes that plain exponential smoothing "is suitable for predicting
//! data that has no obvious trend" — its forecast chronically lags ramps.
//! Holt's method keeps a second smoothed *trend* term and projects it one
//! step ahead:
//!
//! ```text
//! level_t = α·x_t + (1-α)·(level_{t-1} + trend_{t-1})
//! trend_t = β·(level_t - level_{t-1}) + (1-β)·trend_{t-1}
//! forecast = level_t + trend_t
//! ```
//!
//! Included as an additional baseline for the Fig. 10 comparison: on linear
//! ramps Holt beats both plain ES and the Markov correction; on jumpy
//! regime-switching demand the trend term overshoots, which is exactly why
//! the paper pairs ES with a Markov chain instead.

use crate::Predictor;

use stdshim::{JsonValue, ToJson};
/// Holt's linear (double) exponential smoothing.
#[derive(Debug, Clone)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    level: Option<f64>,
    trend: f64,
    observations: usize,
}

impl Holt {
    /// Creates the predictor.
    ///
    /// # Panics
    /// Panics unless both coefficients are in `(0, 1)`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        assert!(
            beta > 0.0 && beta < 1.0,
            "beta must be in (0,1), got {beta}"
        );
        Holt {
            alpha,
            beta,
            level: None,
            trend: 0.0,
            observations: 0,
        }
    }

    /// The current trend estimate (change per step).
    pub fn trend(&self) -> f64 {
        self.trend
    }
}

impl Predictor for Holt {
    fn observe(&mut self, value: f64) {
        self.observations += 1;
        match self.level {
            None => {
                self.level = Some(value);
                self.trend = 0.0;
            }
            Some(prev_level) => {
                let level = self.alpha * value + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
            }
        }
    }

    fn predict(&self) -> f64 {
        match self.level {
            Some(level) => level + self.trend,
            None => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "holt"
    }

    fn observations(&self) -> usize {
        self.observations
    }
}

impl ToJson for Holt {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("alpha", self.alpha.to_json()),
            ("beta", self.beta.to_json()),
            ("trend", self.trend().to_json()),
            ("observations", self.observations().to_json()),
            ("prediction", self.predict().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::mape;
    use crate::smoothing::ExponentialSmoothing;
    use crate::{one_step_ahead, InitialValue};

    #[test]
    fn constant_series_no_trend() {
        let mut h = Holt::new(0.8, 0.3);
        for _ in 0..20 {
            h.observe(5.0);
        }
        assert!((h.predict() - 5.0).abs() < 1e-9);
        assert!(h.trend().abs() < 1e-9);
    }

    #[test]
    fn linear_ramp_learned_exactly() {
        let mut h = Holt::new(0.8, 0.5);
        for i in 0..40 {
            h.observe(3.0 * i as f64 + 2.0);
        }
        // On a clean line the one-step forecast converges onto the line.
        let expected = 3.0 * 40.0 + 2.0;
        assert!((h.predict() - expected).abs() < 0.5, "{}", h.predict());
        assert!((h.trend() - 3.0).abs() < 0.2, "trend {}", h.trend());
    }

    #[test]
    fn beats_plain_es_on_a_ramp() {
        let series: Vec<f64> = (0..30).map(|i| 2.0 * i as f64).collect();
        let mut holt = Holt::new(0.8, 0.5);
        let mut es = ExponentialSmoothing::with_init(0.8, InitialValue::FirstObservation);
        let hp = one_step_ahead(&mut holt, &series);
        let ep = one_step_ahead(&mut es, &series);
        // Skip the first few warm-up points for a fair comparison.
        let h_err = mape(&hp[3..], &series[4..]);
        let e_err = mape(&ep[3..], &series[4..]);
        assert!(h_err < e_err / 2.0, "holt {h_err} vs es {e_err}");
    }

    #[test]
    fn overshoots_after_a_jump() {
        // The failure mode that motivates the paper's Markov correction:
        // after a step jump the learned trend keeps projecting upward.
        let mut h = Holt::new(0.8, 0.5);
        for _ in 0..10 {
            h.observe(5.0);
        }
        h.observe(20.0);
        // Forecast exceeds the new plateau because a spurious trend appeared.
        assert!(h.predict() > 21.0, "{}", h.predict());
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1)")]
    fn invalid_beta_rejected() {
        let _ = Holt::new(0.5, 1.0);
    }

    #[test]
    fn empty_predicts_zero() {
        let h = Holt::new(0.5, 0.5);
        assert_eq!(h.predict(), 0.0);
        assert_eq!(h.observations(), 0);
    }
}
