//! The protocol-atomic facade: one import path for every atomic word of the
//! lock-free slot protocol (`sync_slots.rs`, `core/shard.rs`).
//!
//! * **Normal builds** — zero-cost re-exports of `std::sync::atomic` types:
//!   `ShimAtomicU64` *is* `AtomicU64`, `ShimOnceLock` *is* `OnceLock`. No
//!   wrapper, no indirection, nothing for the optimizer to see through.
//! * **`--cfg hotc_model` builds** — the same names alias the instrumented
//!   types from [`crate::model`]: every load/store/CAS with its declared
//!   [`Ordering`] becomes a schedule point under the bounded model checker
//!   (run via `cargo test -p hotc-model`, see DESIGN.md §7.3).
//!
//! The `atomic-facade` conformance rule (`hotc-lint`) denies raw
//! `std::sync::atomic` imports in the protocol modules, so new protocol
//! words cannot silently bypass the checker.

pub use std::sync::atomic::Ordering;

#[cfg(not(hotc_model))]
pub use std::sync::atomic::{AtomicU64 as ShimAtomicU64, AtomicUsize as ShimAtomicUsize};

#[cfg(not(hotc_model))]
pub use std::sync::OnceLock as ShimOnceLock;

#[cfg(hotc_model)]
pub use crate::model::{
    ModelAtomicU64 as ShimAtomicU64, ModelAtomicUsize as ShimAtomicUsize,
    ModelOnceLock as ShimOnceLock,
};
