#!/usr/bin/env bash
# Single local entry point for everything CI runs.
#
# Usage: ci/check.sh [--fast]
#
#   (no flag)  full CI: hermeticity, format, lints, conformance, release
#              build, workspace tests, bench smoke + perf gates, metrics
#              smoke — what the release CI job runs.
#   --fast     inner-loop subset: format, lints, conformance, and the debug
#              workspace test suite (lock sanitizer armed). No release
#              build, no benches; finishes in under two minutes warm.
#
# The whole suite is offline by design: every dependency is a path dep into
# this repository (enforced by tests/hermetic.rs), so `--offline` both proves
# the hermeticity claim and keeps the script runnable on an air-gapped box.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        *) echo "usage: ci/check.sh [--fast]" >&2; exit 2 ;;
    esac
done

run() {
    echo
    echo "==> $*"
    "$@"
}

# 1. Hermeticity: the dependency graph resolves without any network access.
run cargo metadata --offline --format-version 1 >/dev/null

# 2. Format and lints.
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings

# 3. Repo-specific conformance analyzer: determinism and concurrency rules
#    clippy cannot express (wall-clock, raw locks, hash-order iteration,
#    unwrap on the request path, atomic-ordering conformance, hermetic
#    manifests). Deny by default; escapes need `// lint:allow(rule, reason)`.
#    The JSON report is the CI artifact; a dirty report exits nonzero here.
echo
echo "==> cargo run --offline -q -p hotc-lint -- --json > lint-report.json"
cargo run --offline -q -p hotc-lint -- --json > lint-report.json

# 4. Workspace test suite. Debug profile arms the lock-order sanitizer and
#    the zero-lock warm-path assertions (request_path_scope). In --fast
#    mode this is the last step.
run cargo test -q --workspace --offline

# 5. Bounded model checking of the lock-free slot protocol. The dedicated
#    --cfg build routes every protocol atomic through the instrumented
#    stdshim facade (separate target dir so fingerprints don't thrash);
#    the suite exhausts the named races and the mutation harness proves a
#    Relaxed publish is still caught. HOTC_MODEL_BUDGET caps schedules per
#    test so a state-space regression fails fast instead of hanging CI.
run env RUSTFLAGS='--cfg hotc_model' CARGO_TARGET_DIR=target/model \
    HOTC_MODEL_BUDGET="${HOTC_MODEL_BUDGET:-20000}" \
    cargo test -q -p hotc-model --offline
# The parallel replay driver also runs under the instrumented build (its
# atomics fall back to real ones outside a checker run, and the debug
# lock-order sanitizer stays armed), proving the parallel ≡ sequential
# equivalence holds with instrumentation compiled in.
run env RUSTFLAGS='--cfg hotc_model' CARGO_TARGET_DIR=target/model \
    cargo test -q -p hotc-cli --offline --test parallel_equivalence

if [ "$FAST" = 1 ]; then
    echo
    echo "Fast checks passed."
    exit 0
fi

# 6. Tier-1: release build + root test suite, offline (release compiles the
#    sanitizer out; the perf numbers below come from this profile).
#    --workspace so the metrics smoke below gets its hotc-sim binary from
#    this build rather than from whatever was in target/ already.
run cargo build --workspace --release --offline
run cargo test -q --offline

# 7. Perf smoke: every bench suite in --smoke mode, accumulating one
#    JSON-Lines record per suite into BENCH_ci.json (the CI perf artifact),
#    then the perf-gate checker evaluates ci/gates.json against it —
#    suite/record presence, max-mean thresholds, and scaling ratios all
#    live in that file, not in shell.
export BENCH_OUT_DIR="$PWD"
rm -f "$BENCH_OUT_DIR/BENCH_ci.json"
# --benches keeps cargo from also running the crate's libtest unit-test
# target, which would reject the custom --smoke flag.
run cargo bench --offline -p hotc-bench --benches -- --smoke
run cargo run --offline -q -p hotc-bench --bin gate -- "$BENCH_OUT_DIR/BENCH_ci.json" ci/gates.json

# 8. Telemetry smoke: run the demo scenario with --metrics-out and assert the
#    snapshot is well-formed with nonzero cold-start stage counts.
METRICS_OUT="$(mktemp)"
trap 'rm -f "$METRICS_OUT"' EXIT
run sh -c "./target/release/hotc-sim --demo | ./target/release/hotc-sim - --metrics-out '$METRICS_OUT' >/dev/null"
echo
echo "==> metrics snapshot smoke ($METRICS_OUT):"
test -s "$METRICS_OUT"
# Counters present and nonzero (the demo workload always cold-starts some).
grep -q '"gateway/requests": [1-9]' "$METRICS_OUT" \
    || { echo "metrics snapshot missing nonzero gateway/requests" >&2; exit 1; }
grep -q '"gateway/cold_starts": [1-9]' "$METRICS_OUT" \
    || { echo "metrics snapshot missing nonzero gateway/cold_starts" >&2; exit 1; }
# Cold-start stages recorded (zero-count stages are omitted from the JSON,
# so presence implies a nonzero count). image_pull is rightly absent: the
# demo engine stores images locally, so pull cost is zero.
for stage in runtime_init network_setup resource_alloc code_load app_init exec; do
    grep -q "\"$stage\"" "$METRICS_OUT" \
        || { echo "metrics snapshot missing stage '$stage'" >&2; exit 1; }
done
# Every emitted stage histogram carries a nonzero count.
if grep -q '"count": 0' "$METRICS_OUT"; then
    echo "metrics snapshot contains a zero-count stage histogram" >&2; exit 1
fi
echo "metrics snapshot OK"

# 9. Streaming replay smoke: synthesize and replay a 1e6-request / 10k-key
#    day through the CLI's pull-based trace path (never materialized) and
#    assert every request was served. Takes about a minute in release.
REPLAY_OUT="$(mktemp)"
trap 'rm -f "$METRICS_OUT" "$REPLAY_OUT"' EXIT
run sh -c "./target/release/hotc-sim scenarios/synth_1m.hotc > '$REPLAY_OUT'"
# The summary table's first column is the request count.
grep -Eq '(^|[^0-9])1000000([^0-9]|$)' "$REPLAY_OUT" \
    || { echo "synth_1m replay did not serve 1000000 requests" >&2; exit 1; }
echo "streaming replay smoke OK"

# 10. Parallel replay smoke: the same 1e6-request day, key-partitioned
#     across 4 replay workers, must also serve every request. (Byte-level
#     equivalence with the sequential path is covered by the
#     parallel_equivalence test suite; this asserts the shipped binary's
#     flag path end to end at scale.)
PAR_OUT="$(mktemp)"
trap 'rm -f "$METRICS_OUT" "$REPLAY_OUT" "$PAR_OUT"' EXIT
run sh -c "./target/release/hotc-sim scenarios/synth_1m.hotc --replay-threads 4 > '$PAR_OUT'"
grep -Eq '(^|[^0-9])1000000([^0-9]|$)' "$PAR_OUT" \
    || { echo "parallel synth_1m replay did not serve 1000000 requests" >&2; exit 1; }
echo "parallel replay smoke OK"

echo
echo "All checks passed."
