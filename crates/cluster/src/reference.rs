//! A naive reference scheduler: the executable specification of
//! [`Cluster`](crate::Cluster)'s placement semantics.
//!
//! Same policies, same staleness-as-events protocol, same RNG discipline —
//! but every data structure is the obvious scan: believed warm counts live
//! in per-node `HashMap<RuntimeKey, usize>` snapshots rebuilt by walking
//! the pools, loads are summed on demand, and the best warm host is found
//! by scanning all nodes. The property test in
//! `tests/indexed_matches_reference.rs` drives this and the indexed
//! implementation in lockstep from one seed and asserts they agree
//! decision-for-decision; keep any semantic change to one of them mirrored
//! in the other.
//!
//! The decision rules are order-independent on purpose (min by the total
//! order `(load, node)`, estimates keyed by `(cost, node)`, and
//! power-of-two-choices consuming exactly two draws per pick), which is
//! what makes "same believed state → same decision" hold across completely
//! different data layouts.

use std::collections::HashMap;

use faas::gateway::{Gateway, GatewayError, InFlight};
use faas::{FunctionSpec, RequestTrace};
use hotc::{HotC, RuntimeKey};
use simclock::{SimDuration, SimRng, SimTime};

use crate::sched::{Cluster, ClusterError, ClusterStats, SchedulePolicy};

struct RefNode {
    gateway: Gateway<HotC>,
    inflight: usize,
}

/// A ticket for an in-flight request on the reference cluster.
#[derive(Debug)]
pub struct RefInFlight {
    /// Index of the node serving the request.
    pub node: usize,
    /// The node-local in-flight handle.
    pub inner: InFlight,
}

/// The scan-everything twin of [`Cluster`]. See the module docs.
pub struct ReferenceCluster {
    nodes: Vec<RefNode>,
    policy: SchedulePolicy,
    next_rr: usize,
    rng: SimRng,
    staleness: SimDuration,
    last_sync: Option<SimTime>,
    /// `snapshot[node]` = believed warm-available count per runtime key.
    snapshot: Vec<HashMap<RuntimeKey, usize>>,
    /// Registered functions, in registration order (no map iteration).
    functions: Vec<(FunctionSpec, RuntimeKey)>,
}

impl ReferenceCluster {
    /// Builds a reference cluster from named per-node gateways (names are
    /// accepted for signature parity with [`Cluster::new`] and dropped).
    pub fn new(policy: SchedulePolicy, gateways: Vec<(String, Gateway<HotC>)>, seed: u64) -> Self {
        let nodes: Vec<RefNode> = gateways
            .into_iter()
            .map(|(_, gateway)| RefNode {
                gateway,
                inflight: 0,
            })
            .collect();
        let snapshot = nodes.iter().map(|_| HashMap::new()).collect();
        ReferenceCluster {
            nodes,
            policy,
            next_rr: 0,
            rng: SimRng::seeded(seed),
            staleness: SimDuration::ZERO,
            last_sync: None,
            snapshot,
            functions: Vec::new(),
        }
    }

    /// Mirrors [`Cluster::set_warm_view_staleness`].
    pub fn set_warm_view_staleness(&mut self, staleness: SimDuration) {
        self.staleness = staleness;
        self.last_sync = None;
        if staleness.is_zero() {
            for i in 0..self.nodes.len() {
                self.resync_node(i);
            }
        }
    }

    /// Mirrors [`Cluster::set_placement_seed`].
    pub fn set_placement_seed(&mut self, seed: u64) {
        self.rng = SimRng::seeded(seed);
    }

    /// Mirrors [`Cluster::register_everywhere`].
    pub fn register_everywhere(&mut self, spec: FunctionSpec) {
        let key = match self.nodes.first() {
            Some(n) => n.gateway.provider().pool().key_of(&spec.config),
            None => return,
        };
        if let Some(entry) = self.functions.iter_mut().find(|(s, _)| s.name == spec.name) {
            *entry = (spec, key);
        } else {
            self.functions.push((spec, key));
        }
    }

    fn fn_index(&self, function: &str) -> Option<usize> {
        self.functions.iter().position(|(s, _)| s.name == function)
    }

    fn live_count(&self, node: usize, key: &RuntimeKey) -> usize {
        self.nodes[node].gateway.provider().pool().num_avail(key)
    }

    /// Rebuilds one node's believed map by scanning every registered
    /// function against the node's pool.
    fn resync_node(&mut self, node: usize) {
        let mut map = HashMap::new();
        for (_, key) in &self.functions {
            map.insert(key.clone(), self.live_count(node, key));
        }
        self.snapshot[node] = map;
    }

    fn touch_true(&mut self, node: usize, key: &RuntimeKey) {
        let count = self.live_count(node, key);
        self.snapshot[node].insert(key.clone(), count);
    }

    fn believed(&self, node: usize, key: &RuntimeKey) -> usize {
        self.snapshot[node].get(key).copied().unwrap_or(0)
    }

    fn sync_if_due(&mut self, now: SimTime) {
        if self.staleness.is_zero() {
            return;
        }
        let due = match self.last_sync {
            None => true,
            Some(last) => now.duration_since(last) >= self.staleness,
        };
        if !due {
            return;
        }
        self.last_sync = Some(now);
        for i in 0..self.nodes.len() {
            self.resync_node(i);
        }
    }

    fn mean_load(&self) -> f64 {
        let total: u64 = self.nodes.iter().map(|n| n.inflight as u64).sum();
        total as f64 / self.nodes.len() as f64
    }

    /// Exactly two draws, exactly [`crate::load::LoadIndex::pick_p2c`]'s rule.
    fn pick_p2c(&mut self) -> usize {
        let a = self.rng.index(self.nodes.len());
        let b = self.rng.index(self.nodes.len());
        if self.nodes[b].inflight < self.nodes[a].inflight {
            b
        } else {
            a
        }
    }

    fn best_warm(&self, key: &RuntimeKey) -> Option<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.believed(i, key) > 0)
            .min_by_key(|&i| (self.nodes[i].inflight, i))
    }

    fn completion_estimate(&self, i: usize, f: usize) -> Option<SimDuration> {
        let (spec, key) = &self.functions[f];
        let engine = self.nodes[i].gateway.engine();
        let cold = if self.believed(i, key) > 0 {
            SimDuration::ZERO
        } else {
            engine.estimate_cold_start(&spec.config).ok()?
        };
        let hw = engine.host().hardware();
        let exec = hw.compute(spec.app.work.compute + spec.app.app_init);
        let queue = SimDuration::from_millis(20) * self.nodes[i].inflight as u64;
        Some(cold + exec + queue)
    }

    fn place(&mut self, function: &str, now: SimTime) -> Result<(usize, usize), ClusterError> {
        if self.nodes.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        let Some(f) = self.fn_index(function) else {
            return Err(ClusterError::Gateway(GatewayError::UnknownFunction(
                function.to_string(),
            )));
        };
        let node = match self.policy {
            SchedulePolicy::RoundRobin => {
                let i = self.next_rr % self.nodes.len();
                self.next_rr += 1;
                i
            }
            SchedulePolicy::LeastLoaded => self.pick_p2c(),
            SchedulePolicy::ReuseAffinity => {
                self.sync_if_due(now);
                let key = self.functions[f].1.clone();
                match self.best_warm(&key) {
                    Some(candidate) => {
                        let limit = self.mean_load() * Cluster::OVERLOAD_FACTOR + 1.0;
                        if (self.nodes[candidate].inflight as f64) > limit {
                            self.pick_p2c()
                        } else {
                            candidate
                        }
                    }
                    None => self.pick_p2c(),
                }
            }
            SchedulePolicy::CostAware => {
                self.sync_if_due(now);
                let best = (0..self.nodes.len())
                    .filter_map(|i| self.completion_estimate(i, f).map(|c| (c, i)))
                    .min_by_key(|&(c, i)| (c, i))
                    .map(|(_, i)| i);
                match best {
                    Some(i) => i,
                    None => self.pick_p2c(),
                }
            }
        };
        Ok((f, node))
    }

    /// Mirrors [`Cluster::begin`].
    pub fn begin(&mut self, function: &str, now: SimTime) -> Result<RefInFlight, ClusterError> {
        let (f, node) = self.place(function, now)?;
        let spec = self.functions[f].0.clone();
        let inner = self.nodes[node].gateway.begin_with(&spec, now)?;
        let key = self.functions[f].1.clone();
        if self.staleness.is_zero() {
            if inner.cold {
                self.resync_node(node);
            } else {
                self.touch_true(node, &key);
            }
        } else {
            let believed = self.believed(node, &key);
            if believed > 0 {
                self.snapshot[node].insert(key, believed - 1);
            }
        }
        self.nodes[node].inflight += 1;
        Ok(RefInFlight { node, inner })
    }

    /// Mirrors [`Cluster::finish`].
    pub fn finish(&mut self, ticket: RefInFlight) -> Result<RequestTrace, ClusterError> {
        let RefInFlight { node, inner } = ticket;
        let key = self
            .fn_index(&inner.function)
            .map(|f| self.functions[f].1.clone());
        let trace = self.nodes[node].gateway.finish(inner)?;
        self.nodes[node].inflight -= 1;
        if self.staleness.is_zero() {
            if let Some(key) = key {
                self.touch_true(node, &key);
            }
        }
        Ok(trace)
    }

    /// Mirrors [`Cluster::tick`].
    pub fn tick(&mut self, now: SimTime) -> Result<(), ClusterError> {
        for node in &mut self.nodes {
            node.gateway.tick(now)?;
        }
        if self.staleness.is_zero() {
            for i in 0..self.nodes.len() {
                self.resync_node(i);
            }
        }
        Ok(())
    }

    /// Mirrors [`Cluster::stats`].
    pub fn stats(&self) -> ClusterStats {
        let mut stats = ClusterStats::default();
        for n in &self.nodes {
            stats.requests += n.gateway.stats().requests;
            stats.cold_starts += n.gateway.stats().cold_starts;
            stats.live_containers += n.gateway.engine().live_count();
        }
        stats
    }
}
