//! Streaming trace replay: overhead vs the materialized driver, and the
//! 1e6-request / 10k-key scale point.
//!
//! Two claims are gated (`ci/gates.json`, suite `replay`):
//!
//! 1. Pulling arrivals one at a time through [`hotc_bench::run_trace`] costs
//!    about the same as replaying a pre-built `Vec<Arrival>` through
//!    [`hotc_bench::run_workload`] — the ratio gate pins streaming within
//!    1.5x of materialized on an identical 20k-request trace.
//! 2. A 1e6-request / 10k-key synthesized day replays end to end at a gated
//!    minimum rate, and the process peak RSS stays under a gated ceiling —
//!    the replay path's memory is O(keys + in-flight), not O(requests).
//!
//! These runs are seconds-to-a-minute long, so each is timed exactly once
//! with [`Harness::bench_once`] instead of the calibrated sampling loop.

use containersim::{ContainerEngine, HardwareProfile, NetworkMode};
use faas::gateway::Gateway;
use faas::{AppProfile, FunctionSpec};
use hotc::{HotC, HotCConfig, PoolLimits};
use hotc_bench::{run_partitioned, run_trace, run_trace_partition, run_workload, Harness};
use simclock::SimDuration;
use std::sync::Arc;
use workloads::trace::{PartitionTrace, Trace};
use workloads::{drain, synth_trace, SynthShape, SynthSpec};

const TICK: SimDuration = SimDuration::from_secs(60);

/// A gateway registering the subset of `keys` functions that `assign` maps
/// to worker `w` (`None` = all of them), each a distinct runtime key (same
/// app, distinct env) — the shape `replicas = N` scenarios produce. The
/// returned route table always holds every name; `provider` lets the
/// partitioned workers scale HotC's pool limits to their share.
fn gateway_subset(
    keys: usize,
    subset: Option<(&[usize], usize)>,
    provider: HotC,
) -> (Gateway<HotC>, Vec<String>) {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut gw = Gateway::new(engine, provider);
    let mut names = Vec::with_capacity(keys);
    for i in 0..keys {
        let name = format!("f#{i}");
        if subset.is_none_or(|(assign, w)| assign[i] == w) {
            let app = AppProfile::random_number();
            let mut config = app.config_with_network(NetworkMode::Bridge);
            config
                .exec
                .env
                .insert("HOTC_REPLICA".to_string(), i.to_string());
            gw.register(
                FunctionSpec::from_app(app)
                    .named(name.clone())
                    .with_config(config),
            );
        }
        names.push(name);
    }
    (gw, names)
}

fn gateway(keys: usize) -> (Gateway<HotC>, Vec<String>) {
    gateway_subset(keys, None, HotC::with_defaults())
}

fn spec(requests: u64, keys: usize) -> SynthSpec {
    SynthSpec {
        requests,
        keys,
        duration: SimDuration::from_mins(1440),
        zipf_exponent: 1.1,
        seed: 0xBE9C_0001,
        shape: SynthShape::Diurnal {
            peak_to_trough: 3.0,
        },
        key_offset: 0,
    }
}

/// Streams the synthesized trace through the pull-based driver; returns
/// (requests replayed, in-flight high-water mark).
fn replay_streaming(requests: u64, keys: usize) -> (u64, usize) {
    let (gw, names) = gateway(keys);
    let mut trace = synth_trace(&spec(requests, keys));
    let out = run_trace(
        gw,
        &mut trace,
        move |cid| names[cid % names.len()].clone(),
        TICK,
        |_, _| {},
    );
    assert!(out.trace_error.is_none(), "synth trace cannot error");
    (out.requests, out.max_inflight)
}

/// Materializes the same trace into a `Vec<Arrival>` first, then replays it
/// through the eager driver — the pre-streaming baseline.
fn replay_materialized(requests: u64, keys: usize) -> u64 {
    let (gw, names) = gateway(keys);
    let mut trace = synth_trace(&spec(requests, keys));
    let workload = drain(&mut trace);
    let out = run_workload(
        gw,
        &workload,
        move |cid| names[cid % names.len()].clone(),
        TICK,
    );
    out.traces.len() as u64
}

/// Partitioned replay of the same synthesized day across `workers` threads.
/// Every slot here is its own runtime key, so a modulo assignment is already
/// reuse-closed — exactly the partition the scenario runner would compute.
/// Each worker synthesizes the full stream, filters it to its keys, serves
/// them on a private gateway (pool limits ceil-divided so the aggregate cap
/// matches the sequential 500), and ticks at the shared global schedule.
fn replay_parallel(requests: u64, keys: usize, workers: usize) -> u64 {
    let assign: Arc<Vec<usize>> = Arc::new((0..keys).map(|i| i % workers).collect());
    let limits = PoolLimits::default();
    let per_worker = PoolLimits::new(
        limits.max_live.div_ceil(workers).max(1),
        limits.mem_threshold,
    );
    run_partitioned(workers, |w| {
        let provider = HotC::new(HotCConfig {
            limits: per_worker,
            ..Default::default()
        });
        let (gw, names) = gateway_subset(keys, Some((&assign, w)), provider);
        let mut part =
            PartitionTrace::new(synth_trace(&spec(requests, keys)), Arc::clone(&assign), w);
        let out = run_trace_partition(
            gw,
            &mut part,
            move |cid| names[cid % names.len()].clone(),
            TICK,
            |_, _| {},
        );
        assert!(out.trace_error.is_none(), "synth trace cannot error");
        out.requests
    })
    .into_iter()
    .sum()
}

/// Frontend-only drain: pulls every arrival out of the synthesizer with no
/// gateway attached — the raw emission rate of the trace source, and the
/// 1e7/1e8 scale points that are impractical to serve end to end in CI.
fn drain_count(requests: u64, keys: usize) -> u64 {
    let mut trace = synth_trace(&spec(requests, keys));
    let mut n = 0u64;
    while let Some(a) = trace.next_arrival() {
        std::hint::black_box(a.at);
        n += 1;
    }
    n
}

/// Process peak resident set (kB) from `/proc/self/status`; `None` where
/// procfs is unavailable (the RSS gate carries `skip_if_missing`).
fn vm_hwm_kb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let mut h = Harness::new("replay");

    // Untimed settling runs: both drivers pay allocator growth and image
    // setup once here, so the timed pair below measures the drivers, not
    // which one ran first in a cold process.
    std::hint::black_box(replay_streaming(5_000, 1_000));
    std::hint::black_box(replay_materialized(5_000, 1_000));

    // Overhead pair: byte-identical 20k-request / 1k-key trace through both
    // drivers, back to back in the same process.
    let (n, _) = h.bench_once("stream_20k_1k_keys", || replay_streaming(20_000, 1_000));
    assert_eq!(n, 20_000);
    let n = h.bench_once("materialized_20k_1k_keys", || {
        replay_materialized(20_000, 1_000)
    });
    assert_eq!(n, 20_000);

    // Scale point: a synthesized day of 1e6 requests over 10k runtime keys,
    // streamed — never materialized.
    let (n, max_inflight) =
        h.bench_once("stream_1m_10k_keys", || replay_streaming(1_000_000, 10_000));
    assert_eq!(n, 1_000_000);
    if let Some(mean_ns) = h.mean_of("stream_1m_10k_keys") {
        h.record_derived("replay_1m_req_per_sec", 1e6 / (mean_ns * 1e-9));
    }
    h.record_derived("replay_1m_max_inflight", max_inflight as f64);
    if let Some(kb) = vm_hwm_kb() {
        h.record_derived("replay_1m_peak_rss_kb", kb);
    }

    // The same 1e6 / 10k-key day, key-partitioned across 8 replay workers.
    // The `replay_parallel` gate group pins the speedup ratio against the
    // sequential scale point above (guarded by `min_parallelism`, so 1-core
    // runners skip it visibly instead of failing it).
    let n = h.bench_once("stream_1m_10k_keys_par8", || {
        replay_parallel(1_000_000, 10_000, 8)
    });
    assert_eq!(n, 1_000_000);
    if let Some(mean_ns) = h.mean_of("stream_1m_10k_keys_par8") {
        h.record_derived("replay_1m_par8_req_per_sec", 1e6 / (mean_ns * 1e-9));
    }
    if let Some(kb) = vm_hwm_kb() {
        h.record_derived("replay_1m_par8_peak_rss_kb", kb);
    }

    // Frontend-only emission rate at the 1e6 / 1e7 / 1e8 scale points —
    // constant-memory generation with no gateway attached.
    let n = h.bench_once("drain_1e6_10k_keys", || drain_count(1_000_000, 10_000));
    assert_eq!(n, 1_000_000);
    let n = h.bench_once("drain_1e7_10k_keys", || drain_count(10_000_000, 10_000));
    assert_eq!(n, 10_000_000);
    let n = h.bench_once("drain_1e8_100k_keys", || drain_count(100_000_000, 100_000));
    assert_eq!(n, 100_000_000);
    if let Some(mean_ns) = h.mean_of("drain_1e8_100k_keys") {
        h.record_derived("drain_1e8_req_per_sec", 1e8 / (mean_ns * 1e-9));
    }

    h.finish();
}
