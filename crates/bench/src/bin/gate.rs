//! CI perf-gate checker: evaluates `ci/gates.json` against the JSON-Lines
//! perf artifact (`BENCH_ci.json`) that `cargo bench -- --smoke` appends to.
//!
//! Replaces the grep/sed/awk gate logic that used to live in `ci/check.sh`:
//! the same thresholds are now data (`ci/gates.json`), the arithmetic is
//! tested Rust, and the output is a pass/fail table instead of the first
//! failing pipeline's stderr. Usage:
//!
//! ```text
//! cargo run -p hotc-bench --bin gate -- [BENCH_ci.json] [ci/gates.json]
//! ```
//!
//! Exit status is non-zero when any gate fails, a referenced record is
//! missing, or either input file is absent or malformed — a perf artifact
//! that silently lost a suite must fail CI, not skip its gates.
//!
//! Gate kinds (see `ci/gates.json` for the live set):
//!
//! - `suite_present` — the suite emitted at least one record;
//! - `present` — a specific `suite` + `name` record exists;
//! - `max_mean` — the record's `mean_ns` is strictly under `max_mean_ns`;
//! - `ratio` — `mean_ns(suite/name)` over `mean_ns(denom_suite/denom)` is
//!   at most `max_ratio` (denominator suite defaults to `suite`). With
//!   `max_ratio` 1.0 this expresses "A must be cheaper than B"; with 1.25
//!   it pins a scaling curve, e.g. 16-thread mean within 1.25x of 8-thread.
//! - `min_derived` / `max_derived` — a suite's *derived* metric (computed,
//!   not timed: req/s throughput, peak-RSS kB, high-water marks) is at least
//!   `min_value` / at most `max_value`. A derived gate may carry
//!   `"skip_if_missing": true` for metrics the recording host cannot always
//!   produce (e.g. `/proc`-based RSS off Linux): absence then reports as an
//!   explicit `skip` row instead of a failure.
//!
//! A gate may carry `min_parallelism`: it is evaluated only when the
//! artifact's recorded host parallelism reaches that count, and reported as
//! an explicit `skip` row otherwise. Multi-thread scaling gates use this so
//! a 2-core runner reports "cannot measure 16-thread scaling" instead of a
//! spurious regression — while capable hardware still enforces the curve.

use std::process::ExitCode;

use stdshim::JsonValue;

/// Every `mean_ns` record in the artifact, keyed by `(suite, name)`.
/// Linear lookups: the artifact holds a few dozen records.
struct Records {
    suites: Vec<String>,
    means: Vec<(String, String, f64)>,
    /// Derived (computed, not timed) metrics, keyed the same way.
    derived: Vec<(String, String, f64)>,
    /// Smallest host parallelism any suite recorded (suites run in one CI
    /// job, so these agree; `min` is the conservative merge if not).
    parallelism: usize,
}

impl Records {
    fn mean(&self, suite: &str, name: &str) -> Option<f64> {
        self.means
            .iter()
            .find(|(s, n, _)| s == suite && n == name)
            .map(|&(_, _, m)| m)
    }

    fn derived(&self, suite: &str, name: &str) -> Option<f64> {
        self.derived
            .iter()
            .find(|(s, n, _)| s == suite && n == name)
            .map(|&(_, _, v)| v)
    }
}

fn str_field<'a>(value: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{ctx}: missing string field '{key}'"))
}

fn num_field(value: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric field '{key}'"))
}

fn load_records(path: &str) -> Result<Records, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut records = Records {
        suites: Vec::new(),
        means: Vec::new(),
        derived: Vec::new(),
        parallelism: usize::MAX,
    };
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = format!("{path}:{}", idx + 1);
        let value = JsonValue::parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        let suite = str_field(&value, "suite", &ctx)?.to_string();
        // Absent in pre-upgrade artifacts; treat those as single-core so
        // hardware-conditional gates skip rather than misfire.
        let parallelism = value
            .get("parallelism")
            .and_then(JsonValue::as_i64)
            .map_or(1, |p| p.max(1) as usize);
        records.parallelism = records.parallelism.min(parallelism);
        let results = value
            .get("results")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{ctx}: missing 'results' array"))?;
        for r in results {
            let name = str_field(r, "name", &ctx)?.to_string();
            let mean = num_field(r, "mean_ns", &ctx)?;
            records.means.push((suite.clone(), name, mean));
        }
        // Absent in pre-upgrade artifacts.
        if let Some(derived) = value.get("derived").and_then(JsonValue::as_array) {
            for d in derived {
                let name = str_field(d, "name", &ctx)?.to_string();
                let v = num_field(d, "value", &ctx)?;
                records.derived.push((suite.clone(), name, v));
            }
        }
        records.suites.push(suite);
    }
    if records.suites.is_empty() {
        return Err(format!("{path}: no suite records — did the benches run?"));
    }
    Ok(records)
}

/// One evaluated gate row: outcome, short label, and the measured detail.
struct Row {
    outcome: Outcome,
    label: String,
    detail: String,
}

#[derive(PartialEq, Clone, Copy)]
enum Outcome {
    Pass,
    Skip,
    Fail,
}

impl Row {
    fn checked(ok: bool, label: String, detail: String) -> Row {
        Row {
            outcome: if ok { Outcome::Pass } else { Outcome::Fail },
            label,
            detail,
        }
    }
}

fn eval_gate(gate: &JsonValue, records: &Records, ctx: &str) -> Result<Row, String> {
    let kind = str_field(gate, "kind", ctx)?;
    // Hardware guard: a scaling gate is only meaningful when the recording
    // host could actually run the threads in parallel.
    if let Some(min) = gate.get("min_parallelism").and_then(JsonValue::as_i64) {
        let min = min.max(1) as usize;
        if records.parallelism < min {
            return Ok(Row {
                outcome: Outcome::Skip,
                label: format!("{kind} {}", str_field(gate, "name", ctx).unwrap_or("?")),
                detail: format!(
                    "skipped: host parallelism {} < required {min}",
                    records.parallelism
                ),
            });
        }
    }
    match kind {
        "suite_present" => {
            let suite = str_field(gate, "suite", ctx)?;
            let ok = records.suites.iter().any(|s| s == suite);
            let detail = if ok { "recorded" } else { "MISSING" };
            Ok(Row::checked(
                ok,
                format!("suite_present {suite}"),
                detail.to_string(),
            ))
        }
        "present" => {
            let suite = str_field(gate, "suite", ctx)?;
            let name = str_field(gate, "name", ctx)?;
            let ok = records.mean(suite, name).is_some();
            let detail = if ok { "recorded" } else { "MISSING" };
            Ok(Row::checked(
                ok,
                format!("present {suite}/{name}"),
                detail.to_string(),
            ))
        }
        "max_mean" => {
            let suite = str_field(gate, "suite", ctx)?;
            let name = str_field(gate, "name", ctx)?;
            let limit = num_field(gate, "max_mean_ns", ctx)?;
            let label = format!("max_mean {suite}/{name}");
            match records.mean(suite, name) {
                Some(mean) => Ok(Row::checked(
                    mean < limit,
                    label,
                    format!("{mean:.1} ns < {limit} ns"),
                )),
                None => Ok(Row::checked(false, label, "record MISSING".into())),
            }
        }
        "ratio" => {
            let suite = str_field(gate, "suite", ctx)?;
            let name = str_field(gate, "name", ctx)?;
            let denom_name = str_field(gate, "denom", ctx)?;
            let denom_suite = gate
                .get("denom_suite")
                .and_then(JsonValue::as_str)
                .unwrap_or(suite);
            let limit = num_field(gate, "max_ratio", ctx)?;
            let label = format!("ratio {suite}/{name} : {denom_suite}/{denom_name}");
            match (
                records.mean(suite, name),
                records.mean(denom_suite, denom_name),
            ) {
                (Some(num), Some(denom)) if denom > 0.0 => {
                    let ratio = num / denom;
                    Ok(Row::checked(
                        ratio <= limit,
                        label,
                        format!("{ratio:.3} <= {limit} ({num:.1} / {denom:.1} ns)"),
                    ))
                }
                _ => Ok(Row::checked(false, label, "record MISSING".into())),
            }
        }
        "min_derived" | "max_derived" => {
            let suite = str_field(gate, "suite", ctx)?;
            let name = str_field(gate, "name", ctx)?;
            let label = format!("{kind} {suite}/{name}");
            let value = match records.derived(suite, name) {
                Some(v) => v,
                None => {
                    let skip = gate
                        .get("skip_if_missing")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false);
                    return Ok(if skip {
                        Row {
                            outcome: Outcome::Skip,
                            label,
                            detail: "skipped: derived metric not recorded on this host".into(),
                        }
                    } else {
                        Row::checked(false, label, "derived metric MISSING".into())
                    });
                }
            };
            if kind == "min_derived" {
                let limit = num_field(gate, "min_value", ctx)?;
                Ok(Row::checked(
                    value >= limit,
                    label,
                    format!("{value:.1} >= {limit}"),
                ))
            } else {
                let limit = num_field(gate, "max_value", ctx)?;
                Ok(Row::checked(
                    value <= limit,
                    label,
                    format!("{value:.1} <= {limit}"),
                ))
            }
        }
        other => Err(format!("{ctx}: unknown gate kind '{other}'")),
    }
}

fn run(bench_path: &str, gates_path: &str) -> Result<bool, String> {
    let records = load_records(bench_path)?;
    let gates_text =
        std::fs::read_to_string(gates_path).map_err(|e| format!("read {gates_path}: {e}"))?;
    let gates = JsonValue::parse(&gates_text)
        .map_err(|e| format!("{gates_path}: {e}"))?
        .get("gates")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .ok_or_else(|| format!("{gates_path}: missing top-level 'gates' array"))?;
    if gates.is_empty() {
        return Err(format!("{gates_path}: empty 'gates' array"));
    }

    println!(
        "perf gates: {} records from {bench_path}, {} gates from {gates_path}",
        records.means.len(),
        gates.len()
    );
    println!("{:<6} {:<64} DETAIL", "RESULT", "GATE");
    let mut failures = 0usize;
    for (idx, gate) in gates.iter().enumerate() {
        let ctx = format!("{gates_path} gate #{}", idx + 1);
        let row = eval_gate(gate, &records, &ctx)?;
        let verdict = match row.outcome {
            Outcome::Pass => "ok",
            Outcome::Skip => "skip",
            Outcome::Fail => {
                failures += 1;
                "FAIL"
            }
        };
        println!("{:<6} {:<64} {}", verdict, row.label, row.detail);
    }
    if failures > 0 {
        eprintln!("{failures} perf gate(s) failed");
    } else {
        println!("all {} perf gates passed", gates.len());
    }
    Ok(failures == 0)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let bench_path = args.next().unwrap_or_else(|| "BENCH_ci.json".to_string());
    let gates_path = args.next().unwrap_or_else(|| "ci/gates.json".to_string());
    match run(&bench_path, &gates_path) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(err) => {
            eprintln!("gate: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Records {
        Records {
            suites: vec!["pool".into(), "contention".into()],
            means: vec![
                ("pool".into(), "acquire".into(), 240.0),
                (
                    "contention".into(),
                    "sharded_gateway/8_threads".into(),
                    400_000.0,
                ),
                (
                    "contention".into(),
                    "sharded_gateway/16_threads".into(),
                    480_000.0,
                ),
            ],
            derived: vec![("pool".into(), "req_per_sec".into(), 25_000.0)],
            parallelism: 32,
        }
    }

    fn gate_json(text: &str) -> JsonValue {
        JsonValue::parse(text).expect("test gate json")
    }

    #[test]
    fn max_mean_passes_under_and_fails_over() {
        let records = sample_records();
        let under =
            gate_json(r#"{"kind":"max_mean","suite":"pool","name":"acquire","max_mean_ns":510}"#);
        let over =
            gate_json(r#"{"kind":"max_mean","suite":"pool","name":"acquire","max_mean_ns":100}"#);
        assert!(matches!(
            eval_gate(&under, &records, "t").unwrap().outcome,
            Outcome::Pass
        ));
        assert!(matches!(
            eval_gate(&over, &records, "t").unwrap().outcome,
            Outcome::Fail
        ));
    }

    #[test]
    fn missing_record_fails_rather_than_skips() {
        let records = sample_records();
        let gone =
            gate_json(r#"{"kind":"max_mean","suite":"pool","name":"nope","max_mean_ns":510}"#);
        assert!(matches!(
            eval_gate(&gone, &records, "t").unwrap().outcome,
            Outcome::Fail
        ));
        let absent = gate_json(r#"{"kind":"present","suite":"pool","name":"nope"}"#);
        assert!(matches!(
            eval_gate(&absent, &records, "t").unwrap().outcome,
            Outcome::Fail
        ));
    }

    #[test]
    fn ratio_gate_compares_against_denominator() {
        let records = sample_records();
        // 480000 / 400000 = 1.2 <= 1.25
        let ok = gate_json(
            r#"{"kind":"ratio","suite":"contention","name":"sharded_gateway/16_threads","denom":"sharded_gateway/8_threads","max_ratio":1.25}"#,
        );
        assert!(matches!(
            eval_gate(&ok, &records, "t").unwrap().outcome,
            Outcome::Pass
        ));
        let tight = gate_json(
            r#"{"kind":"ratio","suite":"contention","name":"sharded_gateway/16_threads","denom":"sharded_gateway/8_threads","max_ratio":1.1}"#,
        );
        assert!(matches!(
            eval_gate(&tight, &records, "t").unwrap().outcome,
            Outcome::Fail
        ));
    }

    #[test]
    fn scaling_gate_skips_below_min_parallelism_and_enforces_at_it() {
        let mut records = sample_records();
        let gate = gate_json(
            r#"{"kind":"ratio","suite":"contention","name":"sharded_gateway/16_threads","denom":"sharded_gateway/8_threads","max_ratio":1.25,"min_parallelism":16}"#,
        );
        assert!(matches!(
            eval_gate(&gate, &records, "t").unwrap().outcome,
            Outcome::Pass
        ));
        records.parallelism = 4;
        let row = eval_gate(&gate, &records, "t").unwrap();
        assert!(matches!(row.outcome, Outcome::Skip));
        assert!(row.detail.contains("host parallelism 4"));
    }

    #[test]
    fn derived_gates_compare_against_limits() {
        let records = sample_records();
        let fast = gate_json(
            r#"{"kind":"min_derived","suite":"pool","name":"req_per_sec","min_value":10000}"#,
        );
        assert!(matches!(
            eval_gate(&fast, &records, "t").unwrap().outcome,
            Outcome::Pass
        ));
        let too_fast = gate_json(
            r#"{"kind":"min_derived","suite":"pool","name":"req_per_sec","min_value":50000}"#,
        );
        assert!(matches!(
            eval_gate(&too_fast, &records, "t").unwrap().outcome,
            Outcome::Fail
        ));
        let ceiling = gate_json(
            r#"{"kind":"max_derived","suite":"pool","name":"req_per_sec","max_value":30000}"#,
        );
        assert!(matches!(
            eval_gate(&ceiling, &records, "t").unwrap().outcome,
            Outcome::Pass
        ));
        let low_ceiling = gate_json(
            r#"{"kind":"max_derived","suite":"pool","name":"req_per_sec","max_value":20000}"#,
        );
        assert!(matches!(
            eval_gate(&low_ceiling, &records, "t").unwrap().outcome,
            Outcome::Fail
        ));
    }

    #[test]
    fn missing_derived_fails_unless_marked_skippable() {
        let records = sample_records();
        let hard = gate_json(
            r#"{"kind":"max_derived","suite":"pool","name":"peak_rss_kb","max_value":1}"#,
        );
        assert!(matches!(
            eval_gate(&hard, &records, "t").unwrap().outcome,
            Outcome::Fail
        ));
        let soft = gate_json(
            r#"{"kind":"max_derived","suite":"pool","name":"peak_rss_kb","max_value":1,"skip_if_missing":true}"#,
        );
        let row = eval_gate(&soft, &records, "t").unwrap();
        assert!(matches!(row.outcome, Outcome::Skip));
        assert!(row.detail.contains("not recorded"));
    }

    #[test]
    fn unknown_kind_is_a_hard_error() {
        let records = sample_records();
        let bogus = gate_json(r#"{"kind":"min_mean","suite":"pool","name":"acquire"}"#);
        assert!(eval_gate(&bogus, &records, "t").is_err());
    }

    #[test]
    fn load_records_reads_json_lines_and_min_parallelism() {
        let dir = std::env::temp_dir().join("hotc-gate-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("BENCH_ci.json");
        std::fs::write(
            &path,
            concat!(
                r#"{"suite":"pool","mode":"smoke","parallelism":8,"results":[{"name":"a","mean_ns":1.5,"min_ns":1,"median_ns":1,"samples":10,"iters_per_sample":1}],"derived":[{"name":"d1","value":3.5}]}"#,
                "\n",
                r#"{"suite":"contention","mode":"smoke","results":[{"name":"b","mean_ns":2,"min_ns":2,"median_ns":2,"samples":10,"iters_per_sample":1}],"derived":[]}"#,
                "\n",
            ),
        )
        .expect("write");
        let records = load_records(path.to_str().expect("utf8 path")).expect("load");
        assert_eq!(
            records.suites,
            vec!["pool".to_string(), "contention".to_string()]
        );
        assert_eq!(records.mean("pool", "a"), Some(1.5));
        assert_eq!(records.mean("contention", "b"), Some(2.0));
        assert_eq!(records.derived("pool", "d1"), Some(3.5));
        // The parallelism-free second line counts as single-core, and the
        // merge takes the minimum.
        assert_eq!(records.parallelism, 1);
    }
}
