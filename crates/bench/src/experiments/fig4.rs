//! Figure 4: cold-start cost by language and network mode.
//!
//! (a) container launch (cold-start) time per language runtime,
//! (b) cold vs hot execution of the S3-download benchmark per language
//!     (Go cold ≈ 3.06× hot; Java's cold start ≈ doubles its already long
//!     execution),
//! (c) network setup time per mode (bridge/host ≈ none, container ≈ ½;
//!     multi-host overlay up to 23× host mode).

use containersim::{
    ContainerEngine, CostBreakdown, HardwareProfile, LanguageRuntime, NetworkMode, NetworkScope,
};
use faas::AppProfile;
use metrics_lite::Table;
use simclock::{SimDuration, SimTime};

/// Per-language cold/hot measurements.
pub struct LangMeasurement {
    /// The language runtime.
    pub lang: LanguageRuntime,
    /// Cold-start (launch) breakdown.
    pub launch: CostBreakdown,
    /// Total cold execution: launch + first run.
    pub cold_total: SimDuration,
    /// Hot execution: steady-state run in a live container.
    pub hot_exec: SimDuration,
}

impl LangMeasurement {
    /// cold/hot ratio (paper: 3.06 for Go).
    pub fn cold_over_hot(&self) -> f64 {
        self.cold_total.as_secs_f64() / self.hot_exec.as_secs_f64()
    }
}

/// Result of the Fig. 4 experiment.
pub struct Fig4Result {
    /// Per-language measurements (Fig. 4(a)/(b)).
    pub languages: Vec<LangMeasurement>,
    /// Per-mode network setup cost (Fig. 4(c)): (mode, scope, cost).
    pub network: Vec<(NetworkMode, NetworkScope, SimDuration)>,
}

/// Runs all three panels on the server profile.
pub fn run() -> Fig4Result {
    let hw = HardwareProfile::server();
    let langs = [
        LanguageRuntime::Python,
        LanguageRuntime::Go,
        LanguageRuntime::Java,
        LanguageRuntime::NodeJs,
    ];
    let mut languages = Vec::new();
    for lang in langs {
        let app = AppProfile::s3_download(lang);
        let mut engine = ContainerEngine::with_local_images(hw.clone());
        let (id, launch) = engine
            .create_container(app.default_config(), SimTime::ZERO)
            .expect("catalogue image");
        let first = engine
            .exec(id, app.work_for(true), SimTime::ZERO)
            .expect("first exec");
        let hot = engine
            .exec(id, app.work_for(false), SimTime::from_secs(10))
            .expect("hot exec");
        languages.push(LangMeasurement {
            lang,
            launch,
            cold_total: launch.total() + first.latency,
            hot_exec: hot.latency,
        });
    }

    let mut network = Vec::new();
    for (mode, scope) in [
        (NetworkMode::None, NetworkScope::SingleHost),
        (NetworkMode::Bridge, NetworkScope::SingleHost),
        (NetworkMode::Host, NetworkScope::SingleHost),
        (NetworkMode::Container, NetworkScope::SingleHost),
        (NetworkMode::Host, NetworkScope::MultiHost),
        (NetworkMode::Overlay, NetworkScope::MultiHost),
        (NetworkMode::Routing, NetworkScope::MultiHost),
    ] {
        network.push((mode, scope, mode.setup_cost(&hw)));
    }

    Fig4Result { languages, network }
}

impl Fig4Result {
    /// The measurement for one language.
    pub fn lang(&self, lang: LanguageRuntime) -> &LangMeasurement {
        self.languages
            .iter()
            .find(|m| m.lang == lang)
            .expect("language measured")
    }

    /// Overlay-over-host setup ratio (paper: up to 23×).
    pub fn overlay_over_host(&self) -> f64 {
        let get = |mode| {
            self.network
                .iter()
                .find(|&&(m, _, _)| m == mode)
                .map(|&(_, _, c)| c.as_secs_f64())
                .expect("mode measured")
        };
        get(NetworkMode::Overlay) / get(NetworkMode::Host)
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut launch = Table::new(
            "Fig 4(a): container launch time by language (ms)",
            &[
                "language",
                "alloc",
                "net",
                "volume",
                "runtime_init",
                "code",
                "total",
            ],
        );
        for m in &self.languages {
            launch.row(&[
                m.lang.to_string(),
                format!("{:.0}", m.launch.resource_alloc.as_millis_f64()),
                format!("{:.0}", m.launch.network_setup.as_millis_f64()),
                format!("{:.0}", m.launch.volume_mount.as_millis_f64()),
                format!("{:.0}", m.launch.runtime_init.as_millis_f64()),
                format!("{:.0}", m.launch.code_load.as_millis_f64()),
                format!("{:.0}", m.launch.total().as_millis_f64()),
            ]);
        }
        let mut out = launch.render();

        let mut exec = Table::new(
            "Fig 4(b): S3-download execution, cold vs hot",
            &["language", "cold_s", "hot_s", "cold/hot"],
        );
        for m in &self.languages {
            exec.row(&[
                m.lang.to_string(),
                format!("{:.2}", m.cold_total.as_secs_f64()),
                format!("{:.2}", m.hot_exec.as_secs_f64()),
                format!("{:.2}", m.cold_over_hot()),
            ]);
        }
        out.push('\n');
        out.push_str(&exec.render());
        out.push_str("(paper: Go cold ≈ 3.06x hot; Java cold ≈ 2x its long execution)\n\n");

        let mut net = Table::new(
            "Fig 4(c): network setup time by mode",
            &["mode", "scope", "setup_ms", "vs_host"],
        );
        let host_single = self
            .network
            .iter()
            .find(|&&(m, s, _)| m == NetworkMode::Host && s == NetworkScope::SingleHost)
            .map(|&(_, _, c)| c.as_secs_f64())
            .expect("host mode measured");
        for &(mode, scope, cost) in &self.network {
            net.row(&[
                mode.to_string(),
                match scope {
                    NetworkScope::SingleHost => "single".to_string(),
                    NetworkScope::MultiHost => "multi".to_string(),
                },
                format!("{:.0}", cost.as_millis_f64()),
                format!("{:.1}x", cost.as_secs_f64() / host_single),
            ]);
        }
        out.push_str(&net.render());
        out.push_str("(paper: container ≈ half of none; overlay up to 23x host mode)\n");
        out
    }
}
