//! Cross-crate property tests: invariants that must hold for *any* workload
//! or configuration, not just the paper's scenarios.

use std::collections::BTreeMap;

use containersim::container::ExecOptions;
use containersim::{
    ContainerConfig, ContainerEngine, HardwareProfile, ImageId, NetworkConfig, NetworkMode,
};
use faas::{AppProfile, FixedKeepAlive, Gateway};
use hotc::{HotC, HotCConfig, KeyPolicy, PoolLimits, RuntimeKey};
use simclock::{SimDuration, SimTime};
use testkit::Gen;

/// Draws a valid container configuration from the image catalogue,
/// single-host network modes, and small env maps.
fn gen_config(g: &mut Gen) -> ContainerConfig {
    let image = *g.pick(&[
        "alpine:3.12",
        "python:3.8-alpine",
        "golang:1.13",
        "node:12-alpine",
        "openjdk:8-jre",
    ]);
    let mode = *g.pick(&[
        NetworkMode::None,
        NetworkMode::Bridge,
        NetworkMode::Host,
        NetworkMode::Container,
    ]);
    let mut env = BTreeMap::new();
    for _ in 0..g.usize_in(0..4) {
        env.insert(
            g.string(testkit::UPPER, 1..5),
            g.string(testkit::LOWER_DIGITS, 0..5),
        );
    }
    let mut exec = ExecOptions {
        cpu_millis: g.u32_in(0..4000),
        privileged: g.bool(),
        ..Default::default()
    };
    exec.env = env;
    ContainerConfig::bridge(ImageId::parse(image))
        .with_network(NetworkConfig::single(mode))
        .with_exec(exec)
}

/// Exact runtime keys are injective: distinct configurations never
/// collide (otherwise HotC would hand a request the wrong runtime).
#[test]
fn exact_keys_injective() {
    testkit::check(64, |g| {
        let a = gen_config(g);
        let b = gen_config(g);
        let ka = RuntimeKey::from_config(&a, KeyPolicy::Exact);
        let kb = RuntimeKey::from_config(&b, KeyPolicy::Exact);
        assert_eq!(a == b, ka == kb);
    });
}

/// Fuzzy keys are a coarsening of exact keys: exact-equal configs are
/// always fuzzy-equal.
#[test]
fn fuzzy_coarsens_exact() {
    testkit::check(64, |g| {
        let a = gen_config(g);
        let b = gen_config(g);
        let exact_eq = RuntimeKey::from_config(&a, KeyPolicy::Exact)
            == RuntimeKey::from_config(&b, KeyPolicy::Exact);
        let fuzzy_eq = RuntimeKey::from_config(&a, KeyPolicy::Fuzzy)
            == RuntimeKey::from_config(&b, KeyPolicy::Fuzzy);
        if exact_eq {
            assert!(fuzzy_eq);
        }
    });
}

/// Every request trace partitions exactly into its three segments, for
/// any app shape and either temperature.
#[test]
fn trace_segments_partition_total() {
    testkit::check(64, |g| {
        let compute_ms = g.u64_in(1..2000);
        let init_ms = g.u64_in(0..1000);
        let reuse = g.bool();
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
        let mut app = AppProfile::random_number();
        app.app_init = SimDuration::from_millis(init_ms);
        app.work.compute = SimDuration::from_millis(compute_ms);
        gw.register_app(app);

        let t1 = gw.handle("random-number", SimTime::ZERO).unwrap();
        let trace = if reuse {
            gw.handle("random-number", SimTime::from_secs(60)).unwrap()
        } else {
            t1
        };
        assert!(trace.is_well_formed());
        let parts = trace.initiation() + trace.execution() + trace.forwarding();
        assert_eq!(parts, trace.total());
    });
}

/// Under any serial request/gap sequence, HotC's bookkeeping matches the
/// engine and the pool never exceeds its limits after a tick — even with
/// crashes injected.
#[test]
fn hotc_invariants_under_random_serial_traffic() {
    testkit::check(64, |g| {
        let gaps = g.vec(1..60, |g| g.u64_in(1..400));
        let max_live = g.usize_in(1..8);
        let crash = g.bool();
        let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
        if crash {
            engine.set_fault_injection(0.2, 7);
        }
        let provider = HotC::new(HotCConfig {
            limits: PoolLimits::new(max_live, 0.99),
            ..Default::default()
        });
        let mut gw = Gateway::new(engine, provider);
        gw.register_app(AppProfile::random_number());

        let mut now = SimTime::ZERO;
        for gap in gaps {
            let trace = gw.handle("random-number", now).unwrap();
            now = trace.t6_gateway_out + SimDuration::from_secs(gap);
            gw.tick(now).unwrap();
            assert!(gw.engine().live_count() <= max_live);
            assert_eq!(gw.provider().pool().total_live(), gw.engine().live_count());
            assert_eq!(gw.engine().volumes().len(), gw.engine().live_count());
        }
    });
}

/// Keep-alive semantics: a request after a gap longer than the TTL is
/// always cold; within the TTL it is always warm (single client).
#[test]
fn keepalive_ttl_is_exact() {
    testkit::check(64, |g| {
        let ttl_s = g.u64_in(10..1000);
        let gaps = g.vec(1..30, |g| g.u64_in(1..2000));
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, FixedKeepAlive::new(SimDuration::from_secs(ttl_s)));
        gw.register_app(AppProfile::random_number());

        let first = gw.handle("random-number", SimTime::ZERO).unwrap();
        assert!(first.cold);
        let mut last_done = first.t4_func_end;
        for gap in gaps {
            let at = last_done + SimDuration::from_secs(gap);
            let trace = gw.handle("random-number", at).unwrap();
            // The pool held the container since `last_done` (its release).
            // Skip the exact boundary: the gateway hop (1.5 ms) lands the
            // idle time just past the TTL there.
            if gap > ttl_s {
                assert!(trace.cold, "gap {gap}s > ttl {ttl_s}s must be cold");
            } else if gap < ttl_s {
                assert!(!trace.cold, "gap {gap}s < ttl {ttl_s}s must be warm");
            }
            last_done = trace.t4_func_end;
        }
    });
}

/// The cold-start provider is stateless: request latency is independent
/// of history (same function ⇒ identical traces modulo timestamps).
#[test]
fn cold_start_latency_is_history_free() {
    testkit::check(64, |g| {
        let gaps = g.vec(2..20, |g| g.u64_in(1..100));
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, faas::ColdStartAlways::new());
        gw.register_app(AppProfile::random_number());
        let mut now = SimTime::ZERO;
        let mut first_latency = None;
        for gap in gaps {
            let trace = gw.handle("random-number", now).unwrap();
            let latency = trace.total();
            if let Some(expected) = first_latency {
                assert_eq!(latency, expected);
            } else {
                first_latency = Some(latency);
            }
            now = trace.t6_gateway_out + SimDuration::from_secs(gap);
        }
    });
}
