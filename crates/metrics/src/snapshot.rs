//! Point-in-time JSON export of a [`MetricsRegistry`].
//!
//! A [`MetricsSnapshot`] freezes every named metric into plain data —
//! histogram summaries keep the exact sample count and nanosecond sum next
//! to the approximate quantiles, so a snapshot can be reconciled against
//! e2e request totals exactly. All durations are reported in nanoseconds
//! (`*_ns` fields); serialization goes through [`stdshim::ToJson`].

use crate::histogram::LatencyHistogram;
use crate::registry::MetricsRegistry;
use crate::stage::Stage;
use crate::timeseries::TimeSeries;
use stdshim::{JsonValue, ToJson};

/// Summary of one histogram: exact count/sum/min/max/mean plus approximate
/// quantiles (all nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of all samples, in nanoseconds (saturating at `u64::MAX`).
    pub sum_ns: u64,
    /// Exact minimum.
    pub min_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
    /// Exact mean.
    pub mean_ns: u64,
    /// Approximate median.
    pub p50_ns: u64,
    /// Approximate 90th percentile.
    pub p90_ns: u64,
    /// Approximate 99th percentile.
    pub p99_ns: u64,
}

impl HistogramSummary {
    /// Summarizes a histogram (all-zero for an empty one).
    pub fn of(h: &LatencyHistogram) -> Self {
        if h.is_empty() {
            return HistogramSummary {
                count: 0,
                sum_ns: 0,
                min_ns: 0,
                max_ns: 0,
                mean_ns: 0,
                p50_ns: 0,
                p90_ns: 0,
                p99_ns: 0,
            };
        }
        HistogramSummary {
            count: h.count(),
            sum_ns: u64::try_from(h.sum_ns()).unwrap_or(u64::MAX),
            min_ns: h.min().as_nanos(),
            max_ns: h.max().as_nanos(),
            mean_ns: h.mean().as_nanos(),
            p50_ns: h.quantile(0.5).as_nanos(),
            p90_ns: h.quantile(0.9).as_nanos(),
            p99_ns: h.quantile(0.99).as_nanos(),
        }
    }
}

impl ToJson for HistogramSummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("count", self.count.to_json()),
            ("sum_ns", self.sum_ns.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("max_ns", self.max_ns.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("p50_ns", self.p50_ns.to_json()),
            ("p90_ns", self.p90_ns.to_json()),
            ("p99_ns", self.p99_ns.to_json()),
        ])
    }
}

/// A frozen view of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Named histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Per-scope stage summaries (`Stage::ALL` order within a scope),
    /// sorted by scope.
    pub stages: Vec<(String, Vec<(Stage, HistogramSummary)>)>,
    /// Named time series, sorted by name.
    pub series: Vec<(String, TimeSeries)>,
}

impl MetricsSnapshot {
    /// A counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A gauge's value, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// One stage's summary within a scope, if the scope exists.
    pub fn stage(&self, scope: &str, stage: Stage) -> Option<HistogramSummary> {
        let (_, stages) = self.stages.iter().find(|(s, _)| s == scope)?;
        stages.iter().find(|&&(s, _)| s == stage).map(|&(_, h)| h)
    }

    /// Sample count of one stage in a scope (0 when absent).
    pub fn stage_count(&self, scope: &str, stage: Stage) -> u64 {
        self.stage(scope, stage).map_or(0, |h| h.count)
    }

    /// Exact nanosecond sum of one stage in a scope (0 when absent).
    pub fn stage_sum_ns(&self, scope: &str, stage: Stage) -> u64 {
        self.stage(scope, stage).map_or(0, |h| h.sum_ns)
    }

    /// Exact nanosecond sum across all stages of a scope — reconciles with
    /// the sum of `RequestTrace::total()` over the scope's requests.
    pub fn scope_total_ns(&self, scope: &str) -> u64 {
        Stage::ALL
            .iter()
            .map(|&s| self.stage_sum_ns(scope, s))
            .sum()
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> JsonValue {
        let counters = JsonValue::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let gauges = JsonValue::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let histograms = JsonValue::Object(
            self.histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let stages = JsonValue::Object(
            self.stages
                .iter()
                .map(|(scope, stages)| {
                    (
                        scope.clone(),
                        JsonValue::Object(
                            stages
                                .iter()
                                .filter(|(_, h)| h.count > 0)
                                .map(|(s, h)| (s.name().to_string(), h.to_json()))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        let series = JsonValue::Object(
            self.series
                .iter()
                .map(|(k, ts)| {
                    (
                        k.clone(),
                        JsonValue::Array(
                            ts.points()
                                .iter()
                                .map(|&(at, v)| {
                                    JsonValue::Array(vec![
                                        JsonValue::Float(at.as_secs_f64()),
                                        JsonValue::Float(v),
                                    ])
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        JsonValue::object([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("stages", stages),
            ("series", series),
        ])
    }
}

impl MetricsRegistry {
    /// Freezes every metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters_snapshot(),
            gauges: self.gauges_snapshot(),
            histograms: self
                .histograms_snapshot()
                .into_iter()
                .map(|(k, h)| (k, HistogramSummary::of(&h)))
                .collect(),
            stages: self
                .stages_snapshot()
                .into_iter()
                .map(|(scope, stages)| {
                    (
                        scope,
                        stages
                            .into_iter()
                            .map(|(s, h)| (s, HistogramSummary::of(&h)))
                            .collect(),
                    )
                })
                .collect(),
            series: self.series_snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageSample;
    use simclock::{SimDuration, SimTime};

    #[test]
    fn snapshot_round_trips_values() {
        let reg = MetricsRegistry::new();
        reg.counter("a/requests").add(7);
        reg.gauge("pool/size").set(3.0);
        reg.histogram("e2e").record(SimDuration::from_millis(10));
        let mut s = StageSample::new();
        s.set(Stage::Exec, SimDuration::from_millis(4));
        s.set(Stage::RuntimeInit, SimDuration::from_millis(6));
        reg.stage_set("fn/x").record(&s);
        reg.sample_series("demand", SimTime::from_secs(30), 2.0);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("a/requests"), Some(7));
        assert_eq!(snap.gauge("pool/size"), Some(3.0));
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.stage_count("fn/x", Stage::Exec), 1);
        assert_eq!(
            snap.scope_total_ns("fn/x"),
            SimDuration::from_millis(10).as_nanos()
        );
        assert_eq!(snap.series[0].1.len(), 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.counter("gateway/requests").incr();
        let mut s = StageSample::new();
        s.set(Stage::Exec, SimDuration::from_millis(1));
        reg.stage_set("all").record(&s);
        let text = reg.snapshot().to_json().to_pretty_string();
        assert!(text.contains("\"gateway/requests\": 1"));
        assert!(text.contains("\"exec\""));
        assert!(text.contains("\"sum_ns\""));
        // Zero-count stages are omitted from the scope object.
        assert!(!text.contains("\"image_pull\""));
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let s = HistogramSummary::of(&LatencyHistogram::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
    }
}
