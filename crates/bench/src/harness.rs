//! Timed-loop micro-benchmark harness (std-only `criterion` replacement).
//!
//! Each bench target under `benches/` builds a [`Harness`], registers its
//! routines with [`Harness::bench`] / [`Harness::bench_with_setup`], and
//! calls [`Harness::finish`], which prints a per-routine summary table and
//! emits machine-readable JSON:
//!
//! - full mode: `BENCH_<suite>.json`, one pretty-printed object per suite;
//! - `--smoke` mode (or `BENCH_SMOKE=1`): drastically shortened warmup and
//!   measurement windows, and one compact JSON object appended as a line to
//!   `BENCH_ci.json` — running every suite yields a JSON-Lines artifact for
//!   CI to upload, seeding the repo's perf trajectory.
//!
//! Output lands in `BENCH_OUT_DIR` when set, else the current directory
//! (the package root under `cargo bench`).
//!
//! Methodology: a warmup loop sizes a batch so one timing sample spans
//! ≈50 µs (amortising `Instant::now()` overhead for nanosecond-scale
//! routines), one further timed batch is run and **discarded** (caches,
//! branch predictors, and lazily-allocated state settle outside the
//! recorded set), then batches are sampled until the measurement window
//! closes *and* at least [`MIN_SAMPLES`] samples exist — slow routines
//! extend the window instead of gating CI on two or three cold samples.
//! Reported numbers are per-iteration nanoseconds over those samples.

use std::time::{Duration, Instant};

use stdshim::{JsonValue, ToJson};

/// Target wall-clock span of a single timing sample.
const SAMPLE_SPAN: Duration = Duration::from_micros(50);

/// Minimum recorded samples per routine; the measurement window auto-extends
/// until reached, so smoke-mode records are stable enough to gate CI on.
const MIN_SAMPLES: usize = 10;

/// One registered routine's measurements, in per-iteration nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Routine name, e.g. `pool/acquire_exec_release_reuse`.
    pub name: String,
    /// Mean per-iteration time over all samples.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Median sample's per-iteration time.
    pub median_ns: f64,
    /// Number of timing samples taken.
    pub samples: usize,
    /// Iterations per timing sample (1 for setup-per-iteration routines).
    pub iters_per_sample: u64,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", self.name.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("median_ns", self.median_ns.to_json()),
            ("samples", self.samples.to_json()),
            ("iters_per_sample", self.iters_per_sample.to_json()),
        ])
    }
}

/// A suite of timed-loop micro-benchmarks.
pub struct Harness {
    suite: String,
    smoke: bool,
    warmup: Duration,
    measure: Duration,
    results: Vec<BenchResult>,
    derived: Vec<(String, f64)>,
}

impl Harness {
    /// Creates a harness for the named suite, reading `--smoke` from the
    /// command line (any position; other flags such as cargo's `--bench`
    /// are ignored) and the `BENCH_SMOKE` environment variable.
    pub fn new(suite: &str) -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var_os("BENCH_SMOKE").is_some_and(|v| v == "1");
        let (warmup, measure) = if smoke {
            (Duration::from_millis(2), Duration::from_millis(10))
        } else {
            (Duration::from_millis(100), Duration::from_millis(400))
        };
        Harness {
            suite: suite.to_string(),
            smoke,
            warmup,
            measure,
            results: Vec::new(),
            derived: Vec::new(),
        }
    }

    /// Whether the harness runs in shortened CI-smoke mode.
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// Mean of an already-recorded routine, for computing derived metrics
    /// from sibling results (e.g. a scaling-efficiency curve).
    pub fn mean_of(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
    }

    /// Records a derived (computed, not timed) metric. Derived metrics ride
    /// along in the suite's JSON under `"derived"` so trend tooling and CI
    /// gates can read them without re-deriving the arithmetic.
    pub fn record_derived(&mut self, name: &str, value: f64) {
        println!(
            "{:<44} {:>12.4}  (derived)",
            format!("{}/{}", self.suite, name),
            value,
        );
        self.derived.push((name.to_string(), value));
    }

    /// Times `routine` in calibrated batches. The routine's return value is
    /// passed through [`std::hint::black_box`] so the computation cannot be
    /// optimised away.
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        // Warmup: run until the window closes, counting iterations to size
        // the timing batch.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let batch = (SAMPLE_SPAN.as_nanos() / per_iter.max(1)).clamp(1, 1 << 20) as u64;

        // Discard one full-size batch: the warmup loop ran unbatched, so the
        // first batched pass still pays one-time costs (allocator growth,
        // cache shape of the batch loop) that would skew a short window.
        for _ in 0..batch {
            std::hint::black_box(routine());
        }

        let mut samples = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || samples.len() < MIN_SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.push(name, samples, batch);
    }

    /// Times `routine` exactly once and records the single wall-clock span
    /// as the routine's mean — for heavyweight end-to-end runs (seconds-long
    /// trace replays) where the calibrated sampling loop would multiply a
    /// minute-scale routine past any CI budget. Returns the routine's output
    /// so the caller can assert on it and derive metrics (req/s, high-water
    /// marks) from the run that was actually timed.
    pub fn bench_once<R>(&mut self, name: &str, routine: impl FnOnce() -> R) -> R {
        let t = Instant::now();
        let out = std::hint::black_box(routine());
        let ns = t.elapsed().as_nanos().max(1) as f64;
        self.push(name, vec![ns], 1);
        out
    }

    /// Times `routine` on a fresh input from `setup` each iteration; only
    /// the routine itself is inside the timed span (criterion's
    /// `iter_batched` shape). Suitable for routines that consume or mutate
    /// their input and take ≳1 µs.
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let warm_start = Instant::now();
        let mut warmed = false;
        while warm_start.elapsed() < self.warmup || !warmed {
            let input = setup();
            std::hint::black_box(routine(input));
            warmed = true;
        }
        // Discarded settling run, symmetric with `bench`.
        std::hint::black_box(routine(setup()));

        let mut samples = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || samples.len() < MIN_SAMPLES {
            let input = setup();
            let t = Instant::now();
            let output = std::hint::black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
            // Teardown of the routine's output happens outside the timed
            // span (criterion's `iter_with_large_drop`): a routine that
            // consumes a large fixture is measured on its work, not on
            // dropping the fixture.
            drop(output);
        }
        self.push(name, samples, 1);
    }

    fn push(&mut self, name: &str, mut samples: Vec<f64>, iters_per_sample: u64) {
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        let result = BenchResult {
            name: name.to_string(),
            mean_ns,
            min_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            samples: samples.len(),
            iters_per_sample,
        };
        println!(
            "{:<44} mean {:>12.1} ns  min {:>12.1} ns  median {:>12.1} ns  ({} samples x {} iters)",
            format!("{}/{}", self.suite, result.name),
            result.mean_ns,
            result.min_ns,
            result.median_ns,
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    fn to_json(&self) -> JsonValue {
        let derived = JsonValue::array(self.derived.iter().map(|(name, value)| {
            JsonValue::object([("name", name.to_json()), ("value", value.to_json())])
        }));
        // Host parallelism rides along so gates on multi-thread scaling can
        // tell "regression" apart from "the runner has fewer cores than the
        // curve needs" (the perf-gate binary skips such gates, visibly).
        let parallelism = std::thread::available_parallelism().map_or(1, usize::from);
        JsonValue::object([
            ("suite", self.suite.to_json()),
            ("mode", if self.smoke { "smoke" } else { "full" }.to_json()),
            ("parallelism", parallelism.to_json()),
            ("results", self.results.to_json()),
            ("derived", derived),
        ])
    }

    /// Writes the suite's JSON artifact(s). Panics on I/O failure so a CI
    /// run cannot silently drop its perf numbers.
    pub fn finish(self) {
        let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
        let json = self.to_json();
        if self.smoke {
            // One line per suite: BENCH_ci.json accumulates a JSON-Lines
            // record across every `cargo bench -- --smoke` target.
            let path = format!("{dir}/BENCH_ci.json");
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("open {path}: {e}"));
            writeln!(f, "{json}").unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("[{}] appended smoke results to {path}", self.suite);
        } else {
            let path = format!("{dir}/BENCH_{}.json", self.suite);
            std::fs::write(&path, json.to_pretty_string() + "\n")
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("[{}] wrote {path}", self.suite);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_harness(suite: &str) -> Harness {
        let mut h = Harness::new(suite);
        // Force smoke timings regardless of the test invocation's args.
        h.smoke = true;
        h.warmup = Duration::from_micros(200);
        h.measure = Duration::from_millis(2);
        h
    }

    #[test]
    fn bench_records_sane_stats() {
        let mut h = smoke_harness("selftest");
        let mut acc = 0u64;
        h.bench("wrapping_add", || {
            acc = acc.wrapping_add(0x9E37_79B9);
            acc
        });
        let r = &h.results[0];
        assert!(r.samples >= 10);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.mean_ns * 4.0);
        assert!(r.min_ns > 0.0);
    }

    #[test]
    fn bench_once_records_one_sample_and_returns_output() {
        let mut h = smoke_harness("selftest");
        let out = h.bench_once("single", || {
            let t = Instant::now();
            while t.elapsed() < Duration::from_micros(50) {
                std::hint::black_box(0u64);
            }
            41 + 1
        });
        assert_eq!(out, 42);
        let r = &h.results[0];
        assert_eq!(r.samples, 1);
        assert_eq!(r.iters_per_sample, 1);
        assert!(r.mean_ns >= 50_000.0, "got {}", r.mean_ns);
        assert_eq!(r.mean_ns, r.min_ns);
    }

    #[test]
    fn setup_variant_excludes_setup_cost() {
        let mut h = smoke_harness("selftest");
        h.bench_with_setup("sum_vec", || vec![1u64; 512], |v| v.iter().sum::<u64>());
        let r = &h.results[0];
        assert_eq!(r.iters_per_sample, 1);
        assert!(r.samples >= 10);
    }

    /// A routine slower than the whole measurement window must still land
    /// the minimum sample count — the window auto-extends rather than
    /// recording two or three cold samples (the old `hotc_tick_100_types`
    /// smoke-mode failure).
    #[test]
    fn slow_routines_extend_the_window_to_min_samples() {
        let mut h = smoke_harness("selftest");
        h.measure = Duration::from_micros(100);
        h.bench("slow_spin", || {
            let t = Instant::now();
            while t.elapsed() < Duration::from_micros(60) {
                std::hint::black_box(0u64);
            }
        });
        let r = &h.results[0];
        assert!(r.samples >= 10, "got only {} samples", r.samples);
    }

    #[test]
    fn smoke_output_is_json_lines() {
        let dir = std::env::temp_dir().join("hotc-bench-harness-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("BENCH_ci.json");
        let _ = std::fs::remove_file(&file);

        let mut h = smoke_harness("jsonl");
        h.bench("noop", || 1u32);
        // finish() reads BENCH_OUT_DIR at write time.
        std::env::set_var("BENCH_OUT_DIR", &dir);
        h.finish();
        let mut h2 = smoke_harness("jsonl2");
        h2.bench("noop", || 2u32);
        h2.finish();
        std::env::remove_var("BENCH_OUT_DIR");

        let text = std::fs::read_to_string(&file).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"suite\":\"jsonl\""));
        assert!(lines[1].contains("\"suite\":\"jsonl2\""));
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
    }
}
