//! Shape assertions for every reproduced figure: the relationships the paper
//! reports must hold in our reproduction (who wins, by roughly what factor,
//! where crossovers fall). Absolute values are recorded in EXPERIMENTS.md.

use containersim::LanguageRuntime;
use hotc_bench::experiments as exp;

#[test]
fn fig1_first_request_of_each_batch_is_coldest() {
    let r = exp::fig1::run(4, 10);
    assert!(r.first_is_always_slowest());
    // The serverless CDF has a long tail; the local one is flat.
    assert!(r.serverless_tail_ratio > 5.0, "{}", r.serverless_tail_ratio);
    assert!(r.local_tail_ratio < 1.2, "{}", r.local_tail_ratio);
    // Cold start makes the max clearly exceed the average.
    assert!(r.high_over_avg_pct > 31.7, "{}", r.high_over_avg_pct);
}

#[test]
fn fig2_few_images_dominate() {
    let r = exp::fig2::run(5000, 42);
    // Fig 2(a): a few images dominate, even harder among popular projects.
    assert!(r.all_top4_share > 0.55, "{}", r.all_top4_share);
    assert!(r.top100_top4_share > r.all_top4_share);
    // Fig 2(b): all three config categories are present and sum to 1.
    use workloads::dockerfiles::ConfigCategory;
    let sum: f64 = [
        ConfigCategory::Os,
        ConfigCategory::Language,
        ConfigCategory::Application,
    ]
    .iter()
    .map(|&c| r.category_share(c))
    .sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn fig4_language_and_network_ratios() {
    let r = exp::fig4::run();
    // (b) Go cold ≈ 3.06× hot.
    let go = r.lang(LanguageRuntime::Go).cold_over_hot();
    assert!((2.5..3.6).contains(&go), "go cold/hot = {go}");
    // Java: cold roughly doubles the already long execution.
    let java = r.lang(LanguageRuntime::Java);
    let jr = java.cold_over_hot();
    assert!((1.8..2.9).contains(&jr), "java cold/hot = {jr}");
    // Java's hot execution is the longest of the four.
    for lang in [
        LanguageRuntime::Python,
        LanguageRuntime::Go,
        LanguageRuntime::NodeJs,
    ] {
        assert!(java.hot_exec > r.lang(lang).hot_exec);
    }
    // (a) Java launches slowest (JVM boot), Go fastest.
    assert!(
        r.lang(LanguageRuntime::Java).launch.total() > r.lang(LanguageRuntime::Go).launch.total()
    );
    // (c) overlay up to 23× host.
    let overlay = r.overlay_over_host();
    assert!((20.0..25.0).contains(&overlay), "overlay/host = {overlay}");
}

#[test]
fn fig5_initiation_dominates_cold_requests() {
    let r = exp::fig5::run();
    assert!(
        r.cold_initiation_share() > 0.8,
        "{}",
        r.cold_initiation_share()
    );
    // Warm requests spend most of their time executing, not initiating.
    assert!(r.warm.execution() > r.warm.initiation());
    assert!(r.cold.total() > r.warm.total() * 10);
    // §III-A: the edge platforms show "much similar" results — initiation
    // dominates cold requests everywhere.
    for p in &r.platforms {
        assert!(
            p.cold_initiation_share() > 0.8,
            "{}: {}",
            p.platform,
            p.cold_initiation_share()
        );
    }
}

#[test]
fn fig8_reductions_match_paper_bands() {
    let r = exp::fig8::run(10);
    let v3_server = r.cell("v3-app", "server").reduction_pct();
    let tf_server = r.cell("TF-API-app", "server").reduction_pct();
    let v3_pi = r.cell("v3-app", "raspberry-pi3").reduction_pct();
    let tf_pi = r.cell("TF-API-app", "raspberry-pi3").reduction_pct();

    // Paper: 33.2 / 23.9 server, 26.6 / 20.6 Pi. Allow ±8 points.
    assert!((25.0..41.0).contains(&v3_server), "v3 server {v3_server}");
    assert!((16.0..32.0).contains(&tf_server), "tf server {tf_server}");
    assert!((18.0..35.0).contains(&v3_pi), "v3 pi {v3_pi}");
    assert!((12.0..29.0).contains(&tf_pi), "tf pi {tf_pi}");

    // Shape: v3 gains more than TF (heavier model load); the edge gains less
    // than the server (compute dominates there).
    assert!(v3_server > tf_server);
    assert!(v3_pi > tf_pi);
    assert!(v3_pi < v3_server);
    assert!(tf_pi < tf_server);
}

#[test]
fn fig9_hotc_latency_drops_as_pool_warms() {
    let r = exp::fig9::run(40, 7);
    // Without HotC everything pays setup; with HotC the mean is far lower.
    assert!(r.hotc_mean < r.default_mean / 3);
    // The warm regime approaches the 60 ms transform.
    let warm = r.hotc_warm_regime_mean().as_millis_f64();
    assert!(warm < 120.0, "warm regime mean {warm} ms");
    // Only the first few per-type requests cold-start.
    assert!(r.hotc_cold_fraction < 0.25, "{}", r.hotc_cold_fraction);
}

#[test]
fn fig10_markov_correction_helps_lagging_smoother() {
    let r = exp::fig10::run(11);
    let es = r.strategy("exp-smoothing(0.3)");
    let combo = r.strategy("es+markov(0.3)");
    // The combined predictor reduces both the overall and the jump error of
    // the lagging smoother (paper: 29 % → 10 % on the jump).
    assert!(combo.mape < es.mape, "{} !< {}", combo.mape, es.mape);
    assert!(
        combo.jump_error < es.jump_error,
        "{} !< {}",
        combo.jump_error,
        es.jump_error
    );
    // At the deployed α = 0.8 the combination must not hurt.
    let es8 = r.strategy("exp-smoothing(0.8)");
    let combo8 = r.strategy("es+markov(0.8)");
    assert!(combo8.mape <= es8.mape * 1.05);
}

#[test]
fn fig11_trace_features_and_replay_ordering() {
    let r = exp::fig11::run(3, 10.0);
    // Burst at T710 relative to the pre-burst level.
    assert!(r.trace[710] > r.trace[700] * 8.0);
    // Afternoon decline and evening rise.
    assert!(r.trace[850] > r.trace[1150]);
    assert!(r.trace[1390] > r.trace[1210]);
    // Backends order as expected.
    let cold = r.replay("cold-start");
    let ka = r.replay("fixed-keepalive");
    let hc = r.replay("hotc");
    assert!(hc.mean_latency_ms <= ka.mean_latency_ms * 1.15);
    assert!(ka.mean_latency_ms < cold.mean_latency_ms / 5.0);
    assert!(hc.cold_fraction < 0.05);
    assert!((cold.cold_fraction - 1.0).abs() < 1e-9);
}

#[test]
fn fig12_serial_and_parallel() {
    let r = exp::fig12::run(20, 10, 30);
    // (a) default: every serial request pays the cold cost; HotC: only the
    // first.
    let default_spread = r.serial_default.iter().cloned().fold(f64::MIN, f64::max)
        / r.serial_default.iter().cloned().fold(f64::MAX, f64::min);
    assert!(default_spread < 1.5, "default is uniformly slow");
    assert!(r.serial_hotc[0] > 10.0 * r.serial_hotc[1]);
    assert!(r.serial_hotc[1..].iter().all(|&l| l < 120.0));
    // (b) paper: HotC ≈ 9 % of default.
    let ratio = r.parallel_ratio();
    assert!((0.05..0.20).contains(&ratio), "parallel ratio {ratio}");
}

#[test]
fn fig13_ramps() {
    let r = exp::fig13::run(10);
    // Increasing: HotC's later rounds are cheaper than the default's.
    let inc = &r.increasing;
    for round in 2..inc.counts.len() {
        assert!(inc.hotc_ms[round] < inc.default_ms[round]);
    }
    // Decreasing: after round 0 everything is warm under HotC.
    let dec = &r.decreasing;
    assert!(dec.hotc_cold[0] > 0.9);
    for round in 1..dec.counts.len() {
        assert!(
            dec.hotc_cold[round] < 0.05,
            "round {round} cold {}",
            dec.hotc_cold[round]
        );
        assert!(dec.hotc_ms[round] < 120.0);
    }
}

#[test]
fn fig14_exponential_and_bursts() {
    let r = exp::fig14::run();
    // (a) increasing 2^i: from round 1 on, at least half of each round's
    // requests reuse the previous wave's runtimes.
    for round in 1..r.exp_increasing.counts.len() {
        assert!(
            r.exp_increasing.reuse_fraction[round] >= 0.5,
            "round {round}: {}",
            r.exp_increasing.reuse_fraction[round]
        );
    }
    // Decreasing: everything after the peak reuses.
    for round in 1..r.exp_decreasing.counts.len() {
        assert!(r.exp_decreasing.reuse_fraction[round] > 0.95);
    }
    // (b) paper: ≈9 % at the first burst, up to ≈73 % later.
    let reductions = r.bursts.reductions_pct();
    assert!(
        (4.0..18.0).contains(&reductions[0]),
        "first burst {}",
        reductions[0]
    );
    let best = reductions[1..].iter().cloned().fold(f64::MIN, f64::max);
    assert!(best > 45.0, "best later burst {best}");
    assert!(reductions[1..].iter().all(|&x| x > reductions[0]));
}

#[test]
fn fig15_overhead_is_negligible() {
    let r = exp::fig15::run();
    // (a) ten live containers: <1 % CPU; ≈0.7 MB + small runtime per container.
    assert!(r.cpu_for_ten < 0.01, "{}", r.cpu_for_ten);
    assert!(
        (0.5..6.0).contains(&r.mem_per_container_mb),
        "{}",
        r.mem_per_container_mb
    );
    // (b) the running app dwarfs the idle container, and resources return to
    // the idle level after the app stops.
    let cpu = r.timeline_cpu.values();
    let mem = r.timeline_mem.values();
    let idle_mem = mem[2];
    let busy_mem = mem[(r.app_start_s + 2) as usize];
    let after_mem = mem[(r.app_stop_s + 2) as usize];
    assert!(busy_mem > idle_mem + 1000.0, "app adds GBs");
    assert!((after_mem - idle_mem).abs() < 1.0, "OS reclaims app memory");
    let busy_cpu = cpu[(r.app_start_s + 2) as usize];
    let idle_cpu = cpu[2];
    assert!(busy_cpu > idle_cpu + 0.2);
}
