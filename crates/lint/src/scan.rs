//! String/comment-aware source scanning.
//!
//! The analyzer works line by line over a *masked* copy of each source file:
//! comments and the contents of string/char literals are blanked out (byte
//! for byte, newlines preserved, so line/column positions survive), which
//! lets the rules use plain substring matching without a real parser —
//! a `".unwrap()"` inside a string literal or a doc comment can never
//! trigger the `unwrap` rule, because by the time a rule looks at the line
//! those bytes are spaces.

/// A scanned source file: masked code lines for rule matching, comment-only
/// lines for allow-escape parsing, and a per-line in-`#[cfg(test)]` flag.
pub struct Scanned {
    /// Original lines, verbatim.
    pub raw: Vec<String>,
    /// Masked lines: comments and literal contents blanked.
    pub code: Vec<String>,
    /// The complement view: only comment text survives, code and literals
    /// are blanked — so an allow-escape marker inside a string literal is
    /// never mistaken for a real escape comment.
    pub comments: Vec<String>,
    /// `test[i]`: line `i` is inside (or is) a `#[cfg(test)]`-gated item.
    pub test: Vec<bool>,
}

/// Scans a file into masked lines plus test-region flags.
pub fn scan(src: &str) -> Scanned {
    let (masked, comment_text) = mask_source(src);
    let raw: Vec<String> = src.lines().map(str::to_string).collect();
    let code: Vec<String> = masked.lines().map(str::to_string).collect();
    let comments: Vec<String> = comment_text.lines().map(str::to_string).collect();
    let test = test_regions(&code);
    Scanned {
        raw,
        code,
        comments,
        test,
    }
}

/// Lexer state for [`mask_source`].
enum State {
    Code,
    LineComment,
    /// Nested block comment, with depth.
    BlockComment(u32),
    /// Regular `"…"` string (also `b"…"`).
    Str,
    /// Raw string `r#…#"…"#…#` (also `br…`), with the hash count.
    RawStr(usize),
    /// Char or byte-char literal `'…'`.
    CharLit,
}

/// True if `b` can be part of an identifier (so `r` in `for` is not a raw
/// string prefix).
fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blanks comments and literal contents from the code view and everything
/// but comment text from the comments view; both preserve length and
/// newlines. Returns `(code, comments)`.
pub fn mask_source(src: &str) -> (String, String) {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut com: Vec<u8> = b
        .iter()
        .map(|&c| if c == b'\n' || c == b'\r' { c } else { b' ' })
        .collect();
    let mut state = State::Code;
    let mut i = 0;
    // Blank `out[i]` unless it is a newline (line structure must survive).
    fn blank(out: &mut [u8], i: usize) {
        if out[i] != b'\n' && out[i] != b'\r' {
            out[i] = b' ';
        }
    }
    // Move byte `i` from the code view to the comments view.
    fn to_comment(out: &mut [u8], com: &mut [u8], src: &[u8], i: usize) {
        blank(out, i);
        if src[i] != b'\n' && src[i] != b'\r' {
            com[i] = src[i];
        }
    }
    while i < b.len() {
        match state {
            State::Code => {
                let prev_ident = i > 0 && is_ident_byte(b[i - 1]);
                match b[i] {
                    b'/' if b.get(i + 1) == Some(&b'/') => {
                        state = State::LineComment;
                        to_comment(&mut out, &mut com, b, i);
                    }
                    b'/' if b.get(i + 1) == Some(&b'*') => {
                        state = State::BlockComment(1);
                        to_comment(&mut out, &mut com, b, i);
                        to_comment(&mut out, &mut com, b, i + 1);
                        i += 1;
                    }
                    b'"' => state = State::Str,
                    b'r' | b'b' if !prev_ident => {
                        // Possible r"…", r#"…"#, b"…", br#"…"#, b'…' prefix.
                        let mut j = i + 1;
                        if b[i] == b'b' && b.get(j) == Some(&b'r') {
                            j += 1;
                        }
                        if b[i] == b'b' && b.get(j) == Some(&b'\'') {
                            state = State::CharLit;
                            i = j; // skip to the opening quote
                        } else if b[i] != b'b' || j > i + 1 {
                            let hashes = b[j..].iter().take_while(|&&c| c == b'#').count();
                            if b.get(j + hashes) == Some(&b'"') {
                                state = State::RawStr(hashes);
                                i = j + hashes; // skip to the opening quote
                            }
                        } else if b.get(j) == Some(&b'"') {
                            state = State::Str;
                            i = j;
                        }
                    }
                    // Char literal vs lifetime: '\…' or 'x' followed by a
                    // closing quote is a literal; anything else ('a in
                    // generics) is a lifetime and stays code.
                    b'\''
                        if b.get(i + 1) == Some(&b'\\')
                            || (i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'') =>
                    {
                        state = State::CharLit;
                    }
                    _ => {}
                }
            }
            State::LineComment => {
                if b[i] == b'\n' {
                    state = State::Code;
                } else {
                    to_comment(&mut out, &mut com, b, i);
                }
            }
            State::BlockComment(depth) => {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    to_comment(&mut out, &mut com, b, i);
                    to_comment(&mut out, &mut com, b, i + 1);
                    i += 1;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    to_comment(&mut out, &mut com, b, i);
                    to_comment(&mut out, &mut com, b, i + 1);
                    i += 1;
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Code
                    };
                } else {
                    to_comment(&mut out, &mut com, b, i);
                }
            }
            State::Str => {
                if b[i] == b'\\' {
                    blank(&mut out, i);
                    if i + 1 < b.len() {
                        blank(&mut out, i + 1);
                        i += 1;
                    }
                } else if b[i] == b'"' {
                    state = State::Code;
                } else {
                    blank(&mut out, i);
                }
            }
            State::RawStr(hashes) => {
                if b[i] == b'"'
                    && b[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == b'#')
                        .count()
                        == hashes
                {
                    i += hashes; // leave the quote and hashes as code
                    state = State::Code;
                } else {
                    blank(&mut out, i);
                }
            }
            State::CharLit => {
                if b[i] == b'\\' {
                    blank(&mut out, i);
                    if i + 1 < b.len() {
                        blank(&mut out, i + 1);
                        i += 1;
                    }
                } else if b[i] == b'\'' {
                    state = State::Code;
                } else {
                    blank(&mut out, i);
                }
            }
        }
        i += 1;
    }
    // Multi-byte UTF-8 sequences are only ever replaced byte-for-byte with
    // ASCII spaces (code view) or copied whole (comments view), so both
    // buffers stay valid UTF-8; lossy conversion is a formality.
    (
        String::from_utf8_lossy(&out).into_owned(),
        String::from_utf8_lossy(&com).into_owned(),
    )
}

/// Marks lines belonging to `#[cfg(test)]`-gated items by tracking brace
/// depth on the masked source: the region opens at the first `{` after the
/// attribute and closes when depth returns to its pre-item level. An
/// attribute followed by `;` before any `{` gates a single statement-like
/// item and is closed there.
pub fn test_regions(code: &[String]) -> Vec<bool> {
    let mut out = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_close: Option<i64> = None;
    for (idx, line) in code.iter().enumerate() {
        if region_close.is_some() || pending {
            out[idx] = true;
        }
        if line.contains("#[cfg(test)]") && region_close.is_none() {
            pending = true;
            out[idx] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending && region_close.is_none() {
                        region_close = Some(depth);
                        pending = false;
                        out[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(close) = region_close {
                        if depth <= close {
                            region_close = None;
                        }
                    }
                }
                ';' if pending && region_close.is_none() => {
                    pending = false;
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        mask_source(src).0
    }

    #[test]
    fn comments_view_keeps_comment_text_only() {
        let (code, com) = mask_source("let s = \"lint:allow(\"; // lint:allow(unwrap, why)\n");
        assert!(!code.contains("lint:allow"));
        assert!(com.contains("lint:allow(unwrap, why)"));
        // The string literal's content is in neither view.
        assert_eq!(com.matches("lint:allow").count(), 1);
        assert!(com.trim_start().starts_with("//"));
    }

    #[test]
    fn line_comments_are_blanked() {
        let m = masked("let x = 1; // Instant::now()\nlet y = 2;");
        assert!(!m.contains("Instant"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn doc_comments_are_blanked() {
        let m = masked("/// calls .unwrap() on it\nfn f() {}");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("fn f() {}"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let m = masked("a /* one /* two */ still comment */ b");
        assert!(m.contains('a'));
        assert!(m.contains('b'));
        assert!(!m.contains("still"));
    }

    #[test]
    fn string_contents_are_blanked_with_escapes() {
        let m = masked(r#"let s = "quote \" .unwrap() "; s.len()"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("s.len()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = masked(r##"let s = r#"no "escape" .expect( here"#; done()"##);
        assert!(!m.contains("expect"));
        assert!(m.contains("done()"));
    }

    #[test]
    fn char_literals_blanked_lifetimes_kept() {
        let m = masked("fn f<'a>(x: &'a str) -> char { '\\'' }");
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains("\\'"));
        let m2 = masked("let q = '\"'; x.iter()");
        assert!(!m2.contains('"'));
        assert!(m2.contains("x.iter()"));
    }

    #[test]
    fn newlines_survive_masking() {
        let src = "a\n/* x\ny */\nb";
        let m = masked(src);
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn test_region_covers_mod_tests() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scan(src);
        assert!(!s.test[0]);
        assert!(s.test[1]);
        assert!(s.test[2]);
        assert!(s.test[3]);
        assert!(s.test[4]);
        assert!(!s.test[5]);
    }

    #[test]
    fn test_region_on_single_use_statement() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let s = scan(src);
        assert!(s.test[0]);
        assert!(s.test[1]);
        assert!(!s.test[2]);
    }
}
