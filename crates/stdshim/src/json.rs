//! Minimal JSON writer for experiment and benchmark output.
//!
//! The workspace emits JSON in exactly one direction — results out to disk
//! (`BENCH_*.json`, figure artifacts) — so this module implements only that:
//! a [`JsonValue`] tree, a [`ToJson`] trait, and a serializer. There is no
//! parser and no derive machinery; result structs implement [`ToJson`] by
//! hand, which keeps the output schema explicit and reviewable.
//!
//! Object fields keep insertion order so emitted files are stable and
//! diffable across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (emitted without a decimal point).
    Int(i64),
    /// Floating-point number. Non-finite values serialize as `null`, since
    /// JSON has no NaN/Infinity.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(name, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each item.
    pub fn array<T: ToJson>(items: impl IntoIterator<Item = T>) -> JsonValue {
        JsonValue::Array(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Serializes with two-space indentation, for human-inspected artifacts.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // `{f:?}` keeps a decimal point or exponent, so the value
                    // round-trips as a float (`1.0`, not `1`).
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(colon);
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`JsonValue`]; the workspace's replacement for
/// `#[derive(Serialize)]`.
pub trait ToJson {
    /// Renders `self` as a JSON tree.
    fn to_json(&self) -> JsonValue;
}

/// Compact serialization (no whitespace); `to_string()` comes for free.
impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Int(*self as i64)
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl ToJson for u64 {
    fn to_json(&self) -> JsonValue {
        // u64 can exceed i64; fall back to float for the astronomically
        // large values (only plausible for raw nanosecond counters).
        match i64::try_from(*self) {
            Ok(i) => JsonValue::Int(i),
            Err(_) => JsonValue::Float(*self as f64),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<K: std::fmt::Display, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(true.to_json().to_string(), "true");
        assert_eq!(42u32.to_json().to_string(), "42");
        assert_eq!((-7i64).to_json().to_string(), "-7");
        assert_eq!(1.5f64.to_json().to_string(), "1.5");
        assert_eq!("hi".to_json().to_string(), "\"hi\"");
    }

    #[test]
    fn floats_stay_floats() {
        // A whole-number float must keep its decimal point.
        assert_eq!(1.0f64.to_json().to_string(), "1.0");
        assert_eq!(f64::NAN.to_json().to_string(), "null");
        assert_eq!(f64::INFINITY.to_json().to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}";
        assert_eq!(s.to_json().to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn collections_nest() {
        let v = JsonValue::object([
            ("name", "pool".to_json()),
            ("samples", vec![1u64, 2, 3].to_json()),
            ("p99", 1.25f64.to_json()),
            ("skipped", JsonValue::Null),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"pool","samples":[1,2,3],"p99":1.25,"skipped":null}"#
        );
    }

    #[test]
    fn field_order_preserved() {
        let v = JsonValue::object([("z", 1u8.to_json()), ("a", 2u8.to_json())]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_print_indents() {
        let v = JsonValue::object([("xs", vec![1u8].to_json())]);
        assert_eq!(v.to_pretty_string(), "{\n  \"xs\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_compact() {
        assert_eq!(JsonValue::Array(vec![]).to_pretty_string(), "[]\n");
        assert_eq!(JsonValue::Object(vec![]).to_string(), "{}");
    }

    #[test]
    fn huge_u64_degrades_to_float() {
        let v = u64::MAX.to_json().to_string();
        assert!(v.contains('e') || v.contains('.'), "got {v}");
    }

    #[test]
    fn options_and_maps() {
        let mut m = BTreeMap::new();
        m.insert("k", Some(3u8));
        m.insert("gone", None);
        assert_eq!(m.to_json().to_string(), r#"{"gone":null,"k":3}"#);
    }
}
