//! lint-fixture-path: crates/core/src/fixture.rs
fn f(x: Option<u32>) -> u32 {
    // lint:allow(unwrap, fixture invariant: caller checked is_some)
    let a = x.unwrap();
    a + x.unwrap_or(0)
}
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
