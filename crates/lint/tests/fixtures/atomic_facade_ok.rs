//! lint-fixture-path: crates/stdshim/src/sync_slots.rs
use crate::atomic::{Ordering, ShimAtomicU64 as AtomicU64};
#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;
}
