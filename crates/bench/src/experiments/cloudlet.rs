//! Extension experiment (§VII): a heterogeneous *cloudlet* — one cloud
//! server plus edge boards — under mixed light/heavy traffic.
//!
//! The hazard the paper's future work hints at: warm-runtime affinity is
//! blind to node speed, so a heavy inference that once landed on a Raspberry
//! Pi keeps going back to its warm-but-30×-slower runtime. The cost-aware
//! policy estimates completion (cold-start cost + node execution speed) and
//! pays a server cold start instead when that is cheaper.

use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
use faas::gateway::Gateway;
use faas::{AppProfile, FunctionSpec};
use hotc::HotC;
use hotc_cluster::{Cluster, SchedulePolicy};
use metrics_lite::{LatencyRecorder, Table};
use simclock::{SimDuration, SimRng, SimTime, Simulation};
use workloads::Arrival;

/// One policy's outcome on the cloudlet.
pub struct CloudletEval {
    /// Policy name.
    pub policy: &'static str,
    /// Mean latency of the light (qr-code) class (ms).
    pub light_mean_ms: f64,
    /// Mean latency of the heavy (v3-app) class (s).
    pub heavy_mean_s: f64,
    /// Fraction of heavy requests served on the server node.
    pub heavy_on_server: f64,
}

/// Result of the cloudlet experiment.
pub struct CloudletResult {
    /// Requests served per policy.
    pub requests: usize,
    /// Per-policy outcomes.
    pub evals: Vec<CloudletEval>,
}

fn build(policy: SchedulePolicy) -> Cluster {
    let mut gateways = vec![(
        "server".to_string(),
        Gateway::new(
            ContainerEngine::with_local_images(HardwareProfile::server()),
            HotC::with_defaults(),
        ),
    )];
    for i in 0..2 {
        gateways.push((
            format!("pi-{i}"),
            Gateway::new(
                ContainerEngine::with_local_images(HardwareProfile::raspberry_pi3()),
                HotC::with_defaults(),
            ),
        ));
    }
    let mut cluster = Cluster::new(policy, gateways);
    cluster.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
        LanguageRuntime::Go,
    )));
    cluster.register_everywhere(FunctionSpec::from_app(AppProfile::v3_app()));
    cluster
}

/// Mixed workload: light requests every ~2 s, a heavy inference every ~20 s.
fn workload(seed: u64, span: SimDuration) -> Vec<Arrival> {
    let mut rng = SimRng::seeded(seed);
    let mut out = Vec::new();
    let horizon = span.as_secs_f64();
    let mut t = 0.0;
    while t < horizon {
        t += rng.exponential(2.0);
        out.push(Arrival {
            at: SimTime::ZERO + SimDuration::from_secs_f64(t),
            config_id: 0, // light
        });
    }
    t = 5.0;
    while t < horizon {
        t += rng.exponential(20.0);
        out.push(Arrival {
            at: SimTime::ZERO + SimDuration::from_secs_f64(t),
            config_id: 1, // heavy
        });
    }
    out.sort_by_key(|a| a.at);
    out
}

fn eval(policy: SchedulePolicy, arrivals: &[Arrival]) -> CloudletEval {
    struct St {
        cluster: Cluster,
        light: LatencyRecorder,
        heavy: LatencyRecorder,
        heavy_on_server: usize,
        heavy_total: usize,
    }
    let mut sim = Simulation::new(St {
        cluster: build(policy),
        light: LatencyRecorder::new(),
        heavy: LatencyRecorder::new(),
        heavy_on_server: 0,
        heavy_total: 0,
    });
    let horizon = arrivals.last().map(|a| a.at).unwrap_or(SimTime::ZERO);
    let mut t = SimTime::ZERO;
    while t <= horizon + SimDuration::from_secs(60) {
        sim.schedule_at(t, move |s, st: &mut St| {
            st.cluster.tick(s.now()).expect("tick");
        });
        t += SimDuration::from_secs(30);
    }
    for a in arrivals {
        let heavy = a.config_id == 1;
        let function = if heavy { "v3-app" } else { "qr-code" };
        sim.schedule_at(a.at, move |s, st: &mut St| {
            let ticket = st.cluster.begin(function, s.now()).expect("begin");
            let node = ticket.node;
            s.schedule_at(ticket.inner.t4_func_end, move |_, st: &mut St| {
                let trace = st.cluster.finish(ticket).expect("finish");
                if heavy {
                    st.heavy.record(trace.total());
                    st.heavy_total += 1;
                    if node == 0 {
                        st.heavy_on_server += 1;
                    }
                } else {
                    st.light.record(trace.total());
                }
            });
        });
    }
    sim.run();
    let st = sim.into_state();
    CloudletEval {
        policy: policy.name(),
        light_mean_ms: st.light.mean().as_millis_f64(),
        heavy_mean_s: st.heavy.mean().as_secs_f64(),
        heavy_on_server: st.heavy_on_server as f64 / st.heavy_total.max(1) as f64,
    }
}

/// Runs the three relevant policies on the same mixed workload.
pub fn run(seed: u64) -> CloudletResult {
    let arrivals = workload(seed, SimDuration::from_mins(20));
    let evals = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ReuseAffinity,
        SchedulePolicy::CostAware,
    ]
    .into_iter()
    .map(|p| eval(p, &arrivals))
    .collect();
    CloudletResult {
        requests: arrivals.len(),
        evals,
    }
}

impl CloudletResult {
    /// Looks up a policy's outcome.
    pub fn eval(&self, policy: &str) -> &CloudletEval {
        self.evals
            .iter()
            .find(|e| e.policy == policy)
            .expect("policy evaluated")
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            format!(
                "Cloudlet (§VII): 1 server + 2 Raspberry Pis, {} mixed requests",
                self.requests
            ),
            &[
                "policy",
                "light_mean_ms",
                "heavy_mean_s",
                "heavy_on_server_%",
            ],
        );
        for e in &self.evals {
            table.row(&[
                e.policy.to_string(),
                format!("{:.1}", e.light_mean_ms),
                format!("{:.2}", e.heavy_mean_s),
                format!("{:.0}", e.heavy_on_server * 100.0),
            ]);
        }
        let mut out = table.render();
        out.push_str(
            "(warm affinity can pin heavy inference to a slow edge node; the cost-aware \
             policy pays a server cold start instead and wins on the heavy class)\n",
        );
        out
    }
}
