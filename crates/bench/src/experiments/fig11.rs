//! Figure 11: the UMass-campus YouTube request trace, and (as an extension)
//! replaying it against the three backends.
//!
//! The paper uses the trace to motivate three request patterns: a burst
//! (20 → 300 at T710), an afternoon decline (T800–T1200), and an evening
//! rise (T1200–T1400). We reproduce the trace shape and additionally replay
//! a scaled-down version through the gateway to compare backends under a
//! realistic daily pattern.

use crate::driver::run_workload;
use crate::experiments::server_gateway;
use faas::policy::{ColdStartAlways, FixedKeepAlive};
use faas::AppProfile;
use hotc::HotC;
use metrics_lite::{render_series, Table};
use simclock::SimDuration;
use workloads::youtube::{expand_to_arrivals, youtube_trace, YoutubeTraceParams};

/// Per-backend replay outcome.
pub struct ReplayEval {
    /// Backend name.
    pub backend: &'static str,
    /// Mean request latency.
    pub mean_latency_ms: f64,
    /// Fraction of requests that cold-started.
    pub cold_fraction: f64,
    /// Live containers left at the end of the day.
    pub live_at_end: usize,
}

/// Result of the Fig. 11 experiment.
pub struct Fig11Result {
    /// The requests-per-index trace (full resolution).
    pub trace: Vec<f64>,
    /// Backend comparison on the scaled replay.
    pub replays: Vec<ReplayEval>,
}

/// Generates the trace and replays a scaled version (1 index = 1 virtual
/// minute, rates divided by `scale_down`) through each backend.
pub fn run(seed: u64, scale_down: f64) -> Fig11Result {
    let trace = youtube_trace(&YoutubeTraceParams::default());

    // Scaled replay: 288 five-minute indices to keep the event count sane.
    let scaled_params = YoutubeTraceParams {
        length: 288,
        seed,
        ..Default::default()
    };
    let scaled: Vec<f64> = youtube_trace(&scaled_params)
        .into_iter()
        .map(|r| r / scale_down)
        .collect();
    let workload = expand_to_arrivals(&scaled, SimDuration::from_secs(300), 0, seed);

    let mut replays = Vec::new();
    let apps = [AppProfile::random_number()];
    let route = |_| "random-number".to_string();
    let tick = SimDuration::from_secs(30);

    let cold = run_workload(
        server_gateway(ColdStartAlways::new(), &apps),
        &workload,
        route,
        tick,
    );
    replays.push(ReplayEval {
        backend: "cold-start",
        mean_latency_ms: cold.mean_latency().as_millis_f64(),
        cold_fraction: cold.cold_fraction(),
        live_at_end: cold.gateway.engine().live_count(),
    });

    let ka = run_workload(
        server_gateway(FixedKeepAlive::aws_default(), &apps),
        &workload,
        route,
        tick,
    );
    replays.push(ReplayEval {
        backend: "fixed-keepalive",
        mean_latency_ms: ka.mean_latency().as_millis_f64(),
        cold_fraction: ka.cold_fraction(),
        live_at_end: ka.gateway.engine().live_count(),
    });

    let hc = run_workload(
        server_gateway(HotC::with_defaults(), &apps),
        &workload,
        route,
        tick,
    );
    replays.push(ReplayEval {
        backend: "hotc",
        mean_latency_ms: hc.mean_latency().as_millis_f64(),
        cold_fraction: hc.cold_fraction(),
        live_at_end: hc.gateway.engine().live_count(),
    });

    Fig11Result { trace, replays }
}

impl Fig11Result {
    /// Looks up a backend's replay.
    pub fn replay(&self, backend: &str) -> &ReplayEval {
        self.replays
            .iter()
            .find(|r| r.backend == backend)
            .expect("backend replayed")
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        // Downsample the 1440-index trace to 24 hourly bins for display.
        let hourly: Vec<f64> = self
            .trace
            .chunks(60)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let labels: Vec<String> = (0..hourly.len()).map(|h| format!("{h:02}:00")).collect();
        let mut out = render_series(
            "Fig 11: YouTube requests at the campus gateway (hourly mean of per-minute rate)",
            &labels,
            &hourly,
            48,
        );
        out.push_str(
            "(features: burst 20→300 at T710 ≈ 11:50, decline T800–T1200, rise T1200–T1400)\n\n",
        );

        let mut table = Table::new(
            "Trace replay across backends (scaled)",
            &["backend", "mean_latency_ms", "cold_fraction", "live_at_end"],
        );
        for r in &self.replays {
            table.row(&[
                r.backend.to_string(),
                format!("{:.1}", r.mean_latency_ms),
                format!("{:.3}", r.cold_fraction),
                r.live_at_end.to_string(),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}
