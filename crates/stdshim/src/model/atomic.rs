//! Model-instrumented atomic types, API-compatible with the
//! `std::sync::atomic` surface the slot protocol uses.
//!
//! Inside a [`Checker`](super::Checker) execution every operation becomes a
//! schedule point routed through the controlled scheduler and weak-memory
//! store model. Outside a run (plain unit tests, drained threads) each type
//! falls back to its embedded real atomic, so the instrumented build still
//! behaves sensibly everywhere.
//!
//! Location identity is the embedded atomic's address, valid for the
//! duration of one execution; labels (`L0`, `L1`, …) are assigned in
//! first-touch order, which replay preserves. An atomic dropped and
//! reallocated at the same address *within one execution* would alias — the
//! protocol tests keep everything alive in `Arc`s for the closure's
//! lifetime, which is the supported pattern.

use super::rt::{self, Op, OpResult, RmwKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Model-checked drop-in for [`std::sync::atomic::AtomicU64`].
#[derive(Debug)]
pub struct ModelAtomicU64 {
    inner: AtomicU64,
}

impl ModelAtomicU64 {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: u64) -> ModelAtomicU64 {
        ModelAtomicU64 {
            inner: AtomicU64::new(v),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Initial value for lazy per-run location registration: the real cell,
    /// untouched by in-run model stores.
    fn init(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    fn value_result(r: Option<OpResult>) -> Option<u64> {
        match r {
            Some(OpResult::Value(v)) => Some(v),
            Some(_) => None,
            None => None,
        }
    }

    /// See [`AtomicU64::load`].
    pub fn load(&self, o: Ordering) -> u64 {
        let modeled = rt::with_run(|sh, me| {
            sh.atomic_op(
                me,
                Op::Load {
                    addr: self.addr(),
                    init: self.init(),
                    o,
                },
            )
        });
        match modeled {
            // lint:allow(unwrap, Load ops always produce Value results; a None is checker corruption)
            Some(r) => Self::value_result(Some(r)).expect("load returns a value"),
            None => self.inner.load(o),
        }
    }

    /// See [`AtomicU64::store`].
    pub fn store(&self, value: u64, o: Ordering) {
        let modeled = rt::with_run(|sh, me| {
            sh.atomic_op(
                me,
                Op::Store {
                    addr: self.addr(),
                    init: self.init(),
                    value,
                    o,
                },
            )
        });
        if modeled.is_none() {
            self.inner.store(value, o);
        }
    }

    fn rmw(&self, kind: RmwKind, o: Ordering) -> Option<u64> {
        let modeled = rt::with_run(|sh, me| {
            sh.atomic_op(
                me,
                Op::Rmw {
                    addr: self.addr(),
                    init: self.init(),
                    kind,
                    o,
                },
            )
        });
        // lint:allow(unwrap, Rmw ops always produce Value results; a None is checker corruption)
        modeled.map(|r| Self::value_result(Some(r)).expect("rmw returns the old value"))
    }

    /// See [`AtomicU64::swap`].
    pub fn swap(&self, value: u64, o: Ordering) -> u64 {
        self.rmw(RmwKind::Swap(value), o)
            .unwrap_or_else(|| self.inner.swap(value, o))
    }

    /// See [`AtomicU64::fetch_add`].
    pub fn fetch_add(&self, value: u64, o: Ordering) -> u64 {
        self.rmw(RmwKind::Add(value), o)
            .unwrap_or_else(|| self.inner.fetch_add(value, o))
    }

    /// See [`AtomicU64::fetch_sub`].
    pub fn fetch_sub(&self, value: u64, o: Ordering) -> u64 {
        self.rmw(RmwKind::Sub(value), o)
            .unwrap_or_else(|| self.inner.fetch_sub(value, o))
    }

    /// See [`AtomicU64::fetch_and`].
    pub fn fetch_and(&self, value: u64, o: Ordering) -> u64 {
        self.rmw(RmwKind::And(value), o)
            .unwrap_or_else(|| self.inner.fetch_and(value, o))
    }

    /// See [`AtomicU64::fetch_or`].
    pub fn fetch_or(&self, value: u64, o: Ordering) -> u64 {
        self.rmw(RmwKind::Or(value), o)
            .unwrap_or_else(|| self.inner.fetch_or(value, o))
    }

    /// See [`AtomicU64::fetch_max`].
    pub fn fetch_max(&self, value: u64, o: Ordering) -> u64 {
        self.rmw(RmwKind::Max(value), o)
            .unwrap_or_else(|| self.inner.fetch_max(value, o))
    }

    fn cmpex(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Option<Result<u64, u64>> {
        let modeled = rt::with_run(|sh, me| {
            sh.atomic_op(
                me,
                Op::CmpEx {
                    addr: self.addr(),
                    init: self.init(),
                    current,
                    new,
                    success,
                    failure,
                },
            )
        });
        modeled.map(|r| match r {
            OpResult::Cas(v, true) => Ok(v),
            OpResult::Cas(v, false) => Err(v),
            _ => unreachable!("cas returns a cas result"),
        })
    }

    /// See [`AtomicU64::compare_exchange`].
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.cmpex(current, new, success, failure)
            .unwrap_or_else(|| self.inner.compare_exchange(current, new, success, failure))
    }

    /// See [`AtomicU64::compare_exchange_weak`]. The model never fails
    /// spuriously (a strict subset of the real op's behaviours — code
    /// correct under the model could still loop more on real hardware, but
    /// never the reverse).
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.cmpex(current, new, success, failure)
            .unwrap_or_else(|| {
                self.inner
                    .compare_exchange_weak(current, new, success, failure)
            })
    }
}

/// Model-checked drop-in for [`std::sync::atomic::AtomicUsize`] (a thin
/// cast layer over [`ModelAtomicU64`]).
#[derive(Debug)]
pub struct ModelAtomicUsize {
    inner: ModelAtomicU64,
}

impl ModelAtomicUsize {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: usize) -> ModelAtomicUsize {
        ModelAtomicUsize {
            inner: ModelAtomicU64::new(v as u64),
        }
    }

    /// See [`std::sync::atomic::AtomicUsize::load`].
    pub fn load(&self, o: Ordering) -> usize {
        self.inner.load(o) as usize
    }

    /// See [`std::sync::atomic::AtomicUsize::store`].
    pub fn store(&self, value: usize, o: Ordering) {
        self.inner.store(value as u64, o);
    }

    /// See [`std::sync::atomic::AtomicUsize::swap`].
    pub fn swap(&self, value: usize, o: Ordering) -> usize {
        self.inner.swap(value as u64, o) as usize
    }

    /// See [`std::sync::atomic::AtomicUsize::fetch_add`].
    pub fn fetch_add(&self, value: usize, o: Ordering) -> usize {
        self.inner.fetch_add(value as u64, o) as usize
    }

    /// See [`std::sync::atomic::AtomicUsize::fetch_sub`].
    pub fn fetch_sub(&self, value: usize, o: Ordering) -> usize {
        self.inner.fetch_sub(value as u64, o) as usize
    }

    /// See [`std::sync::atomic::AtomicUsize::fetch_max`].
    pub fn fetch_max(&self, value: usize, o: Ordering) -> usize {
        self.inner.fetch_max(value as u64, o) as usize
    }
}

/// Model-checked drop-in for [`std::sync::OnceLock`].
///
/// Initialization is modelled as a single acquire-release RMW on a pseudo
/// location (the anchor), so a reader that observes "initialized" also
/// observes everything the initializer published first — and a reader with
/// no synchronization may legitimately still see "uninitialized" even
/// though the real inner `OnceLock` is already set (stale read).
///
/// Restriction: the `get_or_init` closure must not contain schedule points
/// (no model-atomic operations). All in-repo initializers are pure
/// constructions, and the checker cannot tolerate a thread parking while it
/// holds the real `OnceLock`'s internal initialization lock.
#[derive(Debug)]
pub struct ModelOnceLock<T> {
    anchor: AtomicU64,
    inner: OnceLock<T>,
}

impl<T> ModelOnceLock<T> {
    /// Creates an empty lock.
    pub const fn new() -> ModelOnceLock<T> {
        ModelOnceLock {
            anchor: AtomicU64::new(0),
            inner: OnceLock::new(),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(&self.anchor) as usize
    }

    /// See [`OnceLock::get`]. Under the model this is an `Acquire` load of
    /// the anchor: a stale 0 reads as "not initialized yet".
    pub fn get(&self) -> Option<&T> {
        let modeled = rt::with_run(|sh, me| {
            sh.atomic_op(
                me,
                Op::Load {
                    addr: self.addr(),
                    init: self.anchor.load(Ordering::Relaxed),
                    o: Ordering::Acquire,
                },
            )
        });
        match modeled {
            Some(OpResult::Value(0)) => None,
            Some(_) => self.inner.get(),
            None => self.inner.get(),
        }
    }

    /// See [`OnceLock::get_or_init`] (closure restriction above).
    pub fn get_or_init(&self, f: impl FnOnce() -> T) -> &T {
        let modeled = rt::with_run(|sh, me| sh.atomic_op(me, Op::OnceInit { addr: self.addr() }));
        if modeled.is_none() {
            // Outside a run: keep the anchor's count in step so a later
            // in-run registration sees a nonzero initial value.
            let v = self.inner.get_or_init(f);
            self.anchor.store(1, Ordering::Release);
            return v;
        }
        // In-run: the OnceInit op above executed while this thread held the
        // baton; the real init below finishes before any other virtual
        // thread runs (the closure has no schedule points).
        self.inner.get_or_init(f)
    }
}

impl<T> Default for ModelOnceLock<T> {
    fn default() -> Self {
        ModelOnceLock::new()
    }
}
