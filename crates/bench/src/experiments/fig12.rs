//! Figure 12: serial and parallel request latency with and without HotC.
//!
//! (a) a single-threaded client sends the same request every 30 s: without
//!     HotC every request cold-starts; with HotC only the first does.
//! (b) ten clients, each with its *own* runtime configuration, send requests
//!     concurrently: "the average latency with HotC is only 9 % of the
//!     default case".

use crate::driver::run_workload;
use crate::experiments::server_gateway;
use containersim::LanguageRuntime;
use faas::gateway::FunctionSpec;
use faas::policy::ColdStartAlways;
use faas::AppProfile;
use hotc::HotC;
use metrics_lite::{render_series, Table};
use simclock::SimDuration;
use workloads::patterns;

/// Result of the Fig. 12 experiment.
pub struct Fig12Result {
    /// Serial per-request latency, default backend (ms).
    pub serial_default: Vec<f64>,
    /// Serial per-request latency, HotC (ms).
    pub serial_hotc: Vec<f64>,
    /// Parallel mean latency, default backend (ms).
    pub parallel_default_mean: f64,
    /// Parallel mean latency, HotC (ms).
    pub parallel_hotc_mean: f64,
}

/// Registers one qr-code variant per thread id (each client gets its own
/// configuration, as in the paper).
fn qr_gateway<P: faas::RuntimeProvider>(provider: P, variants: usize) -> faas::Gateway<P> {
    let langs = [
        LanguageRuntime::Python,
        LanguageRuntime::Go,
        LanguageRuntime::NodeJs,
        LanguageRuntime::Java,
        LanguageRuntime::Ruby,
    ];
    let mut gw = server_gateway(provider, &[]);
    for i in 0..variants {
        let app = AppProfile::qr_code(langs[i % langs.len()]);
        let mut config = app.default_config();
        // Distinct env per client: distinct runtime type even for same lang.
        config.exec.env.insert("CLIENT".to_string(), i.to_string());
        gw.register(
            FunctionSpec::from_app(app)
                .named(format!("qr-{i}"))
                .with_config(config),
        );
    }
    gw
}

/// Runs both panels: `serial_requests` serial rounds, and `threads` parallel
/// clients × `rounds` rounds.
pub fn run(serial_requests: usize, threads: usize, rounds: usize) -> Fig12Result {
    let tick = SimDuration::from_secs(30);
    let serial = patterns::serial(SimDuration::from_secs(30), serial_requests, 0);
    let route = |id: usize| format!("qr-{id}");

    let sd = run_workload(qr_gateway(ColdStartAlways::new(), 1), &serial, route, tick);
    let sh = run_workload(qr_gateway(HotC::with_defaults(), 1), &serial, route, tick);

    let parallel = patterns::parallel_clients(threads, rounds, SimDuration::from_secs(30));
    let pd = run_workload(
        qr_gateway(ColdStartAlways::new(), threads),
        &parallel,
        route,
        tick,
    );
    let ph = run_workload(
        qr_gateway(HotC::with_defaults(), threads),
        &parallel,
        route,
        tick,
    );

    Fig12Result {
        serial_default: sd.latencies().iter().map(|d| d.as_millis_f64()).collect(),
        serial_hotc: sh.latencies().iter().map(|d| d.as_millis_f64()).collect(),
        parallel_default_mean: pd.mean_latency().as_millis_f64(),
        parallel_hotc_mean: ph.mean_latency().as_millis_f64(),
    }
}

impl Fig12Result {
    /// HotC's parallel mean as a fraction of the default's (paper: ≈0.09).
    pub fn parallel_ratio(&self) -> f64 {
        self.parallel_hotc_mean / self.parallel_default_mean
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let labels: Vec<String> = (0..self.serial_default.len())
            .map(|i| format!("r{i:02}"))
            .collect();
        let mut out = render_series(
            "Fig 12(a): serial latency without HotC (ms)",
            &labels,
            &self.serial_default,
            48,
        );
        out.push('\n');
        out.push_str(&render_series(
            "Fig 12(a): serial latency with HotC (ms)",
            &labels,
            &self.serial_hotc,
            48,
        ));
        let mut table = Table::new(
            "Fig 12(b): parallel clients (each with its own configuration)",
            &["backend", "mean_latency_ms"],
        );
        table.row(&[
            "default".to_string(),
            format!("{:.1}", self.parallel_default_mean),
        ]);
        table.row(&[
            "hotc".to_string(),
            format!("{:.1}", self.parallel_hotc_mean),
        ]);
        out.push('\n');
        out.push_str(&table.render());
        out.push_str(&format!(
            "HotC mean = {:.1}% of default (paper: ≈9%)\n",
            self.parallel_ratio() * 100.0
        ));
        out
    }
}
