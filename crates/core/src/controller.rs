//! Adaptive live container management (§IV-C, Algorithm 3).
//!
//! At a fixed control interval the controller snapshots, per runtime type,
//! the peak number of containers the interval actually needed
//! (`history[k][t]`), feeds it to that type's combined exponential-smoothing
//! plus Markov predictor, and resizes the pool toward the predicted
//! next-interval demand — pre-warming containers ahead of predicted growth
//! ("prepare the runtime in advance") and retiring idle ones ahead of
//! predicted decline ("avoid … unnecessary resource consumption").
//!
//! The controller walks the sharded pool one shard at a time
//! ([`AdaptiveController::step_sharded`]), so a control step never stalls
//! the whole pool: requests on other shards proceed while one shard's
//! snapshot is taken. Keys whose slots the pool garbage-collects (empty for
//! several consecutive zero-demand intervals) have their predictors dropped
//! in the same step, so the predictor map cannot grow without bound across
//! distinct configurations.

use crate::key::RuntimeKey;
use crate::pool::ContainerPool;
use crate::shard::{EngineRef, ExclusiveEngine, ShardedPool};
use containersim::{ContainerEngine, EngineError};
use predictor::{EsMarkov, InitialValue, Predictor};
use simclock::{SimDuration, SimTime};
use std::collections::HashMap;

/// Controller tuning.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Control interval (how often demand is sampled and the pool resized).
    pub interval: SimDuration,
    /// Exponential smoothing coefficient (paper: 0.8).
    pub alpha: f64,
    /// Seeding strategy for short series (paper: mean of first five).
    pub init: InitialValue,
    /// Number of Markov demand regions.
    pub regions: usize,
    /// Demand history window per key.
    pub window: usize,
    /// Fractional headroom added on top of the prediction (0.0 = exactly the
    /// prediction; 0.25 = provision 25 % extra).
    pub headroom: f64,
    /// Maximum fraction of the *excess* (current − target) retired per
    /// control step. Scale-up is immediate (cold starts hurt now); scale-down
    /// is deliberately gradual so capacity survives between recurring bursts
    /// — the §V-D burst experiment's "more same types of containers available
    /// after the previous burst". 1.0 = shed everything immediately.
    pub max_retire_fraction: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            interval: SimDuration::from_secs(30),
            alpha: 0.8,
            init: InitialValue::MeanOfFirst5,
            regions: 6,
            window: 256,
            headroom: 0.0,
            max_retire_fraction: 0.1,
        }
    }
}

/// What one control step did — the counters and predicted-vs-actual demand
/// the telemetry layer samples into the metrics registry.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// Containers pre-warmed ahead of predicted demand.
    pub prewarmed: usize,
    /// Idle containers retired beyond predicted demand.
    pub retired: usize,
    /// Keys whose empty slots (and predictors) were garbage collected.
    pub gc_keys: usize,
    /// Per-key `(predicted, actual)` demand for the interval.
    pub demand: Vec<(RuntimeKey, f64, usize)>,
}

impl StepReport {
    /// Total predicted demand across keys.
    pub fn predicted_total(&self) -> f64 {
        self.demand.iter().map(|&(_, p, _)| p).sum()
    }

    /// Total actual demand across keys.
    pub fn actual_total(&self) -> usize {
        self.demand.iter().map(|&(_, _, d)| d).sum()
    }
}

/// The per-key adaptive controller.
pub struct AdaptiveController {
    config: ControllerConfig,
    predictors: HashMap<RuntimeKey, EsMarkov>,
    last_step: Option<SimTime>,
    last_predictions: HashMap<RuntimeKey, f64>,
    /// Cumulative background cost of pre-warm/retire actions.
    background: SimDuration,
}

impl AdaptiveController {
    /// Creates a controller.
    pub fn new(config: ControllerConfig) -> Self {
        assert!(
            !config.interval.is_zero(),
            "control interval must be positive"
        );
        AdaptiveController {
            config,
            predictors: HashMap::new(),
            last_step: None,
            last_predictions: HashMap::new(),
            background: SimDuration::ZERO,
        }
    }

    /// The paper's configuration (α = 0.8, 30 s interval).
    pub fn paper_default() -> Self {
        Self::new(ControllerConfig::default())
    }

    /// The active tuning.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Most recent per-key predictions (diagnostics / Fig. 10).
    pub fn last_predictions(&self) -> &HashMap<RuntimeKey, f64> {
        &self.last_predictions
    }

    /// Number of keys with a live predictor (bounded by the pool's slot GC).
    pub fn predictor_count(&self) -> usize {
        self.predictors.len()
    }

    /// Cumulative cost of controller actions.
    pub fn background_cost(&self) -> SimDuration {
        self.background
    }

    /// Runs a control step if the interval has elapsed since the last one,
    /// returning the step's report when one ran.
    pub fn maybe_step(
        &mut self,
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        now: SimTime,
    ) -> Result<Option<StepReport>, EngineError> {
        self.maybe_step_sharded(pool.sharded(), &ExclusiveEngine::new(engine), now)
    }

    /// Runs one control step unconditionally: snapshot demand, update the
    /// predictors, and resize the pool toward the predictions.
    pub fn step(
        &mut self,
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        now: SimTime,
    ) -> Result<StepReport, EngineError> {
        self.step_sharded(pool.sharded(), &ExclusiveEngine::new(engine), now)
    }

    /// Sharded variant of [`Self::maybe_step`].
    pub fn maybe_step_sharded(
        &mut self,
        pool: &ShardedPool,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<Option<StepReport>, EngineError> {
        let due = match self.last_step {
            None => true,
            Some(last) => now.duration_since(last) >= self.config.interval,
        };
        if !due {
            return Ok(None);
        }
        self.step_sharded(pool, engine, now).map(Some)
    }

    /// One control step over the sharded pool, one shard at a time: snapshot
    /// the shard's demand (which also garbage-collects long-empty slots),
    /// update predictors, and resize toward the predictions. Only one shard's
    /// lock is held at any moment, and never together with the engine lock.
    pub fn step_sharded(
        &mut self,
        pool: &ShardedPool,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<StepReport, EngineError> {
        self.last_step = Some(now);
        self.last_predictions.clear();
        let mut report = StepReport::default();
        for shard in 0..pool.num_shards() {
            let snapshot = pool.take_shard_snapshot(shard);
            for key in &snapshot.retired {
                // The pool dropped the slot: drop its predictor with it.
                self.predictors.remove(key);
            }
            report.gc_keys += snapshot.retired.len();
            for (key, demand) in snapshot.demands {
                let cfg = &self.config;
                let predictor = self.predictors.entry(key.clone()).or_insert_with(|| {
                    EsMarkov::with_params(cfg.alpha, cfg.init, cfg.regions, cfg.window)
                });
                predictor.observe(demand as f64);
                let predicted = predictor.predict() * (1.0 + self.config.headroom);
                self.last_predictions.insert(key.clone(), predicted);
                report.demand.push((key.clone(), predicted, demand));

                // Scale-down floor: never size below what the *last* interval
                // actually needed — on a growing workload the smoother lags
                // and would otherwise retire runtimes the next wave is about
                // to use (the Fig. 14(a) "at least half reuse" property).
                let target = (predicted.ceil().max(0.0) as usize).max(demand);
                let current = pool.num_avail(&key) + pool.num_in_use(&key);
                // No-resurrect rule: a key with no demand and no containers
                // is on its way to being GC'd — pre-warming it would keep a
                // dead key alive forever on the ceil()-ed tail of a decaying
                // prediction.
                if current == 0 && demand == 0 {
                    continue;
                }
                if target > current {
                    // Prepare runtimes in advance of predicted demand.
                    for _ in 0..(target - current) {
                        match pool.prewarm_key(engine, &key, now)? {
                            Some(cost) => {
                                self.background += cost;
                                report.prewarmed += 1;
                            }
                            None => break, // slot GC'd since the snapshot
                        }
                    }
                } else {
                    // Shed idle runtimes beyond predicted demand — gradually,
                    // so recurring bursts find warm capacity left over.
                    let excess = current - target;
                    let retire = ((excess as f64 * self.config.max_retire_fraction).ceil()
                        as usize)
                        .min(excess);
                    for _ in 0..retire {
                        match pool.retire_one(engine, &key, now)? {
                            Some(c) => {
                                self.background += c;
                                report.retired += 1;
                            }
                            None => break, // the rest are in use
                        }
                    }
                }
            }
        }
        report.demand.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyPolicy;
    use containersim::engine::ExecWork;
    use containersim::{ContainerConfig, HardwareProfile, ImageId};

    fn setup() -> (ContainerEngine, ContainerPool, AdaptiveController) {
        (
            ContainerEngine::with_local_images(HardwareProfile::server()),
            ContainerPool::new(KeyPolicy::Exact),
            AdaptiveController::paper_default(),
        )
    }

    fn cfg() -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse("python:3.8-alpine"))
    }

    /// Simulates `n` concurrent requests in one interval.
    fn drive_demand(
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        n: usize,
        now: SimTime,
    ) {
        let acqs: Vec<_> = (0..n)
            .map(|_| pool.acquire(engine, &cfg(), now).unwrap())
            .collect();
        for a in acqs {
            let out = engine
                .begin_exec(
                    a.container,
                    ExecWork::light(SimDuration::from_millis(5)),
                    now,
                )
                .unwrap();
            engine.end_exec(a.container, now + out.latency).unwrap();
            pool.release(engine, a.container, now + out.latency)
                .unwrap();
        }
    }

    #[test]
    fn steady_demand_sizes_pool_to_match() {
        let (mut e, mut pool, mut ctl) = setup();
        for t in 0..12 {
            let now = SimTime::from_secs(t * 30);
            drive_demand(&mut pool, &mut e, 5, now);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let key = pool.key_of(&cfg());
        let live = pool.num_avail(&key) + pool.num_in_use(&key);
        assert!(
            (4..=7).contains(&live),
            "pool should track demand of 5, got {live}"
        );
    }

    #[test]
    fn demand_drop_retires_containers() {
        let (mut e, mut pool, mut ctl) = setup();
        // High demand for a while…
        for t in 0..8 {
            let now = SimTime::from_secs(t * 30);
            drive_demand(&mut pool, &mut e, 10, now);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let key = pool.key_of(&cfg());
        let high = pool.num_avail(&key);
        assert!(high >= 8, "pool grew to demand, got {high}");
        // …then it vanishes.
        for t in 8..20 {
            let now = SimTime::from_secs(t * 30);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let low = pool.num_avail(&key);
        assert!(low <= 2, "pool should shrink after demand drop, got {low}");
    }

    #[test]
    fn growth_retains_full_capacity() {
        let (mut e, mut pool, mut ctl) = setup();
        // Ramp 2, 4, 6, … — the scale-down floor (last observed demand)
        // keeps every container from the latest wave warm even while the
        // lagging smoother under-predicts.
        for (r, n) in [2usize, 4, 6, 8, 10, 12].into_iter().enumerate() {
            let now = SimTime::from_secs(r as u64 * 30);
            drive_demand(&mut pool, &mut e, n, now);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let key = pool.key_of(&cfg());
        assert_eq!(pool.num_avail(&key), 12, "full last wave stays warm");
    }

    #[test]
    fn headroom_prewarms_extra_capacity() {
        let (mut e, mut pool, _) = setup();
        let mut ctl = AdaptiveController::new(ControllerConfig {
            headroom: 0.5,
            ..Default::default()
        });
        for r in 0..8u64 {
            let now = SimTime::from_secs(r * 30);
            drive_demand(&mut pool, &mut e, 10, now);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let key = pool.key_of(&cfg());
        // 50 % headroom over a steady demand of 10 ⇒ ~15 warm runtimes.
        assert!(pool.num_avail(&key) >= 13, "avail={}", pool.num_avail(&key));
        assert!(ctl.background_cost() > SimDuration::ZERO);
    }

    #[test]
    fn maybe_step_respects_interval() {
        let (mut e, mut pool, mut ctl) = setup();
        assert!(ctl
            .maybe_step(&mut pool, &mut e, SimTime::ZERO)
            .unwrap()
            .is_some());
        // 10 s later: not due (interval 30 s).
        assert!(ctl
            .maybe_step(&mut pool, &mut e, SimTime::from_secs(10))
            .unwrap()
            .is_none());
        assert!(ctl
            .maybe_step(&mut pool, &mut e, SimTime::from_secs(30))
            .unwrap()
            .is_some());
    }

    /// The step report tallies what the controller actually did, so the
    /// telemetry layer can export prewarm/retire/GC counts and
    /// predicted-vs-actual demand without re-deriving them.
    #[test]
    fn step_report_tallies_actions() {
        let (mut e, mut pool, _) = setup();
        let mut ctl = AdaptiveController::new(ControllerConfig {
            headroom: 0.5,
            ..Default::default()
        });
        pool.set_gc_intervals(1);
        drive_demand(&mut pool, &mut e, 4, SimTime::ZERO);
        let report = ctl.step(&mut pool, &mut e, SimTime::ZERO).unwrap();
        assert_eq!(report.demand.len(), 1);
        assert_eq!(report.actual_total(), 4);
        assert!(report.predicted_total() > 0.0);
        // Headroom over the observed demand forces pre-warms; four released
        // containers already exist, so the target of ceil(pred*1.5) adds more.
        assert!(report.prewarmed > 0, "report: {report:?}");
        assert_eq!(report.gc_keys, 0);
        // Drain the pool, then let the empty slot hit the GC threshold.
        let key = pool.key_of(&cfg());
        while pool
            .retire_one(&mut e, &key, SimTime::from_secs(1))
            .unwrap()
            .is_some()
        {}
        let report = ctl.step(&mut pool, &mut e, SimTime::from_secs(30)).unwrap();
        assert_eq!(report.gc_keys, 1, "report: {report:?}");
    }

    #[test]
    fn predictions_are_exposed() {
        let (mut e, mut pool, mut ctl) = setup();
        drive_demand(&mut pool, &mut e, 3, SimTime::ZERO);
        ctl.step(&mut pool, &mut e, SimTime::ZERO).unwrap();
        let key = pool.key_of(&cfg());
        assert!(ctl.last_predictions().contains_key(&key));
    }

    /// Regression (unbounded predictor maps): when the pool GCs a dead
    /// slot, the controller drops its predictor in the same step — before
    /// the fix, every config ever seen kept a predictor (and a config clone)
    /// forever.
    #[test]
    fn gc_drops_predictors_for_dead_keys() {
        let (mut e, mut pool, mut ctl) = setup();
        pool.set_gc_intervals(2);
        let key = pool.key_of(&cfg());
        drive_demand(&mut pool, &mut e, 2, SimTime::ZERO);
        ctl.step(&mut pool, &mut e, SimTime::ZERO).unwrap();
        assert_eq!(ctl.predictor_count(), 1);
        // Empty the slot behind the controller's back (eviction under
        // memory pressure would do the same).
        while pool
            .retire_one(&mut e, &key, SimTime::from_secs(1))
            .unwrap()
            .is_some()
        {}
        assert_eq!(pool.total_live(), 0);
        // Two zero-demand steps on the empty slot reach the GC threshold;
        // the no-resurrect rule keeps the controller from pre-warming it.
        for t in 1..=3u64 {
            ctl.step(&mut pool, &mut e, SimTime::from_secs(t * 30))
                .unwrap();
        }
        assert_eq!(pool.total_live(), 0, "dead key must not be resurrected");
        assert!(pool.keys().is_empty());
        assert_eq!(ctl.predictor_count(), 0, "predictor GC'd with the slot");
    }

    #[test]
    #[should_panic(expected = "control interval must be positive")]
    fn zero_interval_rejected() {
        let _ = AdaptiveController::new(ControllerConfig {
            interval: SimDuration::ZERO,
            ..Default::default()
        });
    }
}
