//! Volumes: per-container bind-mounted scratch directories.
//!
//! §IV-B ("Used Container Cleanup"): to keep reused containers clean, HotC
//! "assigns volume, which persists data generated and used by applications,
//! to each container when they are created. Each live container has its
//! unique directory". Cleanup is two steps: delete all files in the old
//! volume, then mount a fresh volume; volumes are deleted when the container
//! stops for good "to avoid resource waste and zombie files".
//!
//! The store models a volume as a file count + byte total — enough to charge
//! realistic wipe costs and to assert the no-zombie-volume invariant.

use crate::costmodel;
use crate::hardware::HardwareProfile;
use simclock::SimDuration;
use std::collections::BTreeMap;

/// Identifier of a volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VolumeId(pub u64);

impl std::fmt::Display for VolumeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vol-{}", self.0)
    }
}

/// State of one volume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Volume {
    /// Number of files the application has written.
    pub files: u64,
    /// Total bytes written.
    pub bytes: u64,
    /// Whether the volume is currently mounted into a container.
    pub mounted: bool,
}

/// The host's volume manager.
#[derive(Debug, Default, Clone)]
pub struct VolumeStore {
    volumes: BTreeMap<VolumeId, Volume>,
    next_id: u64,
}

/// Errors from volume operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolumeError {
    /// The referenced volume does not exist.
    NotFound(VolumeId),
    /// Attempted to delete a volume that is still mounted.
    StillMounted(VolumeId),
}

impl std::fmt::Display for VolumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VolumeError::NotFound(id) => write!(f, "volume {id} not found"),
            VolumeError::StillMounted(id) => write!(f, "volume {id} is still mounted"),
        }
    }
}

impl std::error::Error for VolumeError {}

impl VolumeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates and mounts a fresh volume; returns its id and the mount cost.
    pub fn create_mounted(&mut self, hw: &HardwareProfile) -> (VolumeId, SimDuration) {
        let id = VolumeId(self.next_id);
        self.next_id += 1;
        self.volumes.insert(
            id,
            Volume {
                files: 0,
                bytes: 0,
                mounted: true,
            },
        );
        (id, hw.control(costmodel::VOLUME_MOUNT))
    }

    /// Records application writes into a mounted volume.
    pub fn write(&mut self, id: VolumeId, files: u64, bytes: u64) -> Result<(), VolumeError> {
        let vol = self.volumes.get_mut(&id).ok_or(VolumeError::NotFound(id))?;
        vol.files += files;
        vol.bytes += bytes;
        Ok(())
    }

    /// Algorithm 2's cleanup: wipes all files in the volume and remounts it
    /// fresh. Returns the virtual cost (per-file wipe + fixed remount).
    pub fn wipe_and_remount(
        &mut self,
        id: VolumeId,
        hw: &HardwareProfile,
    ) -> Result<SimDuration, VolumeError> {
        let vol = self.volumes.get_mut(&id).ok_or(VolumeError::NotFound(id))?;
        let cost = costmodel::VOLUME_WIPE_PER_FILE * vol.files + costmodel::VOLUME_REMOUNT;
        vol.files = 0;
        vol.bytes = 0;
        vol.mounted = true;
        Ok(hw.control(cost))
    }

    /// Unmounts a volume (container stopping) without deleting it.
    pub fn unmount(&mut self, id: VolumeId) -> Result<(), VolumeError> {
        let vol = self.volumes.get_mut(&id).ok_or(VolumeError::NotFound(id))?;
        vol.mounted = false;
        Ok(())
    }

    /// Deletes an unmounted volume ("the corresponding volumes are deleted
    /// once the containers stop execution").
    pub fn delete(&mut self, id: VolumeId) -> Result<(), VolumeError> {
        match self.volumes.get(&id) {
            None => Err(VolumeError::NotFound(id)),
            Some(v) if v.mounted => Err(VolumeError::StillMounted(id)),
            Some(_) => {
                self.volumes.remove(&id);
                Ok(())
            }
        }
    }

    /// Looks up a volume.
    pub fn get(&self, id: VolumeId) -> Option<&Volume> {
        self.volumes.get(&id)
    }

    /// Number of existing volumes (zombie detection: should equal the number
    /// of live containers).
    pub fn len(&self) -> usize {
        self.volumes.len()
    }

    /// Whether no volumes exist.
    pub fn is_empty(&self) -> bool {
        self.volumes.is_empty()
    }

    /// Total bytes across all volumes.
    pub fn total_bytes(&self) -> u64 {
        self.volumes.values().map(|v| v.bytes).sum()
    }
}

impl stdshim::ToJson for VolumeId {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::ToJson::to_json(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareProfile {
        HardwareProfile::server()
    }

    #[test]
    fn create_write_wipe_cycle() {
        let mut store = VolumeStore::new();
        let (id, mount_cost) = store.create_mounted(&hw());
        assert!(!mount_cost.is_zero());
        store.write(id, 100, 1 << 20).unwrap();
        assert_eq!(store.get(id).unwrap().files, 100);

        let wipe = store.wipe_and_remount(id, &hw()).unwrap();
        assert!(!wipe.is_zero());
        let v = store.get(id).unwrap();
        assert_eq!((v.files, v.bytes), (0, 0));
        assert!(v.mounted);
    }

    #[test]
    fn wipe_cost_grows_with_files() {
        let mut store = VolumeStore::new();
        let (a, _) = store.create_mounted(&hw());
        let (b, _) = store.create_mounted(&hw());
        store.write(a, 10, 1024).unwrap();
        store.write(b, 10_000, 1024).unwrap();
        let ca = store.wipe_and_remount(a, &hw()).unwrap();
        let cb = store.wipe_and_remount(b, &hw()).unwrap();
        assert!(cb > ca);
    }

    #[test]
    fn delete_requires_unmount() {
        let mut store = VolumeStore::new();
        let (id, _) = store.create_mounted(&hw());
        assert_eq!(store.delete(id), Err(VolumeError::StillMounted(id)));
        store.unmount(id).unwrap();
        assert_eq!(store.delete(id), Ok(()));
        assert_eq!(store.delete(id), Err(VolumeError::NotFound(id)));
        assert!(store.is_empty());
    }

    #[test]
    fn missing_volume_errors() {
        let mut store = VolumeStore::new();
        let ghost = VolumeId(999);
        assert_eq!(store.write(ghost, 1, 1), Err(VolumeError::NotFound(ghost)));
        assert!(store.wipe_and_remount(ghost, &hw()).is_err());
        assert_eq!(store.unmount(ghost), Err(VolumeError::NotFound(ghost)));
    }

    #[test]
    fn ids_are_unique() {
        let mut store = VolumeStore::new();
        let (a, _) = store.create_mounted(&hw());
        let (b, _) = store.create_mounted(&hw());
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    /// No zombies: any sequence of create/unmount/delete leaves
    /// exactly (creates - deletes) volumes, and deletes only succeed on
    /// unmounted volumes.
    #[test]
    fn prop_no_zombie_volumes() {
        testkit::check(64, |g| {
            let ops = g.vec(1..100, |g| g.u8_in(0..3));
            let mut store = VolumeStore::new();
            let mut live: Vec<VolumeId> = Vec::new();
            let mut created = 0usize;
            let mut deleted = 0usize;
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => {
                        let (id, _) = store.create_mounted(&hw());
                        live.push(id);
                        created += 1;
                    }
                    1 => {
                        if let Some(&id) = live.get(i % live.len().max(1)) {
                            let _ = store.unmount(id);
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let idx = i % live.len();
                            let id = live[idx];
                            let _ = store.unmount(id);
                            if store.delete(id).is_ok() {
                                live.remove(idx);
                                deleted += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(store.len(), created - deleted);
        });
    }
}
