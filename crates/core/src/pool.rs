//! The live container runtime pool (§IV-B, Fig. 7, Algorithms 1–2).
//!
//! "HotC maintains a key value store to track the available containers. The
//! key is the formatted parameter configurations for each container and the
//! value is a list with container ID and state of the container."
//!
//! States follow Fig. 7: *Not-Existing (-1)*, *Existing-Not-Available (0)*
//! (running a request), *Existing-Available (1)* (idle in the pool, clean,
//! ready for reuse). Algorithm 1 (`acquire`) reuses the first available
//! container of the requested type or cold-starts one; Algorithm 2
//! (`release`) cleans the used container (wipe volume + remount) and returns
//! it to the pool, incrementing `num_avail[key]`.
//!
//! [`ContainerPool`] is the single-threaded façade over the sharded pool in
//! [`crate::shard`]: same bookkeeping, exclusive `&mut` engine access, no
//! lock contention. Concurrent frontends use [`crate::ShardedPool`] directly.

use crate::key::{KeyPolicy, RuntimeKey};
use crate::shard::{ExclusiveEngine, ShardedPool};
use containersim::{ContainerConfig, ContainerEngine, ContainerId, EngineError};
use faas::Acquisition;
use simclock::{SimDuration, SimTime};

/// The HotC container pool.
///
/// ```
/// use containersim::{ContainerConfig, ContainerEngine, HardwareProfile, ImageId};
/// use hotc::{ContainerPool, KeyPolicy};
/// use simclock::SimTime;
///
/// let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
/// let mut pool = ContainerPool::new(KeyPolicy::Exact);
/// let config = ContainerConfig::bridge(ImageId::parse("python:3.8-alpine"));
///
/// // Algorithm 1: first acquire cold-starts, …
/// let first = pool.acquire(&mut engine, &config, SimTime::ZERO).unwrap();
/// assert!(first.cold);
/// # let out = engine.begin_exec(first.container,
/// #     containersim::engine::ExecWork::light(simclock::SimDuration::from_millis(1)),
/// #     SimTime::ZERO).unwrap();
/// # engine.end_exec(first.container, SimTime::ZERO + out.latency).unwrap();
/// // … Algorithm 2 cleans and re-pools, and the next acquire reuses.
/// pool.release(&mut engine, first.container, SimTime::from_secs(1)).unwrap();
/// let second = pool.acquire(&mut engine, &config, SimTime::from_secs(2)).unwrap();
/// assert!(!second.cold);
/// assert_eq!(second.container, first.container);
/// ```
#[derive(Debug)]
pub struct ContainerPool {
    inner: ShardedPool,
}

impl ContainerPool {
    /// Creates an empty pool with the given key policy.
    pub fn new(policy: KeyPolicy) -> Self {
        ContainerPool {
            inner: ShardedPool::new(policy),
        }
    }

    /// Creates an empty pool with an explicit shard count.
    pub fn with_shards(policy: KeyPolicy, shards: usize) -> Self {
        ContainerPool {
            inner: ShardedPool::with_shards(policy, shards),
        }
    }

    /// The sharded pool backing this façade.
    pub fn sharded(&self) -> &ShardedPool {
        &self.inner
    }

    /// Overrides the empty-slot GC threshold (consecutive zero-demand
    /// snapshots before an empty slot is dropped).
    pub fn set_gc_intervals(&mut self, intervals: u32) {
        self.inner.set_gc_intervals(intervals);
    }

    /// The key policy in force.
    pub fn policy(&self) -> KeyPolicy {
        self.inner.policy()
    }

    /// The runtime key for a configuration under this pool's policy.
    pub fn key_of(&self, config: &ContainerConfig) -> RuntimeKey {
        self.inner.key_of(config)
    }

    /// Algorithm 1: obtain a runtime for `config`. Reuses the first
    /// available container of the same type if one exists, otherwise starts
    /// a new container. Returns the acquisition (reuse cost is zero, or the
    /// fuzzy reconfiguration cost when configs differ under a fuzzy key).
    /// A failed cold start records nothing: no phantom slot is left behind.
    pub fn acquire(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        self.inner
            .acquire(&ExclusiveEngine::new(engine), config, now)
    }

    /// Algorithm 2: clean the used container and add it back to the pool
    /// (`num_avail[key]++`). A crashed (Stopped) container cannot be reused:
    /// it is disposed of instead. Releasing a container that was never
    /// acquired from this pool — or releasing twice — is an
    /// [`EngineError::InvalidState`]. Returns the cleanup/disposal cost
    /// (off the request path).
    pub fn release(
        &mut self,
        engine: &mut ContainerEngine,
        container: ContainerId,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        self.inner
            .release(&ExclusiveEngine::new(engine), container, now)
    }

    /// Pre-warms one container of the given configuration (adaptive
    /// controller's scale-up action). The container boots straight into the
    /// Existing-Available state. Returns the cold-start cost (background).
    pub fn prewarm(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        self.inner
            .prewarm(&ExclusiveEngine::new(engine), config, now)
    }

    /// Pre-warms one container for an already-tracked key using the slot's
    /// stored configuration; `Ok(None)` if the key is unknown.
    pub fn prewarm_key(
        &mut self,
        engine: &mut ContainerEngine,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        self.inner
            .prewarm_key(&ExclusiveEngine::new(engine), key, now)
    }

    /// Retires one available container of the given type (adaptive
    /// controller's scale-down action). Returns the teardown cost, or `None`
    /// if none was available.
    pub fn retire_one(
        &mut self,
        engine: &mut ContainerEngine,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        self.inner
            .retire_one(&ExclusiveEngine::new(engine), key, now)
    }

    /// Forcibly terminates the *oldest* available live container across all
    /// types (§IV-B's response to too many containers / memory pressure).
    /// Returns the teardown cost, or `None` if the pool holds no available
    /// container.
    pub fn evict_oldest(
        &mut self,
        engine: &mut ContainerEngine,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        self.inner.evict_oldest(&ExclusiveEngine::new(engine), now)
    }

    /// `num_avail[key]`: available containers of the given type.
    pub fn num_avail(&self, key: &RuntimeKey) -> usize {
        self.inner.num_avail(key)
    }

    /// In-use containers of the given type.
    pub fn num_in_use(&self, key: &RuntimeKey) -> usize {
        self.inner.num_in_use(key)
    }

    /// Total live containers tracked by the pool (available + in use).
    pub fn total_live(&self) -> usize {
        self.inner.total_live()
    }

    /// Total available containers across all types.
    pub fn total_available(&self) -> usize {
        self.inner.total_available()
    }

    /// The Fig. 7 pool-view code for a container: 1 Existing-Available, 0
    /// Existing-Not-Available, -1 Not-Existing.
    pub fn pool_code(&self, engine: &ContainerEngine, container: ContainerId) -> i8 {
        self.inner.pool_code(engine, container)
    }

    /// Takes the per-key demand snapshot (`history[k][t]`) and resets the
    /// watermarks for the next control interval. Keys with live containers
    /// are always reported, including zero-demand intervals; slots that have
    /// been empty for the GC threshold's worth of consecutive zero-demand
    /// snapshots are dropped.
    pub fn take_demand_snapshot(&mut self) -> Vec<(RuntimeKey, usize)> {
        self.inner.take_demand_snapshot()
    }

    /// The keys the pool currently tracks, sorted.
    pub fn keys(&self) -> Vec<RuntimeKey> {
        self.inner.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FUZZY_RECONFIG_COST;
    use containersim::container::ExecOptions;
    use containersim::engine::ExecWork;
    use containersim::{ContainerState, HardwareProfile, ImageId, ImageRegistry};

    fn engine() -> ContainerEngine {
        ContainerEngine::with_local_images(HardwareProfile::server())
    }

    fn cfg(image: &str) -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse(image))
    }

    fn run_request(
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Acquisition {
        let acq = pool.acquire(engine, config, now).unwrap();
        let out = engine
            .begin_exec(
                acq.container,
                ExecWork::light(SimDuration::from_millis(10)),
                now,
            )
            .unwrap();
        engine.end_exec(acq.container, now + out.latency).unwrap();
        pool.release(engine, acq.container, now + out.latency)
            .unwrap();
        acq
    }

    #[test]
    fn algorithm1_reuse_or_start() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("python:3.8-alpine");

        let a1 = run_request(&mut pool, &mut e, &c, SimTime::ZERO);
        assert!(a1.cold, "first request cold-starts");
        let key = pool.key_of(&c);
        assert_eq!(pool.num_avail(&key), 1);

        let a2 = run_request(&mut pool, &mut e, &c, SimTime::from_secs(1));
        assert!(!a2.cold, "second request reuses");
        assert_eq!(a2.container, a1.container);
        assert!(a2.cost.is_zero());
    }

    #[test]
    fn num_avail_bookkeeping_matches_algorithms() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        let key = pool.key_of(&c);

        let acq = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        assert_eq!(pool.num_avail(&key), 0);
        assert_eq!(pool.num_in_use(&key), 1);

        let out = e
            .begin_exec(
                acq.container,
                ExecWork::light(SimDuration::from_millis(5)),
                SimTime::ZERO,
            )
            .unwrap();
        e.end_exec(acq.container, SimTime::ZERO + out.latency)
            .unwrap();
        pool.release(&mut e, acq.container, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(pool.num_avail(&key), 1);
        assert_eq!(pool.num_in_use(&key), 0);
    }

    #[test]
    fn occupied_containers_trigger_new_start() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        // Acquire twice without releasing: both cold, two containers.
        let a1 = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        let a2 = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        assert!(a1.cold && a2.cold);
        assert_ne!(a1.container, a2.container);
        assert_eq!(pool.total_live(), 2);
    }

    #[test]
    fn different_types_never_share() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        run_request(&mut pool, &mut e, &cfg("python:3.8-alpine"), SimTime::ZERO);
        let b = run_request(
            &mut pool,
            &mut e,
            &cfg("golang:1.13"),
            SimTime::from_secs(1),
        );
        assert!(b.cold, "different image must not reuse python runtime");
    }

    #[test]
    fn exact_policy_rejects_env_mismatch_fuzzy_accepts() {
        let base = cfg("python:3.8-alpine");
        let with_env = base
            .clone()
            .with_exec(ExecOptions::default().with_env("MODE", "fast"));

        // Exact: env difference ⇒ cold.
        let mut e = engine();
        let mut exact = ContainerPool::new(KeyPolicy::Exact);
        run_request(&mut exact, &mut e, &base, SimTime::ZERO);
        let a = run_request(&mut exact, &mut e, &with_env, SimTime::from_secs(1));
        assert!(a.cold);

        // Fuzzy: same image+network ⇒ reuse with a reconfig cost.
        let mut e2 = engine();
        let mut fuzzy = ContainerPool::new(KeyPolicy::Fuzzy);
        run_request(&mut fuzzy, &mut e2, &base, SimTime::ZERO);
        let b = fuzzy
            .acquire(&mut e2, &with_env, SimTime::from_secs(1))
            .unwrap();
        assert!(!b.cold);
        assert_eq!(b.cost, FUZZY_RECONFIG_COST);
    }

    #[test]
    fn prewarm_makes_next_request_warm() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("openjdk:8-jre");
        let cost = pool.prewarm(&mut e, &c, SimTime::ZERO).unwrap();
        assert!(!cost.is_zero());
        let acq = pool.acquire(&mut e, &c, SimTime::from_secs(1)).unwrap();
        assert!(!acq.cold, "prewarmed container serves the request");
    }

    #[test]
    fn retire_and_evict() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        let key = pool.key_of(&c);
        for i in 0..3 {
            pool.prewarm(&mut e, &c, SimTime::from_secs(i)).unwrap();
        }
        assert_eq!(pool.num_avail(&key), 3);

        let retired = pool
            .retire_one(&mut e, &key, SimTime::from_secs(10))
            .unwrap();
        assert!(retired.is_some());
        assert_eq!(pool.num_avail(&key), 2);
        assert_eq!(e.live_count(), 2);

        // Eviction removes the *oldest* (created at t=1 after the retire
        // popped the t=0 one from the FIFO front).
        let ids = e.live_ids_oldest_first();
        pool.evict_oldest(&mut e, SimTime::from_secs(11)).unwrap();
        assert_eq!(e.state(ids[0]), ContainerState::Removed);
        assert_eq!(pool.num_avail(&key), 1);
    }

    #[test]
    fn evict_on_empty_pool_is_none() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        assert!(pool.evict_oldest(&mut e, SimTime::ZERO).unwrap().is_none());
        let key = pool.key_of(&cfg("alpine:3.12"));
        assert!(pool
            .retire_one(&mut e, &key, SimTime::ZERO)
            .unwrap()
            .is_none());
    }

    #[test]
    fn pool_codes_match_fig7() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");

        let acq = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        // In use ⇒ Existing-Not-Available (0).
        assert_eq!(pool.pool_code(&e, acq.container), 0);

        let out = e
            .begin_exec(
                acq.container,
                ExecWork::light(SimDuration::from_millis(5)),
                SimTime::ZERO,
            )
            .unwrap();
        e.end_exec(acq.container, SimTime::ZERO + out.latency)
            .unwrap();
        pool.release(&mut e, acq.container, SimTime::from_secs(1))
            .unwrap();
        // Available ⇒ 1.
        assert_eq!(pool.pool_code(&e, acq.container), 1);

        let key = pool.key_of(&c);
        pool.retire_one(&mut e, &key, SimTime::from_secs(2))
            .unwrap();
        // Gone ⇒ -1.
        assert_eq!(pool.pool_code(&e, acq.container), -1);
    }

    #[test]
    fn demand_snapshot_reports_watermark_and_resets() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        // Three concurrent acquisitions.
        let acqs: Vec<_> = (0..3)
            .map(|_| pool.acquire(&mut e, &c, SimTime::ZERO).unwrap())
            .collect();
        for acq in &acqs {
            let out = e
                .begin_exec(
                    acq.container,
                    ExecWork::light(SimDuration::from_millis(5)),
                    SimTime::ZERO,
                )
                .unwrap();
            e.end_exec(acq.container, SimTime::ZERO + out.latency)
                .unwrap();
            pool.release(&mut e, acq.container, SimTime::from_secs(1))
                .unwrap();
        }
        let snap = pool.take_demand_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1, 3, "watermark saw 3 concurrent");
        // After reset with nothing in use, next snapshot reports 0.
        let snap2 = pool.take_demand_snapshot();
        assert_eq!(snap2[0].1, 0);
    }

    /// Regression (phantom slots): a failed cold start must not record a
    /// slot — before the fix, `acquire` inserted the slot before calling
    /// `create_container`, so an unknown image left an empty slot that
    /// `take_demand_snapshot` reported forever.
    #[test]
    fn failed_cold_start_leaves_no_phantom_slot() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let err = pool
            .acquire(&mut e, &cfg("no-such-image:1.0"), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownImage(_)));
        assert!(
            pool.keys().is_empty(),
            "failed create must not leave a slot"
        );
        assert!(pool.take_demand_snapshot().is_empty());
    }

    /// Same, for an image the registry knows but whose pull fails validation
    /// — any create error path must leave the pool untouched.
    #[test]
    fn failed_cold_start_never_pollutes_existing_slot_set() {
        let registry = ImageRegistry::with_default_catalogue();
        let mut e = ContainerEngine::new(registry, HardwareProfile::server());
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        run_request(&mut pool, &mut e, &cfg("alpine:3.12"), SimTime::ZERO);
        let before = pool.keys();
        let _ = pool
            .acquire(&mut e, &cfg("ghost:0.0"), SimTime::from_secs(1))
            .unwrap_err();
        assert_eq!(pool.keys(), before);
    }

    /// Regression (release without acquire): before the fix a release of a
    /// container the pool never handed out `saturating_sub`'d `in_use` and
    /// pushed the id into `available` — the same container could then serve
    /// two requests at once. Now it's an error and the pool is unchanged.
    #[test]
    fn release_of_unacquired_container_is_rejected() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        // A container created behind the pool's back.
        let (stray, _) = e
            .create_container(cfg("alpine:3.12"), SimTime::ZERO)
            .unwrap();
        let err = pool
            .release(&mut e, stray, SimTime::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidState { id, .. } if id == stray));
        let key = pool.key_of(&cfg("alpine:3.12"));
        assert_eq!(pool.num_avail(&key), 0, "stray id must not be pooled");
        assert_eq!(pool.num_in_use(&key), 0);
        assert_eq!(e.state(stray), ContainerState::Idle, "engine untouched");
    }

    /// Regression (double release): the second release of the same
    /// container must fail instead of double-pooling the id.
    #[test]
    fn double_release_is_rejected() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        let acq = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        let out = e
            .begin_exec(
                acq.container,
                ExecWork::light(SimDuration::from_millis(1)),
                SimTime::ZERO,
            )
            .unwrap();
        e.end_exec(acq.container, SimTime::ZERO + out.latency)
            .unwrap();
        pool.release(&mut e, acq.container, SimTime::from_secs(1))
            .unwrap();
        let err = pool
            .release(&mut e, acq.container, SimTime::from_secs(2))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidState { .. }));
        let key = pool.key_of(&c);
        assert_eq!(pool.num_avail(&key), 1, "exactly one pooled copy");
        // The pooled copy still round-trips.
        let again = pool.acquire(&mut e, &c, SimTime::from_secs(3)).unwrap();
        assert!(!again.cold);
        assert_eq!(again.container, acq.container);
    }

    /// A failed cleanup (release while still Running) must leave the
    /// container claimable, not stranded outside the bookkeeping.
    #[test]
    fn failed_cleanup_keeps_container_in_use() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        let acq = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        e.begin_exec(
            acq.container,
            ExecWork::light(SimDuration::from_millis(5)),
            SimTime::ZERO,
        )
        .unwrap();
        // Still Running: the engine rejects the cleanup.
        let err = pool
            .release(&mut e, acq.container, SimTime::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidState { .. }));
        let key = pool.key_of(&c);
        assert_eq!(pool.num_in_use(&key), 1, "claim handed back on failure");
        // Finish properly and the release succeeds.
        e.end_exec(acq.container, SimTime::from_secs(2)).unwrap();
        pool.release(&mut e, acq.container, SimTime::from_secs(3))
            .unwrap();
        assert_eq!(pool.num_avail(&key), 1);
    }

    /// Regression (unbounded slot maps): a slot whose containers have all
    /// been retired is garbage-collected after the configured number of
    /// consecutive zero-demand snapshots, so `keys()` and the controller's
    /// predictor maps stop growing across distinct configs.
    #[test]
    fn empty_slots_are_garbage_collected() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        pool.set_gc_intervals(2);
        let c = cfg("alpine:3.12");
        let key = pool.key_of(&c);
        run_request(&mut pool, &mut e, &c, SimTime::ZERO);
        pool.retire_one(&mut e, &key, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(pool.total_live(), 0);

        // First zero-demand snapshot still reports the key (it served
        // traffic this interval)…
        let snap = pool.take_demand_snapshot();
        assert_eq!(snap.len(), 1);
        // …the next two empty intervals reach the threshold and GC it.
        assert_eq!(pool.take_demand_snapshot().len(), 1);
        assert!(pool.take_demand_snapshot().is_empty());
        assert!(pool.keys().is_empty());

        // A slot with an idle container is never GC'd.
        pool.prewarm(&mut e, &c, SimTime::from_secs(100)).unwrap();
        for _ in 0..5 {
            assert_eq!(pool.take_demand_snapshot().len(), 1);
        }
    }

    /// GC'd keys come back transparently: the next request for the config
    /// cold-starts and re-creates the slot.
    #[test]
    fn gc_then_reacquire_recreates_slot() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        pool.set_gc_intervals(1);
        let c = cfg("golang:1.13");
        run_request(&mut pool, &mut e, &c, SimTime::ZERO);
        let key = pool.key_of(&c);
        pool.retire_one(&mut e, &key, SimTime::from_secs(1))
            .unwrap();
        pool.take_demand_snapshot(); // served-traffic interval
        pool.take_demand_snapshot(); // zero interval ⇒ GC
        assert!(pool.keys().is_empty());
        let acq = pool.acquire(&mut e, &c, SimTime::from_secs(2)).unwrap();
        assert!(acq.cold);
        assert_eq!(pool.keys(), vec![key]);
    }

    /// Pool invariant: total_live equals the engine's live count under
    /// any interleaving of acquire/release/prewarm/retire/evict, and all
    /// available containers are Idle in the engine.
    #[test]
    fn prop_pool_engine_consistency() {
        testkit::check(64, |g| {
            let ops = g.vec(1..60, |g| g.u8_in(0..5));
            let mut e = engine();
            let mut pool = ContainerPool::new(KeyPolicy::Exact);
            let configs = [cfg("alpine:3.12"), cfg("python:3.8-alpine")];
            let mut busy: Vec<ContainerId> = Vec::new();
            for (i, &op) in ops.iter().enumerate() {
                let now = SimTime::from_secs(i as u64);
                let c = &configs[i % 2];
                match op {
                    0 => {
                        let acq = pool.acquire(&mut e, c, now).unwrap();
                        let out = e
                            .begin_exec(
                                acq.container,
                                ExecWork::light(SimDuration::from_millis(1)),
                                now,
                            )
                            .unwrap();
                        e.end_exec(acq.container, now + out.latency).unwrap();
                        busy.push(acq.container);
                    }
                    1 => {
                        if let Some(id) = busy.pop() {
                            pool.release(&mut e, id, now).unwrap();
                        }
                    }
                    2 => {
                        pool.prewarm(&mut e, c, now).unwrap();
                    }
                    3 => {
                        let key = pool.key_of(c);
                        pool.retire_one(&mut e, &key, now).unwrap();
                    }
                    _ => {
                        pool.evict_oldest(&mut e, now).unwrap();
                    }
                }
                assert_eq!(pool.total_live(), e.live_count());
                assert_eq!(pool.total_available() + busy.len(), e.live_count());
            }
        });
    }
}
