//! Extension experiment (paper §VII future work): cluster-level scheduling.
//!
//! A few functions are extremely popular while others are rarely invoked
//! (Zipf), exactly the situation the paper's future-work paragraph worries
//! about. We drive the same skewed workload through a multi-node cluster
//! under each scheduling policy and compare cold starts, latency, resource
//! footprint, and load balance.

use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
use faas::gateway::Gateway;
use faas::{AppProfile, FunctionSpec};
use hotc::HotC;
use hotc_cluster::{Cluster, SchedulePolicy};
use metrics_lite::{LatencyRecorder, Table};
use simclock::{SimDuration, SimTime};
use workloads::patterns;

/// One policy's outcome.
pub struct PolicyEval {
    /// The policy.
    pub policy: SchedulePolicy,
    /// Mean request latency (ms).
    pub mean_ms: f64,
    /// p99 latency (ms).
    pub p99_ms: f64,
    /// Cold-start fraction.
    pub cold_fraction: f64,
    /// Total live containers across the cluster at the end.
    pub live_containers: usize,
    /// Completed-request imbalance (max node / mean node; 1.0 = balanced).
    pub imbalance: f64,
}

/// Result of the cluster experiment.
pub struct ClusterResult {
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Functions deployed.
    pub functions: usize,
    /// Requests served per policy.
    pub requests: usize,
    /// Per-policy outcomes.
    pub evals: Vec<PolicyEval>,
}

fn build_cluster(policy: SchedulePolicy, nodes: usize, functions: usize) -> Cluster {
    let gateways = (0..nodes)
        .map(|i| {
            let engine = ContainerEngine::with_local_images(HardwareProfile::server());
            (
                format!("node-{i}"),
                Gateway::new(engine, HotC::with_defaults()),
            )
        })
        .collect();
    let mut cluster = Cluster::new(policy, gateways);
    let langs = [
        LanguageRuntime::Python,
        LanguageRuntime::Go,
        LanguageRuntime::NodeJs,
    ];
    for f in 0..functions {
        let app = AppProfile::qr_code(langs[f % langs.len()]);
        let mut config = app.default_config();
        config.exec.env.insert("TENANT".into(), f.to_string());
        cluster.register_everywhere(
            FunctionSpec::from_app(app)
                .named(format!("fn-{f}"))
                .with_config(config),
        );
    }
    cluster
}

/// Drives a Zipf-skewed Poisson workload through one policy's cluster via a
/// discrete-event simulation (overlapping requests).
fn eval(
    policy: SchedulePolicy,
    nodes: usize,
    functions: usize,
    workload: &[workloads::Arrival],
) -> PolicyEval {
    use simclock::Simulation;
    struct St {
        cluster: Cluster,
        recorder: LatencyRecorder,
        cold: usize,
    }
    let mut sim = Simulation::new(St {
        cluster: build_cluster(policy, nodes, functions),
        recorder: LatencyRecorder::new(),
        cold: 0,
    });

    let horizon = workload.last().map(|a| a.at).unwrap_or(SimTime::ZERO);
    let mut t = SimTime::ZERO;
    while t <= horizon + SimDuration::from_secs(60) {
        sim.schedule_at(t, move |s, st: &mut St| {
            st.cluster.tick(s.now()).expect("tick");
        });
        t += SimDuration::from_secs(30);
    }
    for a in workload {
        let function = format!("fn-{}", a.config_id);
        sim.schedule_at(a.at, move |s, st: &mut St| {
            let ticket = st.cluster.begin(&function, s.now()).expect("begin");
            s.schedule_at(ticket.inner.t4_func_end, move |_, st: &mut St| {
                let trace = st.cluster.finish(ticket).expect("finish");
                st.recorder.record(trace.total());
                if trace.cold {
                    st.cold += 1;
                }
            });
        });
    }
    sim.run();
    let st = sim.into_state();
    PolicyEval {
        policy,
        mean_ms: st.recorder.mean().as_millis_f64(),
        p99_ms: st.recorder.percentile(0.99).as_millis_f64(),
        cold_fraction: st.cold as f64 / st.recorder.count() as f64,
        live_containers: st.cluster.stats().live_containers,
        imbalance: st.cluster.request_imbalance(),
    }
}

/// One row of the warm-view staleness sweep.
pub struct StalenessRow {
    /// View sync interval (seconds; 0 = direct pool reads).
    pub staleness_s: u64,
    /// Cold fraction under reuse-affinity with that view.
    pub cold_fraction: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
}

/// Sweeps warm-view staleness for reuse-affinity scheduling (§VII's
/// distributed-registry deployment): the staler the replicated view, the
/// more requests are routed past their warm runtimes.
pub fn staleness_sweep(
    nodes: usize,
    functions: usize,
    seed: u64,
    staleness_s: &[u64],
) -> Vec<StalenessRow> {
    let workload = patterns::poisson(1.0, SimDuration::from_secs(900), functions, 1.2, seed);
    staleness_s
        .iter()
        .map(|&stale| {
            use simclock::Simulation;
            struct St {
                cluster: Cluster,
                recorder: LatencyRecorder,
                cold: usize,
            }
            let mut cluster = build_cluster(SchedulePolicy::ReuseAffinity, nodes, functions);
            cluster.set_warm_view_staleness(SimDuration::from_secs(stale));
            let mut sim = Simulation::new(St {
                cluster,
                recorder: LatencyRecorder::new(),
                cold: 0,
            });
            let horizon = workload.last().map(|a| a.at).unwrap_or(SimTime::ZERO);
            let mut t = SimTime::ZERO;
            while t <= horizon + SimDuration::from_secs(60) {
                sim.schedule_at(t, move |s, st: &mut St| {
                    st.cluster.tick(s.now()).expect("tick");
                });
                t += SimDuration::from_secs(30);
            }
            for a in &workload {
                let function = format!("fn-{}", a.config_id);
                sim.schedule_at(a.at, move |s, st: &mut St| {
                    let ticket = st.cluster.begin(&function, s.now()).expect("begin");
                    s.schedule_at(ticket.inner.t4_func_end, move |_, st: &mut St| {
                        let trace = st.cluster.finish(ticket).expect("finish");
                        st.recorder.record(trace.total());
                        if trace.cold {
                            st.cold += 1;
                        }
                    });
                });
            }
            sim.run();
            let st = sim.into_state();
            StalenessRow {
                staleness_s: stale,
                cold_fraction: st.cold as f64 / st.recorder.count() as f64,
                mean_ms: st.recorder.mean().as_millis_f64(),
            }
        })
        .collect()
}

/// Runs all three policies on the same workload.
pub fn run(nodes: usize, functions: usize, seed: u64) -> ClusterResult {
    // Zipf-skewed arrivals: popular functions dominate (§VII's scenario).
    let workload = patterns::poisson(4.0, SimDuration::from_secs(600), functions, 1.2, seed);
    let evals = [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::LeastLoaded,
        SchedulePolicy::ReuseAffinity,
    ]
    .into_iter()
    .map(|p| eval(p, nodes, functions, &workload))
    .collect();
    ClusterResult {
        nodes,
        functions,
        requests: workload.len(),
        evals,
    }
}

impl ClusterResult {
    /// Looks up a policy's outcome.
    pub fn eval(&self, policy: SchedulePolicy) -> &PolicyEval {
        self.evals
            .iter()
            .find(|e| e.policy == policy)
            .expect("policy evaluated")
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            format!(
                "Cluster scheduling (§VII extension): {} nodes, {} functions, {} Zipf requests",
                self.nodes, self.functions, self.requests
            ),
            &[
                "policy",
                "mean_ms",
                "p99_ms",
                "cold_frac",
                "live_ctrs",
                "imbalance",
            ],
        );
        for e in &self.evals {
            table.row(&[
                e.policy.name().to_string(),
                format!("{:.1}", e.mean_ms),
                format!("{:.1}", e.p99_ms),
                format!("{:.3}", e.cold_fraction),
                e.live_containers.to_string(),
                format!("{:.2}", e.imbalance),
            ]);
        }
        let mut out = table.render();
        out.push_str(
            "(reuse-affinity should minimize cold starts and containers; round-robin smears \
             every runtime type across all nodes)\n\n",
        );
        let rows = staleness_sweep(self.nodes, self.functions, 21, &[0, 30, 120, 600]);
        let mut table = Table::new(
            "Warm-view staleness sweep (reuse-affinity via a replicated registry, §VII)",
            &["view_staleness_s", "cold_fraction", "mean_ms"],
        );
        for r in &rows {
            table.row(&[
                r.staleness_s.to_string(),
                format!("{:.3}", r.cold_fraction),
                format!("{:.1}", r.mean_ms),
            ]);
        }
        out.push_str(&table.render());
        out.push_str("(a stale replicated view routes requests past their warm runtimes)\n");
        out
    }
}
