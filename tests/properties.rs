//! Cross-crate property tests: invariants that must hold for *any* workload
//! or configuration, not just the paper's scenarios.

use containersim::container::ExecOptions;
use containersim::{
    ContainerConfig, ContainerEngine, HardwareProfile, ImageId, NetworkConfig, NetworkMode,
};
use faas::{AppProfile, FixedKeepAlive, Gateway};
use hotc::{HotC, HotCConfig, KeyPolicy, PoolLimits, RuntimeKey};
use proptest::prelude::*;
use simclock::{SimDuration, SimTime};

/// Strategy: a valid container configuration drawn from the image catalogue,
/// single-host network modes, and small env maps.
fn config_strategy() -> impl Strategy<Value = ContainerConfig> {
    let image = prop_oneof![
        Just("alpine:3.12"),
        Just("python:3.8-alpine"),
        Just("golang:1.13"),
        Just("node:12-alpine"),
        Just("openjdk:8-jre"),
    ];
    let mode = prop_oneof![
        Just(NetworkMode::None),
        Just(NetworkMode::Bridge),
        Just(NetworkMode::Host),
        Just(NetworkMode::Container),
    ];
    let env = proptest::collection::btree_map("[A-Z]{1,4}", "[a-z0-9]{0,4}", 0..4);
    (image, mode, env, 0u32..4000, proptest::bool::ANY).prop_map(
        |(image, mode, env, cpu, privileged)| {
            let mut exec = ExecOptions {
                cpu_millis: cpu,
                privileged,
                ..Default::default()
            };
            exec.env = env;
            ContainerConfig::bridge(ImageId::parse(image))
                .with_network(NetworkConfig::single(mode))
                .with_exec(exec)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact runtime keys are injective: distinct configurations never
    /// collide (otherwise HotC would hand a request the wrong runtime).
    #[test]
    fn exact_keys_injective(a in config_strategy(), b in config_strategy()) {
        let ka = RuntimeKey::from_config(&a, KeyPolicy::Exact);
        let kb = RuntimeKey::from_config(&b, KeyPolicy::Exact);
        prop_assert_eq!(a == b, ka == kb);
    }

    /// Fuzzy keys are a coarsening of exact keys: exact-equal configs are
    /// always fuzzy-equal.
    #[test]
    fn fuzzy_coarsens_exact(a in config_strategy(), b in config_strategy()) {
        let exact_eq = RuntimeKey::from_config(&a, KeyPolicy::Exact)
            == RuntimeKey::from_config(&b, KeyPolicy::Exact);
        let fuzzy_eq = RuntimeKey::from_config(&a, KeyPolicy::Fuzzy)
            == RuntimeKey::from_config(&b, KeyPolicy::Fuzzy);
        if exact_eq {
            prop_assert!(fuzzy_eq);
        }
    }

    /// Every request trace partitions exactly into its three segments, for
    /// any app shape and either temperature.
    #[test]
    fn trace_segments_partition_total(
        compute_ms in 1u64..2000,
        init_ms in 0u64..1000,
        reuse in proptest::bool::ANY,
    ) {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
        let mut app = AppProfile::random_number();
        app.app_init = SimDuration::from_millis(init_ms);
        app.work.compute = SimDuration::from_millis(compute_ms);
        gw.register_app(app);

        let t1 = gw.handle("random-number", SimTime::ZERO).unwrap();
        let trace = if reuse {
            gw.handle("random-number", SimTime::from_secs(60)).unwrap()
        } else {
            t1
        };
        prop_assert!(trace.is_well_formed());
        let parts = trace.initiation() + trace.execution() + trace.forwarding();
        prop_assert_eq!(parts, trace.total());
    }

    /// Under any serial request/gap sequence, HotC's bookkeeping matches the
    /// engine and the pool never exceeds its limits after a tick — even with
    /// crashes injected.
    #[test]
    fn hotc_invariants_under_random_serial_traffic(
        gaps in proptest::collection::vec(1u64..400, 1..60),
        max_live in 1usize..8,
        crash in proptest::bool::ANY,
    ) {
        let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
        if crash {
            engine.set_fault_injection(0.2, 7);
        }
        let provider = HotC::new(HotCConfig {
            limits: PoolLimits::new(max_live, 0.99),
            ..Default::default()
        });
        let mut gw = Gateway::new(engine, provider);
        gw.register_app(AppProfile::random_number());

        let mut now = SimTime::ZERO;
        for gap in gaps {
            let trace = gw.handle("random-number", now).unwrap();
            now = trace.t6_gateway_out + SimDuration::from_secs(gap);
            gw.tick(now).unwrap();
            prop_assert!(gw.engine().live_count() <= max_live);
            prop_assert_eq!(
                gw.provider().pool().total_live(),
                gw.engine().live_count()
            );
            prop_assert_eq!(gw.engine().volumes().len(), gw.engine().live_count());
        }
    }

    /// Keep-alive semantics: a request after a gap longer than the TTL is
    /// always cold; within the TTL it is always warm (single client).
    #[test]
    fn keepalive_ttl_is_exact(
        ttl_s in 10u64..1000,
        gaps in proptest::collection::vec(1u64..2000, 1..30),
    ) {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, FixedKeepAlive::new(SimDuration::from_secs(ttl_s)));
        gw.register_app(AppProfile::random_number());

        let first = gw.handle("random-number", SimTime::ZERO).unwrap();
        prop_assert!(first.cold);
        let mut last_done = first.t4_func_end;
        for gap in gaps {
            let at = last_done + SimDuration::from_secs(gap);
            let trace = gw.handle("random-number", at).unwrap();
            // The pool held the container since `last_done` (its release).
            // Skip the exact boundary: the gateway hop (1.5 ms) lands the
            // idle time just past the TTL there.
            if gap > ttl_s {
                prop_assert!(trace.cold, "gap {}s > ttl {}s must be cold", gap, ttl_s);
            } else if gap < ttl_s {
                prop_assert!(!trace.cold, "gap {}s < ttl {}s must be warm", gap, ttl_s);
            }
            last_done = trace.t4_func_end;
        }
    }

    /// The cold-start provider is stateless: request latency is independent
    /// of history (same function ⇒ identical traces modulo timestamps).
    #[test]
    fn cold_start_latency_is_history_free(gaps in proptest::collection::vec(1u64..100, 2..20)) {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, faas::ColdStartAlways::new());
        gw.register_app(AppProfile::random_number());
        let mut now = SimTime::ZERO;
        let mut first_latency = None;
        for gap in gaps {
            let trace = gw.handle("random-number", now).unwrap();
            let latency = trace.total();
            if let Some(expected) = first_latency {
                prop_assert_eq!(latency, expected);
            } else {
                first_latency = Some(latency);
            }
            now = trace.t6_gateway_out + SimDuration::from_secs(gap);
        }
    }
}
