#![warn(missing_docs)]

//! OpenFaaS-like serverless platform substrate.
//!
//! §III-A of the paper describes the measured platform: clients hit a
//! **gateway** that proxies to per-function backends; inside each backend
//! container a tiny **watchdog** HTTP server pipes the request into the
//! **function process** and the response back out. The paper instruments six
//! moments along that path —
//!
//! ```text
//! (1) request reaches gateway      (4) function process stops
//! (2) request reaches watchdog     (5) response leaves watchdog
//! (3) function process starts      (6) response leaves gateway
//! ```
//!
//! — and finds the function-initiation segment (2→3), i.e. obtaining a
//! runtime, dominating cold-request latency. This crate reproduces that
//! pipeline:
//!
//! * [`pipeline`] — the six-timestamp [`pipeline::RequestTrace`] and the
//!   fixed network/proxy hop costs,
//! * [`gateway`] — the request driver; generic over a [`RuntimeProvider`]
//!   so the same gateway runs with cold-start-always, fixed keep-alive
//!   (AWS-style), periodic warm-up (Azure-Logic-style), or HotC,
//! * [`policy`] — the non-HotC baseline providers,
//! * [`apps`] — the paper's application catalogue (random-number, QR code,
//!   S3-download per language, inception-v3, TensorFlow-API, Cassandra-like)
//!   as synthetic profiles.

pub mod apps;
pub mod gateway;
pub mod hybrid;
pub mod pipeline;
pub mod policy;

pub use apps::AppProfile;
pub use gateway::{
    AppTracker, FunctionSpec, Gateway, GatewayStats, InFlight, Registry, SharedStats,
};
pub use hybrid::{HybridConfig, HybridKeepAlive};
pub use pipeline::RequestTrace;
pub use policy::{ColdStartAlways, FixedKeepAlive, PeriodicWarmup};

use containersim::{ContainerConfig, ContainerEngine, ContainerId, CostBreakdown, EngineError};
use simclock::{SimDuration, SimTime};

/// How a provider satisfied an acquire request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acquisition {
    /// The container to run in.
    pub container: ContainerId,
    /// Virtual time spent obtaining it (cold start cost, or ~0 when reused).
    pub cost: SimDuration,
    /// Whether a new container had to be created (a cold start).
    pub cold: bool,
    /// Per-stage decomposition of a cold start (`None` on reuse). When
    /// present, `breakdown.total() + reconfig == cost`.
    pub breakdown: Option<CostBreakdown>,
    /// Cost of reconfiguring a fuzzy-matched reused runtime (zero for exact
    /// reuse and cold starts).
    pub reconfig: SimDuration,
}

impl Acquisition {
    /// A cold start, carrying its stage breakdown.
    pub fn cold(container: ContainerId, breakdown: CostBreakdown) -> Self {
        Acquisition {
            container,
            cost: breakdown.total(),
            cold: true,
            breakdown: Some(breakdown),
            reconfig: SimDuration::ZERO,
        }
    }

    /// An exact warm reuse (free).
    pub fn warm(container: ContainerId) -> Self {
        Acquisition {
            container,
            cost: SimDuration::ZERO,
            cold: false,
            breakdown: None,
            reconfig: SimDuration::ZERO,
        }
    }

    /// A fuzzy-matched reuse that paid `reconfig` to apply config deltas.
    pub fn warm_reconfigured(container: ContainerId, reconfig: SimDuration) -> Self {
        Acquisition {
            container,
            cost: reconfig,
            cold: false,
            breakdown: None,
            reconfig,
        }
    }
}

/// A strategy for providing container runtimes to the gateway.
///
/// Implemented by the baseline policies in [`policy`] and by HotC itself (in
/// the `hotc` crate), so every experiment runs the *same* gateway code and
/// differs only in runtime management.
pub trait RuntimeProvider {
    /// Obtains a ready (idle, clean) container for `config`.
    fn acquire(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError>;

    /// Returns a container after its execution finished. Any cleanup or
    /// teardown happens off the request path (the paper's HotC cleans used
    /// containers after the response is returned), so the cost is accounted
    /// to the provider, not the request.
    fn release(
        &mut self,
        engine: &mut ContainerEngine,
        container: ContainerId,
        now: SimTime,
    ) -> Result<(), EngineError>;

    /// Periodic maintenance: expiry, pre-warming, pool resizing. Called by
    /// drivers between rounds.
    fn tick(&mut self, engine: &mut ContainerEngine, now: SimTime) -> Result<(), EngineError>;

    /// Provider name for report tables.
    fn name(&self) -> &'static str;

    /// Cumulative virtual time this provider has spent on background work
    /// (cleanup, pre-warming, eviction) — the overhead side of the ledger.
    fn background_cost(&self) -> SimDuration;

    /// How many containers resource limits have force-evicted so far. Zero
    /// for providers without global limits. The parallel replay driver uses
    /// this to detect when per-worker limit enforcement actually fired —
    /// the one place where a partitioned replay approximates (rather than
    /// reproduces) the sequential run.
    fn forced_evictions(&self) -> u64 {
        0
    }
}
