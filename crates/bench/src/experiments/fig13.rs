//! Figure 13: linearly increasing and decreasing request flows.
//!
//! §V-D: increasing — 2 requests at the start, +2 every 30 s; HotC reuses
//! the previous round's runtimes and only the *new* requests may cold-start
//! (until the controller pre-warms ahead). Decreasing — starts high and
//! sheds 2 per round; after the first round there is always a hot container
//! available, so "the request latency is always low under HotC except … the
//! very first round".

use crate::driver::run_workload;
use crate::experiments::server_gateway;
use faas::policy::ColdStartAlways;
use faas::AppProfile;
use hotc::HotC;
use metrics_lite::Table;
use simclock::SimDuration;
use workloads::patterns::{linear_ramp, Direction};
use workloads::Arrival;

/// Per-round mean latencies for one direction.
pub struct RampEval {
    /// Round request counts.
    pub counts: Vec<usize>,
    /// Per-round mean latency, default backend (ms).
    pub default_ms: Vec<f64>,
    /// Per-round mean latency, HotC (ms).
    pub hotc_ms: Vec<f64>,
    /// Per-round cold fraction under HotC.
    pub hotc_cold: Vec<f64>,
}

/// Result of the Fig. 13 experiment.
pub struct Fig13Result {
    /// Increasing ramp.
    pub increasing: RampEval,
    /// Decreasing ramp.
    pub decreasing: RampEval,
}

fn per_round(
    workload: &[Arrival],
    latencies: &[SimDuration],
    colds: &[bool],
    round: SimDuration,
) -> (Vec<usize>, Vec<f64>, Vec<f64>) {
    let rounds = workload
        .last()
        .map(|a| {
            a.at.duration_since(simclock::SimTime::ZERO)
                .div_duration(round) as usize
                + 1
        })
        .unwrap_or(0);
    let mut counts = vec![0usize; rounds];
    let mut sums = vec![0.0f64; rounds];
    let mut cold_counts = vec![0usize; rounds];
    for ((a, &lat), &cold) in workload.iter().zip(latencies).zip(colds) {
        let r =
            a.at.duration_since(simclock::SimTime::ZERO)
                .div_duration(round) as usize;
        counts[r] += 1;
        sums[r] += lat.as_millis_f64();
        if cold {
            cold_counts[r] += 1;
        }
    }
    let means = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    let cold_frac = cold_counts
        .iter()
        .zip(&counts)
        .map(|(&k, &c)| if c > 0 { k as f64 / c as f64 } else { 0.0 })
        .collect();
    (counts, means, cold_frac)
}

fn eval(direction: Direction, rounds: usize) -> RampEval {
    let round = SimDuration::from_secs(30);
    let workload = linear_ramp(direction, 2, 2, rounds, round, 0);
    let apps = [AppProfile::qr_code(containersim::LanguageRuntime::Python)];
    let route = |_| "qr-code".to_string();

    let d = run_workload(
        server_gateway(ColdStartAlways::new(), &apps),
        &workload,
        route,
        round,
    );
    let h = run_workload(
        server_gateway(HotC::with_defaults(), &apps),
        &workload,
        route,
        round,
    );

    let d_cold: Vec<bool> = d.traces.iter().map(|t| t.cold).collect();
    let (counts, default_ms, _) = per_round(&workload, &d.latencies(), &d_cold, round);
    let h_cold: Vec<bool> = h.traces.iter().map(|t| t.cold).collect();
    let (_, hotc_ms, hotc_cold) = per_round(&workload, &h.latencies(), &h_cold, round);

    RampEval {
        counts,
        default_ms,
        hotc_ms,
        hotc_cold,
    }
}

/// Runs both directions over `rounds` 30-second rounds.
pub fn run(rounds: usize) -> Fig13Result {
    Fig13Result {
        increasing: eval(Direction::Increasing, rounds),
        decreasing: eval(Direction::Decreasing, rounds),
    }
}

impl Fig13Result {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, eval) in [
            ("Fig 13(a): linear increasing", &self.increasing),
            ("Fig 13(b): linear decreasing", &self.decreasing),
        ] {
            let mut table = Table::new(
                label,
                &[
                    "round",
                    "requests",
                    "default_ms",
                    "hotc_ms",
                    "hotc_cold_frac",
                ],
            );
            for r in 0..eval.counts.len() {
                table.row(&[
                    r.to_string(),
                    eval.counts[r].to_string(),
                    format!("{:.1}", eval.default_ms[r]),
                    format!("{:.1}", eval.hotc_ms[r]),
                    format!("{:.2}", eval.hotc_cold[r]),
                ]);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out.push_str(
            "(paper: decreasing flow always finds hot containers after round 0; increasing flow \
             only cold-starts the marginal requests)\n",
        );
        out
    }
}
