//! Builds and runs a parsed [`Scenario`], producing a [`ScenarioReport`].

use crate::scenario::{FunctionDecl, ProviderSpec, Scenario, WorkloadSpec};
use containersim::{ContainerEngine, LanguageRuntime};
use faas::gateway::Gateway;
use faas::{
    AppProfile, ColdStartAlways, FixedKeepAlive, FunctionSpec, HybridKeepAlive, PeriodicWarmup,
    RequestTrace, RuntimeProvider,
};
use hotc::{HotC, HotCConfig, KeyPolicy};
use hotc_bench::{run_trace, run_workload};
use metrics_lite::{LatencyHistogram, LatencyRecorder, Table};
use workloads::patterns::Direction;
use workloads::trace::{self as wtrace, ConfigModulo, OpenDcTrace, SynthShape, SynthSpec, Trace};
use workloads::youtube::{youtube_trace, YoutubeTraceParams};
use workloads::Arrival;

/// Per-request latency detail is kept exactly (for the verbose series and
/// exact percentiles) up to this many requests; past it the aggregator
/// switches to a constant-footprint histogram so a 1e8-request replay does
/// not hold 1e8 samples.
pub const LATENCY_DETAIL_CAP: usize = 1 << 20;

/// The outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Requests served.
    pub requests: usize,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// p99 latency (ms).
    pub p99_ms: f64,
    /// Fraction of requests that cold-started.
    pub cold_fraction: f64,
    /// Fraction of requests that failed (fault injection).
    pub failed_fraction: f64,
    /// Live containers at the end of the run.
    pub live_at_end: usize,
    /// Provider background work (virtual seconds).
    pub background_s: f64,
    /// Per-request latencies (ms), arrival order.
    pub latencies_ms: Vec<f64>,
    /// Full telemetry snapshot taken at the end of the run (counters,
    /// stage histograms, pool series) — exported by `--metrics-out`.
    pub metrics: metrics_lite::MetricsSnapshot,
}

impl ScenarioReport {
    /// Renders the report as text tables.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        if verbose && !self.latencies_ms.is_empty() {
            let labels: Vec<String> = (0..self.latencies_ms.len())
                .map(|i| format!("r{i:03}"))
                .collect();
            out.push_str(&metrics_lite::render_series(
                "per-request latency (ms)",
                &labels,
                &self.latencies_ms,
                48,
            ));
            out.push('\n');
        }
        let mut table = Table::new(
            "scenario summary",
            &[
                "requests",
                "mean_ms",
                "p50_ms",
                "p99_ms",
                "cold_frac",
                "failed_frac",
                "live_at_end",
                "background_s",
            ],
        );
        table.row(&[
            self.requests.to_string(),
            format!("{:.1}", self.mean_ms),
            format!("{:.1}", self.p50_ms),
            format!("{:.1}", self.p99_ms),
            format!("{:.3}", self.cold_fraction),
            format!("{:.3}", self.failed_fraction),
            self.live_at_end.to_string(),
            format!("{:.2}", self.background_s),
        ]);
        out.push_str(&table.render());
        out
    }
}

fn build_app(decl: &FunctionDecl) -> Result<AppProfile, String> {
    Ok(match decl.app.as_str() {
        "random-number" => AppProfile::random_number(),
        "qr-code" => AppProfile::qr_code(decl.lang),
        "s3-download" => AppProfile::s3_download(decl.lang),
        "v3-app" => AppProfile::v3_app(),
        "tf-api-app" => AppProfile::tf_api_app(),
        "cassandra" => AppProfile::cassandra(),
        other => return Err(format!("unknown app '{other}'")),
    })
}

/// Builds the pull-based arrival stream for a workload spec.
///
/// `slots` is the number of registered function slots (declared functions ×
/// replicas) the arrivals will be routed over; generators that pick functions
/// themselves (poisson, azure) spread across all of them.
pub fn build_trace(spec: &WorkloadSpec, slots: usize, seed: u64) -> Result<Box<dyn Trace>, String> {
    let slots = slots.max(1);
    let direction = |increasing: bool| {
        if increasing {
            Direction::Increasing
        } else {
            Direction::Decreasing
        }
    };
    Ok(match spec {
        WorkloadSpec::Serial { count, interval } => {
            Box::new(wtrace::serial_trace(*interval, *count, 0))
        }
        WorkloadSpec::Parallel {
            threads,
            per_thread,
            interval,
        } => Box::new(wtrace::parallel_trace(*threads, *per_thread, *interval)),
        WorkloadSpec::Linear {
            increasing,
            start,
            step,
            rounds,
            round,
        } => Box::new(wtrace::linear_ramp_trace(
            direction(*increasing),
            *start,
            *step,
            *rounds,
            *round,
            0,
        )),
        WorkloadSpec::Exponential {
            increasing,
            rounds,
            round,
        } => Box::new(wtrace::exponential_ramp_trace(
            direction(*increasing),
            *rounds,
            *round,
            0,
        )),
        WorkloadSpec::Burst {
            base,
            factor,
            burst_at,
            rounds,
            round,
        } => Box::new(wtrace::burst_trace(
            *base,
            *factor,
            burst_at.clone(),
            *rounds,
            *round,
            0,
        )),
        WorkloadSpec::Poisson {
            rate,
            duration,
            zipf,
        } => Box::new(wtrace::poisson_trace(*rate, *duration, slots, *zipf, seed)),
        WorkloadSpec::Azure {
            functions: population,
            duration,
        } => {
            let params = workloads::azure::AzureWorkloadParams {
                functions: *population,
                duration: *duration,
                seed,
                ..Default::default()
            };
            // Cycle the synthetic population onto the registered slots.
            let (merged, _) = wtrace::azure_trace(&params);
            Box::new(ConfigModulo::new(merged, slots))
        }
        WorkloadSpec::Youtube {
            scale,
            index,
            length,
        } => {
            let params = YoutubeTraceParams {
                length: *length,
                seed,
                ..Default::default()
            };
            let rates: Vec<f64> = youtube_trace(&params)
                .into_iter()
                .map(|r| r / scale.max(1e-9))
                .collect();
            Box::new(wtrace::youtube_arrivals_trace(rates, *index, 0, seed))
        }
        WorkloadSpec::Synth {
            requests,
            keys,
            duration,
            zipf,
            peak,
        } => {
            let shape = if *peak <= 1.0 {
                SynthShape::Flat
            } else {
                SynthShape::Diurnal {
                    peak_to_trough: *peak,
                }
            };
            Box::new(wtrace::synth_trace(&SynthSpec {
                requests: *requests,
                keys: *keys,
                duration: *duration,
                zipf_exponent: *zipf,
                seed,
                shape,
                key_offset: 0,
            }))
        }
        WorkloadSpec::FlashCrowd {
            requests,
            keys,
            duration,
            zipf,
            peak,
            at,
            width,
            magnitude,
        } => Box::new(wtrace::synth_trace(&SynthSpec {
            requests: *requests,
            keys: *keys,
            duration: *duration,
            zipf_exponent: *zipf,
            seed,
            shape: SynthShape::FlashCrowd {
                peak_to_trough: *peak,
                at: *at,
                width: *width,
                magnitude: *magnitude,
            },
            key_offset: 0,
        })),
        WorkloadSpec::DeployWaves {
            requests,
            keys,
            duration,
            zipf,
            waves,
            window,
        } => Box::new(wtrace::synth_trace(&SynthSpec {
            requests: *requests,
            keys: *keys,
            duration: *duration,
            zipf_exponent: *zipf,
            seed,
            shape: SynthShape::DeployWaves {
                waves: *waves,
                window: *window,
            },
            key_offset: 0,
        })),
        WorkloadSpec::MultiTenant {
            tenants,
            requests,
            keys,
            duration,
            zipf,
        } => Box::new(wtrace::multi_tenant_trace(
            *tenants,
            &SynthSpec {
                requests: *requests,
                keys: *keys,
                duration: *duration,
                zipf_exponent: *zipf,
                seed,
                shape: SynthShape::Flat,
                key_offset: 0,
            },
        )),
        WorkloadSpec::AzureCsv { path, interval } => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open trace '{path}': {e}"))?;
            let (merged, _names) =
                wtrace::azure_csv_trace(std::io::BufReader::new(file), *interval)
                    .map_err(|e| format!("{path}: {e}"))?;
            Box::new(merged)
        }
        WorkloadSpec::OpenDc { path } => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open trace '{path}': {e}"))?;
            Box::new(OpenDcTrace::new(std::io::BufReader::new(file)))
        }
    })
}

/// Streaming report builder: O(1) per request, bounded memory.
///
/// Up to [`LATENCY_DETAIL_CAP`] requests it also keeps exact per-request
/// samples, so small runs report the same exact percentiles and verbose
/// series as before; past the cap it degrades to histogram quantiles and an
/// empty `latencies_ms`, keeping the footprint constant.
struct ReportAggregator {
    recorder: LatencyRecorder,
    hist: LatencyHistogram,
    detail: Vec<(u64, f64)>,
    detailed: bool,
    total_ns: u128,
    count: u64,
    failed: u64,
    cold: u64,
}

impl ReportAggregator {
    fn new() -> ReportAggregator {
        ReportAggregator {
            recorder: LatencyRecorder::new(),
            hist: LatencyHistogram::new(),
            detail: Vec::new(),
            detailed: true,
            total_ns: 0,
            count: 0,
            failed: 0,
            cold: 0,
        }
    }

    fn observe(&mut self, seq: u64, t: &RequestTrace) {
        let total = t.total();
        self.count += 1;
        self.total_ns += total.as_nanos() as u128;
        self.hist.record(total);
        if t.failed {
            self.failed += 1;
        }
        if t.cold {
            self.cold += 1;
        }
        if self.detailed {
            if self.detail.len() == LATENCY_DETAIL_CAP {
                self.detailed = false;
                self.detail = Vec::new();
                self.recorder = LatencyRecorder::new();
            } else {
                self.recorder.record(total);
                self.detail.push((seq, total.as_millis_f64()));
            }
        }
    }

    fn finish<P: RuntimeProvider>(mut self, gateway: &Gateway<P>) -> ScenarioReport {
        let count = self.count.max(1) as f64;
        let mean_ns = (self.total_ns / self.count.max(1) as u128) as u64;
        let (p50, p99) = if self.count == 0 {
            (simclock::SimDuration::ZERO, simclock::SimDuration::ZERO)
        } else if self.detailed {
            (self.recorder.median(), self.recorder.percentile(0.99))
        } else {
            (self.hist.quantile(0.5), self.hist.quantile(0.99))
        };
        // Finishes arrive in completion order; the report series is in
        // arrival order.
        self.detail.sort_by_key(|(seq, _)| *seq);
        ScenarioReport {
            requests: self.count as usize,
            mean_ms: simclock::SimDuration::from_nanos(mean_ns).as_millis_f64(),
            p50_ms: p50.as_millis_f64(),
            p99_ms: p99.as_millis_f64(),
            cold_fraction: self.cold as f64 / count,
            failed_fraction: self.failed as f64 / count,
            live_at_end: gateway.engine().live_count(),
            background_s: gateway.provider().background_cost().as_secs_f64(),
            latencies_ms: self.detail.into_iter().map(|(_, ms)| ms).collect(),
            metrics: gateway.metrics().snapshot(),
        }
    }
}

fn build_gateway<P: RuntimeProvider>(
    provider: P,
    scenario: &Scenario,
) -> Result<(Gateway<P>, Vec<String>), String> {
    let mut engine = ContainerEngine::with_local_images(scenario.hardware.clone());
    if scenario.crash_rate > 0.0 {
        engine.set_fault_injection(scenario.crash_rate, scenario.seed);
    }
    let mut gateway = Gateway::new(engine, provider);
    let mut names = Vec::new();
    for decl in &scenario.functions {
        let app = build_app(decl)?;
        for i in 0..decl.replicas {
            let name = if decl.replicas == 1 {
                decl.name.clone()
            } else {
                format!("{}#{i}", decl.name)
            };
            let mut config = app.config_with_network(decl.network);
            for (k, v) in &decl.env {
                config.exec.env.insert(k.clone(), v.clone());
            }
            if decl.replicas > 1 {
                // Distinct env per replica ⇒ distinct runtime key: replicas
                // are how a scenario scales to 10k+ keys.
                config
                    .exec
                    .env
                    .insert("HOTC_REPLICA".to_string(), i.to_string());
            }
            gateway.register(
                FunctionSpec::from_app(app.clone())
                    .named(name.clone())
                    .with_config(config),
            );
            names.push(name);
        }
    }
    Ok((gateway, names))
}

fn run_streaming<P: RuntimeProvider + 'static>(
    provider: P,
    scenario: &Scenario,
    trace: &mut dyn Trace,
) -> Result<ScenarioReport, String> {
    let (gateway, names) = build_gateway(provider, scenario)?;
    let mut agg = ReportAggregator::new();
    let out = run_trace(
        gateway,
        trace,
        move |config_id| names[config_id % names.len()].clone(),
        scenario.tick,
        |seq, t| agg.observe(seq, t),
    );
    if let Some(e) = out.trace_error {
        return Err(format!("trace source error: {e}"));
    }
    Ok(agg.finish(&out.gateway))
}

fn run_materialized<P: RuntimeProvider + 'static>(
    provider: P,
    scenario: &Scenario,
    workload: &[Arrival],
) -> Result<ScenarioReport, String> {
    let (gateway, names) = build_gateway(provider, scenario)?;
    let out = run_workload(
        gateway,
        workload,
        move |config_id| names[config_id % names.len()].clone(),
        scenario.tick,
    );
    let mut agg = ReportAggregator::new();
    for (i, t) in out.traces.iter().enumerate() {
        agg.observe(i as u64, t);
    }
    Ok(agg.finish(&out.gateway))
}

fn replica_slots(scenario: &Scenario) -> usize {
    scenario.functions.iter().map(|f| f.replicas).sum::<usize>()
}

/// Runs a scenario end to end, streaming arrivals from the workload source —
/// the replay path never materializes the full arrival vector.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let mut trace = build_trace(&scenario.workload, replica_slots(scenario), scenario.seed)?;
    if trace.peek().is_none() {
        if let Some(e) = trace.take_error() {
            return Err(format!("trace source error: {e}"));
        }
        return Err("workload generated no arrivals".to_string());
    }
    let trace = trace.as_mut();
    match &scenario.provider {
        ProviderSpec::HotC => run_streaming(HotC::with_defaults(), scenario, trace),
        ProviderSpec::HotCFuzzy => run_streaming(
            HotC::new(HotCConfig {
                key_policy: KeyPolicy::Fuzzy,
                ..Default::default()
            }),
            scenario,
            trace,
        ),
        ProviderSpec::ColdStart => run_streaming(ColdStartAlways::new(), scenario, trace),
        ProviderSpec::FixedKeepAlive(ttl) => {
            run_streaming(FixedKeepAlive::new(*ttl), scenario, trace)
        }
        ProviderSpec::PeriodicWarmup(period) => {
            run_streaming(PeriodicWarmup::new(*period), scenario, trace)
        }
        ProviderSpec::HybridKeepAlive => run_streaming(HybridKeepAlive::new(), scenario, trace),
    }
}

/// Reference implementation of [`run_scenario`] that materializes the whole
/// arrival vector and replays it through the eager driver.
///
/// Kept for the streaming ≡ materialized equivalence property test and the
/// replay-overhead benchmark; real runs use [`run_scenario`].
pub fn run_scenario_materialized(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let mut trace = build_trace(&scenario.workload, replica_slots(scenario), scenario.seed)?;
    let workload = workloads::drain(trace.as_mut());
    if let Some(e) = trace.take_error() {
        return Err(format!("trace source error: {e}"));
    }
    if workload.is_empty() {
        return Err("workload generated no arrivals".to_string());
    }
    match &scenario.provider {
        ProviderSpec::HotC => run_materialized(HotC::with_defaults(), scenario, &workload),
        ProviderSpec::HotCFuzzy => run_materialized(
            HotC::new(HotCConfig {
                key_policy: KeyPolicy::Fuzzy,
                ..Default::default()
            }),
            scenario,
            &workload,
        ),
        ProviderSpec::ColdStart => run_materialized(ColdStartAlways::new(), scenario, &workload),
        ProviderSpec::FixedKeepAlive(ttl) => {
            run_materialized(FixedKeepAlive::new(*ttl), scenario, &workload)
        }
        ProviderSpec::PeriodicWarmup(period) => {
            run_materialized(PeriodicWarmup::new(*period), scenario, &workload)
        }
        ProviderSpec::HybridKeepAlive => {
            run_materialized(HybridKeepAlive::new(), scenario, &workload)
        }
    }
}

/// Convenience: language runtime names accepted by the scenario format (for
/// error messages and docs).
pub fn supported_languages() -> &'static [&'static str] {
    &["python", "go", "java", "nodejs", "ruby", "native"]
}

/// Convenience: app names accepted by the scenario format.
pub fn supported_apps() -> &'static [&'static str] {
    &[
        "random-number",
        "qr-code",
        "s3-download",
        "v3-app",
        "tf-api-app",
        "cassandra",
    ]
}

/// Maps a language name to its runtime (used by docs/tests).
pub fn language_by_name(name: &str) -> Option<LanguageRuntime> {
    Some(match name {
        "python" => LanguageRuntime::Python,
        "go" => LanguageRuntime::Go,
        "java" => LanguageRuntime::Java,
        "nodejs" | "node" => LanguageRuntime::NodeJs,
        "ruby" => LanguageRuntime::Ruby,
        "native" => LanguageRuntime::Native,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DEMO_SCENARIO;

    #[test]
    fn demo_scenario_runs() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        // 18 rounds × 8 + 4 bursts × 72 extra = 144 + 288 = 432 requests.
        assert_eq!(report.requests, 8 * 18 + 4 * 72);
        assert!(report.cold_fraction < 0.5);
        assert!(report.mean_ms > 0.0);
        assert_eq!(report.failed_fraction, 0.0);
    }

    #[test]
    fn cold_start_scenario_all_cold() {
        let text = DEMO_SCENARIO.replace("provider = hotc", "provider = cold-start");
        let scenario = Scenario::parse(&text).unwrap();
        let report = run_scenario(&scenario).unwrap();
        assert!((report.cold_fraction - 1.0).abs() < 1e-9);
        assert_eq!(report.live_at_end, 0);
    }

    #[test]
    fn crash_rate_flows_through() {
        let text = DEMO_SCENARIO.replace("seed     = 42", "seed = 42\ncrash_rate = 0.3");
        let scenario = Scenario::parse(&text).unwrap();
        assert!((scenario.crash_rate - 0.3).abs() < 1e-12);
        let report = run_scenario(&scenario).unwrap();
        assert!(report.failed_fraction > 0.15, "{}", report.failed_fraction);
    }

    #[test]
    fn unknown_app_is_a_runner_error() {
        let text = DEMO_SCENARIO.replace("app     = qr-code", "app = warp-drive");
        let scenario = Scenario::parse(&text).unwrap();
        let err = run_scenario(&scenario).unwrap_err();
        assert!(err.contains("warp-drive"));
    }

    #[test]
    fn multi_function_poisson_scenario() {
        let text = "\
provider = hotc
seed = 5

[function alpha]
app = qr-code
lang = python

[function beta]
app = qr-code
lang = go

[workload]
pattern = poisson
rate = 2.0
duration = 120s
";
        let scenario = Scenario::parse(text).unwrap();
        let report = run_scenario(&scenario).unwrap();
        assert!(report.requests > 100);
        assert!(report.cold_fraction < 0.2);
    }

    #[test]
    fn report_metrics_reconcile_with_summary() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        let snap = &report.metrics;
        assert_eq!(
            snap.counter("gateway/requests"),
            Some(report.requests as u64)
        );
        let cold = snap.counter("gateway/cold_starts").unwrap() as f64;
        assert!((cold / report.requests as f64 - report.cold_fraction).abs() < 1e-9);
        // The stage decomposition covers every request and sums to the
        // recorded e2e totals.
        let total_ns: u64 = report
            .latencies_ms
            .iter()
            .map(|ms| (ms * 1_000_000.0).round() as u64)
            .sum();
        assert_eq!(
            snap.stage_count("all", metrics_lite::Stage::Exec),
            report.requests as u64
        );
        assert_eq!(snap.scope_total_ns("all"), total_ns);
        // Cold starts ran the runtime-init stage at least once.
        assert!(snap.stage_count("all", metrics_lite::Stage::RuntimeInit) > 0);
    }

    #[test]
    fn report_renders() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        let text = report.render(false);
        assert!(text.contains("scenario summary"));
        let verbose = report.render(true);
        assert!(verbose.contains("per-request latency"));
    }
}
