//! The paper's application catalogue as synthetic profiles.
//!
//! Each profile names the image it runs in, a one-time per-container
//! application initialization (e.g. loading the inception-v3 model), and the
//! per-request [`ExecWork`]. Absolute compute values are calibrated so the
//! paper's *ratios* hold (see DESIGN.md §5 and the fig4/fig8 tests).

use containersim::engine::ExecWork;
use containersim::{ContainerConfig, ImageId, LanguageRuntime, NetworkMode};
use simclock::SimDuration;

/// A serverless application: what it runs in and what one invocation costs.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name (used as the function name by default).
    pub name: &'static str,
    /// The image whose runtime it needs.
    pub image: ImageId,
    /// One-time per-container initialization (model load, connection pool
    /// setup…) charged on the first execution in a container. Reusing a hot
    /// container skips this — a major part of HotC's win on ML apps.
    pub app_init: SimDuration,
    /// Per-invocation work.
    pub work: ExecWork,
}

impl AppProfile {
    /// The §III random-number function: a trivial handler used for the
    /// latency-breakdown measurements (Figs. 1 and 5).
    pub fn random_number() -> Self {
        AppProfile {
            name: "random-number",
            image: ImageId::parse("python:3.8-alpine"),
            app_init: SimDuration::from_millis(20),
            work: ExecWork {
                init: SimDuration::ZERO,
                compute: SimDuration::from_millis(5),
                mem_bytes: 8 * 1024 * 1024,
                cpu_cores: 0.2,
                files_written: 1,
                bytes_written: 4 * 1024,
            },
        }
    }

    /// The §V-B QR-code web app: "the URL transition only took around 60 ms".
    /// Implemented in several languages in the paper; pass the runtime.
    pub fn qr_code(lang: LanguageRuntime) -> Self {
        let image = match lang {
            LanguageRuntime::Python => "python:3.8-alpine",
            LanguageRuntime::Go => "golang:1.13",
            LanguageRuntime::NodeJs => "node:12-alpine",
            LanguageRuntime::Java => "openjdk:8-jre",
            LanguageRuntime::Ruby => "ruby:2.6",
            LanguageRuntime::Native => "alpine:3.12",
        };
        AppProfile {
            name: "qr-code",
            image: ImageId::parse(image),
            app_init: SimDuration::from_millis(30),
            work: ExecWork {
                init: SimDuration::ZERO,
                compute: SimDuration::from_millis(60),
                mem_bytes: 24 * 1024 * 1024,
                cpu_cores: 0.5,
                files_written: 3,
                bytes_written: 128 * 1024,
            },
        }
    }

    /// The §II-C benchmark: download a 3.3 MB PDF from (simulated) S3 and
    /// process it, per language (Fig. 4). Per-language compute reflects the
    /// paper's "already long execution in Java".
    pub fn s3_download(lang: LanguageRuntime) -> Self {
        let (image, compute_ms) = match lang {
            LanguageRuntime::Python => ("python:3.8-alpine", 520),
            LanguageRuntime::Go => ("golang:1.13", 350),
            LanguageRuntime::Java => ("openjdk:8-jre", 1050),
            LanguageRuntime::NodeJs => ("node:12-alpine", 450),
            LanguageRuntime::Ruby => ("ruby:2.6", 560),
            LanguageRuntime::Native => ("alpine:3.12", 330),
        };
        AppProfile {
            name: "s3-download",
            image: ImageId::parse(image),
            app_init: SimDuration::from_millis(40),
            work: ExecWork {
                init: SimDuration::ZERO,
                compute: SimDuration::from_millis(compute_ms),
                mem_bytes: 64 * 1024 * 1024,
                cpu_cores: 0.8,
                files_written: 4,
                bytes_written: 3_460_300, // the 3.3 MB PDF
            },
        }
    }

    /// The §V-B `v3-app`: Python image recognition on the Google
    /// inception-v3 model (TensorFlow 1.13). Heavy app init (model load).
    pub fn v3_app() -> Self {
        AppProfile {
            name: "v3-app",
            image: ImageId::parse("tensorflow:1.13-py3"),
            app_init: SimDuration::from_millis(500),
            work: ExecWork {
                init: SimDuration::ZERO,
                compute: SimDuration::from_millis(3200),
                mem_bytes: 1200 * 1024 * 1024,
                cpu_cores: 4.0,
                files_written: 6,
                bytes_written: 2 * 1024 * 1024,
            },
        }
    }

    /// The §V-B `TF-API-app`: Go image recognition through the TensorFlow C
    /// API bindings.
    pub fn tf_api_app() -> Self {
        AppProfile {
            name: "tf-api-app",
            image: ImageId::parse("golang:1.13"),
            app_init: SimDuration::from_millis(300),
            work: ExecWork {
                init: SimDuration::ZERO,
                compute: SimDuration::from_millis(3200),
                mem_bytes: 850 * 1024 * 1024,
                cpu_cores: 4.0,
                files_written: 6,
                bytes_written: 2 * 1024 * 1024,
            },
        }
    }

    /// The §V-E heavy workload: a Cassandra-like JVM database serving a batch
    /// of requests (used for the Fig. 15(b) resource timeline).
    pub fn cassandra() -> Self {
        AppProfile {
            name: "cassandra",
            image: ImageId::parse("cassandra:3.11"),
            app_init: SimDuration::from_millis(2800),
            work: ExecWork {
                init: SimDuration::ZERO,
                compute: SimDuration::from_secs(7),
                mem_bytes: 6 * 1024 * 1024 * 1024,
                cpu_cores: 6.0,
                files_written: 2000,
                bytes_written: 512 * 1024 * 1024,
            },
        }
    }

    /// The default container configuration for this app: bridge network on a
    /// single host (the paper's NAT setup for the web experiments).
    pub fn default_config(&self) -> ContainerConfig {
        ContainerConfig::bridge(self.image.clone())
    }

    /// Configuration with an explicit network mode (e.g. multi-host overlay
    /// for the Raspberry Pi experiments of Fig. 8(b)).
    pub fn config_with_network(&self, mode: NetworkMode) -> ContainerConfig {
        let network = if mode.requires_multi_host() {
            containersim::network::NetworkConfig::multi(mode)
        } else {
            containersim::network::NetworkConfig::single(mode)
        };
        ContainerConfig::bridge(self.image.clone()).with_network(network)
    }

    /// The work for an invocation: the one-time app initialization rides
    /// along as `ExecWork::init` on the first execution in a container, so
    /// the engine can report the init/handler latency split.
    pub fn work_for(&self, first_exec_in_container: bool) -> ExecWork {
        let mut work = self.work;
        work.init = if first_exec_in_container {
            self.app_init
        } else {
            SimDuration::ZERO
        };
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_images_exist_in_registry() {
        let registry = containersim::ImageRegistry::with_default_catalogue();
        let apps = [
            AppProfile::random_number(),
            AppProfile::qr_code(LanguageRuntime::Python),
            AppProfile::qr_code(LanguageRuntime::Go),
            AppProfile::s3_download(LanguageRuntime::Java),
            AppProfile::v3_app(),
            AppProfile::tf_api_app(),
            AppProfile::cassandra(),
        ];
        for app in apps {
            assert!(
                registry.get(&app.image).is_some(),
                "{} references missing image {}",
                app.name,
                app.image
            );
        }
    }

    #[test]
    fn first_exec_includes_app_init() {
        let app = AppProfile::v3_app();
        let first = app.work_for(true);
        let later = app.work_for(false);
        assert_eq!(first.init, app.app_init);
        assert_eq!(later.init, SimDuration::ZERO);
        assert_eq!(first.compute, later.compute);
        assert_eq!(first.mem_bytes, later.mem_bytes);
    }

    #[test]
    fn java_s3_is_the_long_execution() {
        let java = AppProfile::s3_download(LanguageRuntime::Java);
        for lang in [
            LanguageRuntime::Python,
            LanguageRuntime::Go,
            LanguageRuntime::NodeJs,
        ] {
            assert!(java.work.compute > AppProfile::s3_download(lang).work.compute);
        }
    }

    #[test]
    fn qr_code_is_60ms() {
        let app = AppProfile::qr_code(LanguageRuntime::Python);
        assert_eq!(app.work.compute.as_millis(), 60);
    }

    #[test]
    fn overlay_config_is_multi_host() {
        let app = AppProfile::v3_app();
        let cfg = app.config_with_network(NetworkMode::Overlay);
        assert!(cfg.validate().is_ok());
        let bridge = app.config_with_network(NetworkMode::Bridge);
        assert!(bridge.validate().is_ok());
        assert_ne!(cfg, bridge);
    }
}
