//! Adaptive live container management (§IV-C, Algorithm 3).
//!
//! At a fixed control interval the controller snapshots, per runtime type,
//! the peak number of containers the interval actually needed
//! (`history[k][t]`), feeds it to that type's combined exponential-smoothing
//! plus Markov predictor, and resizes the pool toward the predicted
//! next-interval demand — pre-warming containers ahead of predicted growth
//! ("prepare the runtime in advance") and retiring idle ones ahead of
//! predicted decline ("avoid … unnecessary resource consumption").
//!
//! The controller walks the sharded pool one shard at a time
//! ([`AdaptiveController::step_sharded`]), so a control step never stalls
//! the whole pool: requests on other shards proceed while one shard's
//! snapshot is taken. By default each step takes the pool's **dirty-set**
//! snapshot — only keys touched since the last interval (or still holding
//! containers) are visited, so a step costs O(active types) rather than
//! O(registered types). Keys the dirty snapshot skipped saw zero demand by
//! construction; when such a key resurfaces, the controller backfills the
//! missed intervals as zero observations (one per skipped tick), so every
//! predictor sees exactly the demand series a full sweep would have fed it.
//! [`AdaptiveController::step_sharded_full`] keeps the O(all types)
//! reference path; a property test asserts the two produce identical
//! prewarm/retire/GC actions on the same trace.
//!
//! Keys whose slots the pool garbage-collects (empty for several
//! consecutive zero-demand intervals) have their predictors dropped in the
//! same step, so the predictor map cannot grow without bound across
//! distinct configurations.

use crate::key::KeyId;
use crate::pool::ContainerPool;
use crate::shard::{EngineRef, ExclusiveEngine, ShardedPool};
use containersim::{ContainerEngine, EngineError};
use predictor::{EsMarkov, InitialValue, Predictor};
use simclock::{SimDuration, SimTime};

/// Controller tuning.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Control interval (how often demand is sampled and the pool resized).
    pub interval: SimDuration,
    /// Exponential smoothing coefficient (paper: 0.8).
    pub alpha: f64,
    /// Seeding strategy for short series (paper: mean of first five).
    pub init: InitialValue,
    /// Number of Markov demand regions.
    pub regions: usize,
    /// Demand history window per key.
    pub window: usize,
    /// Fractional headroom added on top of the prediction (0.0 = exactly the
    /// prediction; 0.25 = provision 25 % extra).
    pub headroom: f64,
    /// Maximum fraction of the *excess* (current − target) retired per
    /// control step. Scale-up is immediate (cold starts hurt now); scale-down
    /// is deliberately gradual so capacity survives between recurring bursts
    /// — the §V-D burst experiment's "more same types of containers available
    /// after the previous burst". 1.0 = shed everything immediately.
    pub max_retire_fraction: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            interval: SimDuration::from_secs(30),
            alpha: 0.8,
            init: InitialValue::MeanOfFirst5,
            regions: 6,
            window: 256,
            headroom: 0.0,
            max_retire_fraction: 0.1,
        }
    }
}

/// What one control step did — the counters and predicted-vs-actual demand
/// the telemetry layer samples into the metrics registry.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// Containers pre-warmed ahead of predicted demand.
    pub prewarmed: usize,
    /// Idle containers retired beyond predicted demand.
    pub retired: usize,
    /// Keys whose empty slots (and predictors) were garbage collected.
    pub gc_keys: usize,
    /// Per-key `(predicted, actual)` demand for the interval, for the keys
    /// the step visited (a dirty step omits cold keys, which contribute
    /// zero to both totals).
    pub demand: Vec<(KeyId, f64, usize)>,
}

impl StepReport {
    /// Total predicted demand across keys.
    pub fn predicted_total(&self) -> f64 {
        self.demand.iter().map(|&(_, p, _)| p).sum()
    }

    /// Total actual demand across keys.
    pub fn actual_total(&self) -> usize {
        self.demand.iter().map(|&(_, _, d)| d).sum()
    }
}

/// One key's predictor plus the last tick it was fed, so dirty steps can
/// backfill the zero-demand intervals the key was skipped for.
struct KeyedPredictor {
    model: EsMarkov,
    last_tick: u64,
}

/// The per-key adaptive controller.
pub struct AdaptiveController {
    config: ControllerConfig,
    /// Predictor slots indexed by [`KeyId::index`] — interned ids are dense
    /// per pool, so a direct-indexed table beats hashing on the per-key tick
    /// path. GC'd keys leave a boxed-pointer-sized `None` hole (ids are
    /// never reused).
    predictors: Vec<Option<Box<KeyedPredictor>>>,
    /// Number of live (`Some`) predictor slots.
    live_predictors: usize,
    /// Monotone control-step counter; predictors record the tick they last
    /// observed so skipped (zero-demand) intervals can be backfilled.
    ticks: u64,
    last_step: Option<SimTime>,
    last_predictions: Vec<(KeyId, f64)>,
    /// Cumulative background cost of pre-warm/retire actions.
    background: SimDuration,
}

impl AdaptiveController {
    /// Creates a controller.
    pub fn new(config: ControllerConfig) -> Self {
        assert!(
            !config.interval.is_zero(),
            "control interval must be positive"
        );
        AdaptiveController {
            config,
            predictors: Vec::new(),
            live_predictors: 0,
            ticks: 0,
            last_step: None,
            last_predictions: Vec::new(),
            background: SimDuration::ZERO,
        }
    }

    /// The paper's configuration (α = 0.8, 30 s interval).
    pub fn paper_default() -> Self {
        Self::new(ControllerConfig::default())
    }

    /// The active tuning.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Most recent per-key predictions (diagnostics / Fig. 10), for the keys
    /// the last step visited, sorted by key id.
    pub fn last_predictions(&self) -> &[(KeyId, f64)] {
        &self.last_predictions
    }

    /// Number of keys with a live predictor (bounded by the pool's slot GC).
    pub fn predictor_count(&self) -> usize {
        self.live_predictors
    }

    /// Cumulative cost of controller actions.
    pub fn background_cost(&self) -> SimDuration {
        self.background
    }

    /// Runs a control step if the interval has elapsed since the last one,
    /// returning the step's report when one ran.
    pub fn maybe_step(
        &mut self,
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        now: SimTime,
    ) -> Result<Option<StepReport>, EngineError> {
        self.maybe_step_sharded(pool.sharded(), &ExclusiveEngine::new(engine), now)
    }

    /// Runs one control step unconditionally: snapshot demand, update the
    /// predictors, and resize the pool toward the predictions.
    pub fn step(
        &mut self,
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        now: SimTime,
    ) -> Result<StepReport, EngineError> {
        self.step_sharded(pool.sharded(), &ExclusiveEngine::new(engine), now)
    }

    /// Sharded variant of [`Self::maybe_step`].
    pub fn maybe_step_sharded(
        &mut self,
        pool: &ShardedPool,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<Option<StepReport>, EngineError> {
        let due = match self.last_step {
            None => true,
            Some(last) => now.duration_since(last) >= self.config.interval,
        };
        if !due {
            return Ok(None);
        }
        self.step_sharded(pool, engine, now).map(Some)
    }

    /// One O(active types) control step over the sharded pool, one shard at
    /// a time: take each shard's dirty-set demand snapshot (which also
    /// garbage-collects long-empty slots via the idle sweep), update
    /// predictors, and resize toward the predictions. Only one shard's lock
    /// is held at any moment, and never together with the engine lock.
    pub fn step_sharded(
        &mut self,
        pool: &ShardedPool,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<StepReport, EngineError> {
        self.step_shards(pool, engine, now, false)
    }

    /// The O(all types) reference step: full-sweep snapshots that visit
    /// every tracked slot. Produces the same pool-resize actions as
    /// [`Self::step_sharded`] on the same trace (property-tested below);
    /// kept for validation and as the comparison baseline in the
    /// `controller_tick` benches.
    pub fn step_sharded_full(
        &mut self,
        pool: &ShardedPool,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<StepReport, EngineError> {
        self.step_shards(pool, engine, now, true)
    }

    fn step_shards(
        &mut self,
        pool: &ShardedPool,
        engine: &impl EngineRef,
        now: SimTime,
        full: bool,
    ) -> Result<StepReport, EngineError> {
        self.last_step = Some(now);
        self.ticks += 1;
        let tick = self.ticks;
        self.last_predictions.clear();
        let mut report = StepReport::default();
        for shard in 0..pool.num_shards() {
            let snapshot = if full {
                pool.take_shard_snapshot(shard)
            } else {
                pool.take_shard_snapshot_dirty(shard)
            };
            for id in &snapshot.retired {
                // The pool dropped the slot: drop its predictor with it.
                if let Some(slot) = self.predictors.get_mut(id.index()) {
                    if slot.take().is_some() {
                        self.live_predictors -= 1;
                    }
                }
            }
            report.gc_keys += snapshot.retired.len();
            for sample in snapshot.demands {
                let (id, demand) = (sample.id, sample.demand);
                let cfg = &self.config;
                if self.predictors.len() <= id.index() {
                    self.predictors.resize_with(id.index() + 1, || None);
                }
                let slot = &mut self.predictors[id.index()];
                let entry = match slot {
                    Some(entry) => entry,
                    None => {
                        self.live_predictors += 1;
                        slot.insert(Box::new(KeyedPredictor {
                            model: EsMarkov::with_params(
                                cfg.alpha,
                                cfg.init,
                                cfg.regions,
                                cfg.window,
                            ),
                            last_tick: tick - 1,
                        }))
                    }
                };
                // A key absent from a dirty snapshot saw zero demand by
                // construction (any touch keeps it on the active list):
                // feed the skipped intervals now so the predictor's series
                // is identical to what a full sweep would have produced.
                for _ in entry.last_tick + 1..tick {
                    entry.model.observe(0.0);
                }
                entry.last_tick = tick;
                entry.model.observe(demand as f64);
                let predicted = entry.model.predict() * (1.0 + self.config.headroom);
                self.last_predictions.push((id, predicted));
                report.demand.push((id, predicted, demand));

                // Scale-down floor: never size below what the *last* interval
                // actually needed — on a growing workload the smoother lags
                // and would otherwise retire runtimes the next wave is about
                // to use (the Fig. 14(a) "at least half reuse" property).
                let target = (predicted.ceil().max(0.0) as usize).max(demand);
                // The snapshot read the live population under the shard lock
                // it already held — no per-key re-lock.
                let current = sample.live();
                // No-resurrect rule: a key with no demand and no containers
                // is on its way to being GC'd — pre-warming it would keep a
                // dead key alive forever on the ceil()-ed tail of a decaying
                // prediction.
                if current == 0 && demand == 0 {
                    continue;
                }
                if target > current {
                    // Prepare runtimes in advance of predicted demand.
                    for _ in 0..(target - current) {
                        match pool.prewarm_key_id(engine, id, now)? {
                            Some(cost) => {
                                self.background += cost;
                                report.prewarmed += 1;
                            }
                            None => break, // slot GC'd since the snapshot
                        }
                    }
                } else {
                    // Shed idle runtimes beyond predicted demand — gradually,
                    // so recurring bursts find warm capacity left over.
                    let excess = current - target;
                    let retire = ((excess as f64 * self.config.max_retire_fraction).ceil()
                        as usize)
                        .min(excess);
                    for _ in 0..retire {
                        match pool.retire_one_id(engine, id, now)? {
                            Some(c) => {
                                self.background += c;
                                report.retired += 1;
                            }
                            None => break, // the rest are in use
                        }
                    }
                }
            }
        }
        report.demand.sort_unstable_by_key(|&(id, _, _)| id);
        self.last_predictions.sort_unstable_by_key(|&(id, _)| id);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyPolicy;
    use containersim::engine::ExecWork;
    use containersim::{ContainerConfig, HardwareProfile, ImageId};

    fn setup() -> (ContainerEngine, ContainerPool, AdaptiveController) {
        (
            ContainerEngine::with_local_images(HardwareProfile::server()),
            ContainerPool::new(KeyPolicy::Exact),
            AdaptiveController::paper_default(),
        )
    }

    fn cfg() -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse("python:3.8-alpine"))
    }

    /// Simulates `n` concurrent requests for `config` in one interval.
    fn drive_config_demand(
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        n: usize,
        now: SimTime,
    ) {
        let acqs: Vec<_> = (0..n)
            .map(|_| pool.acquire(engine, config, now).unwrap())
            .collect();
        for a in acqs {
            let out = engine
                .begin_exec(
                    a.container,
                    ExecWork::light(SimDuration::from_millis(5)),
                    now,
                )
                .unwrap();
            engine.end_exec(a.container, now + out.latency).unwrap();
            pool.release(engine, a.container, now + out.latency)
                .unwrap();
        }
    }

    /// Simulates `n` concurrent requests in one interval.
    fn drive_demand(
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        n: usize,
        now: SimTime,
    ) {
        drive_config_demand(pool, engine, &cfg(), n, now);
    }

    #[test]
    fn steady_demand_sizes_pool_to_match() {
        let (mut e, mut pool, mut ctl) = setup();
        for t in 0..12 {
            let now = SimTime::from_secs(t * 30);
            drive_demand(&mut pool, &mut e, 5, now);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let key = pool.key_of(&cfg());
        let live = pool.num_avail(&key) + pool.num_in_use(&key);
        assert!(
            (4..=7).contains(&live),
            "pool should track demand of 5, got {live}"
        );
    }

    #[test]
    fn demand_drop_retires_containers() {
        let (mut e, mut pool, mut ctl) = setup();
        // High demand for a while…
        for t in 0..8 {
            let now = SimTime::from_secs(t * 30);
            drive_demand(&mut pool, &mut e, 10, now);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let key = pool.key_of(&cfg());
        let high = pool.num_avail(&key);
        assert!(high >= 8, "pool grew to demand, got {high}");
        // …then it vanishes.
        for t in 8..20 {
            let now = SimTime::from_secs(t * 30);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let low = pool.num_avail(&key);
        assert!(low <= 2, "pool should shrink after demand drop, got {low}");
    }

    #[test]
    fn growth_retains_full_capacity() {
        let (mut e, mut pool, mut ctl) = setup();
        // Ramp 2, 4, 6, … — the scale-down floor (last observed demand)
        // keeps every container from the latest wave warm even while the
        // lagging smoother under-predicts.
        for (r, n) in [2usize, 4, 6, 8, 10, 12].into_iter().enumerate() {
            let now = SimTime::from_secs(r as u64 * 30);
            drive_demand(&mut pool, &mut e, n, now);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let key = pool.key_of(&cfg());
        assert_eq!(pool.num_avail(&key), 12, "full last wave stays warm");
    }

    #[test]
    fn headroom_prewarms_extra_capacity() {
        let (mut e, mut pool, _) = setup();
        let mut ctl = AdaptiveController::new(ControllerConfig {
            headroom: 0.5,
            ..Default::default()
        });
        for r in 0..8u64 {
            let now = SimTime::from_secs(r * 30);
            drive_demand(&mut pool, &mut e, 10, now);
            ctl.step(&mut pool, &mut e, now).unwrap();
        }
        let key = pool.key_of(&cfg());
        // 50 % headroom over a steady demand of 10 ⇒ ~15 warm runtimes.
        assert!(pool.num_avail(&key) >= 13, "avail={}", pool.num_avail(&key));
        assert!(ctl.background_cost() > SimDuration::ZERO);
    }

    #[test]
    fn maybe_step_respects_interval() {
        let (mut e, mut pool, mut ctl) = setup();
        assert!(ctl
            .maybe_step(&mut pool, &mut e, SimTime::ZERO)
            .unwrap()
            .is_some());
        // 10 s later: not due (interval 30 s).
        assert!(ctl
            .maybe_step(&mut pool, &mut e, SimTime::from_secs(10))
            .unwrap()
            .is_none());
        assert!(ctl
            .maybe_step(&mut pool, &mut e, SimTime::from_secs(30))
            .unwrap()
            .is_some());
    }

    /// The step report tallies what the controller actually did, so the
    /// telemetry layer can export prewarm/retire/GC counts and
    /// predicted-vs-actual demand without re-deriving them.
    #[test]
    fn step_report_tallies_actions() {
        let (mut e, mut pool, _) = setup();
        let mut ctl = AdaptiveController::new(ControllerConfig {
            headroom: 0.5,
            ..Default::default()
        });
        pool.set_gc_intervals(1);
        drive_demand(&mut pool, &mut e, 4, SimTime::ZERO);
        let report = ctl.step(&mut pool, &mut e, SimTime::ZERO).unwrap();
        assert_eq!(report.demand.len(), 1);
        assert_eq!(report.actual_total(), 4);
        assert!(report.predicted_total() > 0.0);
        // Headroom over the observed demand forces pre-warms; four released
        // containers already exist, so the target of ceil(pred*1.5) adds more.
        assert!(report.prewarmed > 0, "report: {report:?}");
        assert_eq!(report.gc_keys, 0);
        // Drain the pool, then let the empty slot hit the GC threshold.
        let key = pool.key_of(&cfg());
        while pool
            .retire_one(&mut e, &key, SimTime::from_secs(1))
            .unwrap()
            .is_some()
        {}
        let report = ctl.step(&mut pool, &mut e, SimTime::from_secs(30)).unwrap();
        assert_eq!(report.gc_keys, 1, "report: {report:?}");
    }

    #[test]
    fn predictions_are_exposed() {
        let (mut e, mut pool, mut ctl) = setup();
        drive_demand(&mut pool, &mut e, 3, SimTime::ZERO);
        ctl.step(&mut pool, &mut e, SimTime::ZERO).unwrap();
        let id = pool.sharded().id_of(&pool.key_of(&cfg())).unwrap();
        assert!(ctl.last_predictions().iter().any(|&(k, _)| k == id));
    }

    /// Regression (unbounded predictor maps): when the pool GCs a dead
    /// slot, the controller drops its predictor in the same step — before
    /// the fix, every config ever seen kept a predictor (and a config clone)
    /// forever.
    #[test]
    fn gc_drops_predictors_for_dead_keys() {
        let (mut e, mut pool, mut ctl) = setup();
        pool.set_gc_intervals(2);
        let key = pool.key_of(&cfg());
        drive_demand(&mut pool, &mut e, 2, SimTime::ZERO);
        ctl.step(&mut pool, &mut e, SimTime::ZERO).unwrap();
        assert_eq!(ctl.predictor_count(), 1);
        // Empty the slot behind the controller's back (eviction under
        // memory pressure would do the same).
        while pool
            .retire_one(&mut e, &key, SimTime::from_secs(1))
            .unwrap()
            .is_some()
        {}
        assert_eq!(pool.total_live(), 0);
        // Two zero-demand steps on the empty slot reach the GC threshold;
        // the no-resurrect rule keeps the controller from pre-warming it.
        for t in 1..=3u64 {
            ctl.step(&mut pool, &mut e, SimTime::from_secs(t * 30))
                .unwrap();
        }
        assert_eq!(pool.total_live(), 0, "dead key must not be resurrected");
        assert!(pool.keys().is_empty());
        assert_eq!(ctl.predictor_count(), 0, "predictor GC'd with the slot");
    }

    /// The tentpole equivalence: on any shared trace, the dirty-set step
    /// and the full-sweep step take the same prewarm/retire/GC actions at
    /// every interval and leave the pool and predictor map in the same
    /// final state — the dirty path only skips work, never decisions.
    #[test]
    fn prop_dirty_step_matches_full_sweep() {
        testkit::check(48, |g| {
            let gc = g.u32_in(1..4);
            let intervals = g.usize_in(3..10);
            let configs = [
                ContainerConfig::bridge(ImageId::parse("python:3.8-alpine")),
                ContainerConfig::bridge(ImageId::parse("alpine:3.12")),
                ContainerConfig::bridge(ImageId::parse("golang:1.13")),
            ];
            // One op trace, applied identically to both stacks.
            let plan: Vec<Vec<(usize, u8, usize)>> = (0..intervals)
                .map(|_| {
                    g.vec(0..6, |g| {
                        (g.usize_in(0..3), g.u8_in(0..3), g.usize_in(1..4))
                    })
                })
                .collect();
            let (mut ef, mut pf, mut cf) = setup();
            let (mut ed, mut pd, mut cd) = setup();
            pf.set_gc_intervals(gc);
            pd.set_gc_intervals(gc);
            for (t, ops) in plan.iter().enumerate() {
                let now = SimTime::from_secs(t as u64 * 30);
                for &(ci, op, n) in ops {
                    let c = &configs[ci];
                    match op {
                        0 => {
                            drive_config_demand(&mut pf, &mut ef, c, n, now);
                            drive_config_demand(&mut pd, &mut ed, c, n, now);
                        }
                        1 => {
                            pf.prewarm(&mut ef, c, now).unwrap();
                            pd.prewarm(&mut ed, c, now).unwrap();
                        }
                        _ => {
                            pf.retire_one(&mut ef, &pf.key_of(c), now).unwrap();
                            pd.retire_one(&mut ed, &pd.key_of(c), now).unwrap();
                        }
                    }
                }
                let rf = cf
                    .step_sharded_full(pf.sharded(), &ExclusiveEngine::new(&mut ef), now)
                    .unwrap();
                let rd = cd.step(&mut pd, &mut ed, now).unwrap();
                assert_eq!(rf.prewarmed, rd.prewarmed, "interval {t}: prewarm diverged");
                assert_eq!(rf.retired, rd.retired, "interval {t}: retire diverged");
                assert_eq!(rf.gc_keys, rd.gc_keys, "interval {t}: GC diverged");
            }
            assert_eq!(pf.keys(), pd.keys(), "tracked key sets diverged");
            for key in pf.keys() {
                assert_eq!(pf.num_avail(&key), pd.num_avail(&key), "sizing of {key}");
                assert_eq!(pf.num_in_use(&key), pd.num_in_use(&key));
            }
            assert_eq!(cf.predictor_count(), cd.predictor_count());
        });
    }

    #[test]
    #[should_panic(expected = "control interval must be positive")]
    fn zero_interval_rejected() {
        let _ = AdaptiveController::new(ControllerConfig {
            interval: SimDuration::ZERO,
            ..Default::default()
        });
    }
}
