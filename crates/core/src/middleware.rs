//! The HotC middleware: pool + adaptive controller + limits behind the
//! gateway's [`faas::RuntimeProvider`] interface (Fig. 6).
//!
//! "When new requests arrive, HotC always attempts to execute the user code
//! in an existing and free container. If it cannot find an available
//! container, HotC just starts a new one as usual. After the container
//! finishes execution, it returns the results back to the client side and
//! then HotC will clean up the container and prepare for the next request."

use crate::controller::{AdaptiveController, ControllerConfig};
use crate::key::KeyPolicy;
use crate::limits::PoolLimits;
use crate::pool::ContainerPool;
use containersim::{ContainerConfig, ContainerEngine, ContainerId, EngineError};
use faas::{Acquisition, RuntimeProvider};
use simclock::{SimDuration, SimTime};

/// Top-level HotC configuration.
#[derive(Debug, Clone)]
pub struct HotCConfig {
    /// Runtime-key matching policy.
    pub key_policy: KeyPolicy,
    /// Pool resource limits.
    pub limits: PoolLimits,
    /// Adaptive controller tuning.
    pub controller: ControllerConfig,
    /// Disable the predictor entirely (pure reactive reuse) — the ablation
    /// comparing "pool only" against "pool + adaptive control".
    pub disable_prediction: bool,
    /// Number of pool shards (concurrent frontends; 1 = a single lock).
    pub shards: usize,
}

impl Default for HotCConfig {
    fn default() -> Self {
        HotCConfig {
            key_policy: KeyPolicy::default(),
            limits: PoolLimits::default(),
            controller: ControllerConfig::default(),
            disable_prediction: false,
            shards: crate::shard::DEFAULT_SHARDS,
        }
    }
}

/// The HotC runtime manager.
pub struct HotC {
    pool: ContainerPool,
    controller: AdaptiveController,
    limits: PoolLimits,
    disable_prediction: bool,
    background: SimDuration,
    forced_evictions: u64,
}

impl HotC {
    /// Builds HotC from a configuration.
    pub fn new(config: HotCConfig) -> Self {
        HotC {
            pool: ContainerPool::with_shards(config.key_policy, config.shards),
            controller: AdaptiveController::new(config.controller),
            limits: config.limits,
            disable_prediction: config.disable_prediction,
            background: SimDuration::ZERO,
            forced_evictions: 0,
        }
    }

    /// The paper's deployed configuration: exact keys, 500-container /
    /// 80 %-memory limits, α = 0.8 adaptive control at 30 s.
    pub fn with_defaults() -> Self {
        Self::new(HotCConfig::default())
    }

    /// Pool inspection.
    pub fn pool(&self) -> &ContainerPool {
        &self.pool
    }

    /// Controller inspection (predictions, background cost).
    pub fn controller(&self) -> &AdaptiveController {
        &self.controller
    }

    /// The configured limits.
    pub fn limits(&self) -> PoolLimits {
        self.limits
    }
}

impl RuntimeProvider for HotC {
    fn acquire(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        let acq = self.pool.acquire(engine, config, now)?;
        if acq.cold {
            // A cold start may have pushed the pool over its limits.
            let (cost, evicted) = self.limits.enforce_counted(&mut self.pool, engine, now)?;
            self.background += cost;
            self.forced_evictions += evicted as u64;
        }
        Ok(acq)
    }

    fn release(
        &mut self,
        engine: &mut ContainerEngine,
        container: ContainerId,
        now: SimTime,
    ) -> Result<(), EngineError> {
        self.background += self.pool.release(engine, container, now)?;
        Ok(())
    }

    fn tick(&mut self, engine: &mut ContainerEngine, now: SimTime) -> Result<(), EngineError> {
        if !self.disable_prediction {
            self.controller.maybe_step(&mut self.pool, engine, now)?;
        }
        let (cost, evicted) = self.limits.enforce_counted(&mut self.pool, engine, now)?;
        self.background += cost;
        self.forced_evictions += evicted as u64;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "hotc"
    }

    fn background_cost(&self) -> SimDuration {
        self.background + self.controller.background_cost()
    }

    fn forced_evictions(&self) -> u64 {
        self.forced_evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::{HardwareProfile, LanguageRuntime};
    use faas::{AppProfile, Gateway};

    fn gateway() -> Gateway<HotC> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, HotC::with_defaults());
        gw.register_app(AppProfile::qr_code(LanguageRuntime::Python));
        gw
    }

    #[test]
    fn first_cold_then_reuse() {
        let mut gw = gateway();
        let cold = gw.handle("qr-code", SimTime::ZERO).unwrap();
        let warm = gw.handle("qr-code", SimTime::from_secs(30)).unwrap();
        assert!(cold.cold && !warm.cold);
        // §V-B: the QR transform itself is ~60 ms; warm latency is close to
        // that while cold is dominated by runtime setup.
        assert!(warm.total().as_millis() < 80);
        assert!(cold.total().as_millis() > 500);
    }

    #[test]
    fn no_reuse_across_configs() {
        let mut gw = gateway();
        let py = gw.handle("qr-code", SimTime::ZERO).unwrap();
        assert!(py.cold);
        // Redeploy the same function in Go: different image ⇒ different
        // runtime type ⇒ the idle python container must not be reused.
        gw.register_app(AppProfile::qr_code(LanguageRuntime::Go));
        let go = gw.handle("qr-code", SimTime::from_secs(1)).unwrap();
        assert!(go.cold);
        // And the python runtime is still pooled, unused.
        assert_eq!(gw.engine().live_count(), 2);
    }

    #[test]
    fn limits_enforced_on_cold_burst() {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let config = HotCConfig {
            limits: PoolLimits::new(5, 0.99),
            ..Default::default()
        };
        let mut gw = Gateway::new(engine, HotC::new(config));
        gw.register_app(AppProfile::random_number());
        // 12 overlapping requests: 12 cold containers created, capped to 5
        // once they are released back to the pool and tick runs.
        let inflights: Vec<_> = (0..12)
            .map(|_| gw.begin("random-number", SimTime::ZERO).unwrap())
            .collect();
        for f in inflights {
            gw.finish(f).unwrap();
        }
        gw.tick(SimTime::from_secs(60)).unwrap();
        assert!(gw.engine().live_count() <= 5);
    }

    #[test]
    fn adaptive_prewarm_avoids_cold_on_growth() {
        let mut gw = gateway();
        // Round r: r+1 parallel requests; tick after each round lets the
        // controller learn the ramp and pre-warm.
        let mut cold_late = 0;
        for r in 0..10u64 {
            let now = SimTime::from_secs(r * 30);
            let inflights: Vec<_> = (0..=r).map(|_| gw.begin("qr-code", now).unwrap()).collect();
            for f in inflights {
                let tr = gw.finish(f).unwrap();
                if r >= 5 && tr.cold {
                    cold_late += 1;
                }
            }
            gw.tick(now + SimDuration::from_secs(29)).unwrap();
        }
        // Later rounds mostly reuse pre-warmed runtimes; a lagging predictor
        // may still miss a couple at the margin.
        assert!(
            cold_late <= 8,
            "late-round cold starts should be rare, got {cold_late}"
        );
    }

    #[test]
    fn background_cost_accumulates() {
        let mut gw = gateway();
        gw.handle("qr-code", SimTime::ZERO).unwrap();
        gw.tick(SimTime::from_secs(30)).unwrap();
        assert!(gw.provider().background_cost() > SimDuration::ZERO);
        assert_eq!(gw.provider().name(), "hotc");
    }

    #[test]
    fn disabled_prediction_still_reuses() {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let config = HotCConfig {
            disable_prediction: true,
            ..Default::default()
        };
        let mut gw = Gateway::new(engine, HotC::new(config));
        gw.register_app(AppProfile::random_number());
        let a = gw.handle("random-number", SimTime::ZERO).unwrap();
        gw.tick(SimTime::from_secs(30)).unwrap();
        let b = gw.handle("random-number", SimTime::from_secs(31)).unwrap();
        assert!(a.cold && !b.cold);
        // With prediction disabled the idle container is kept (no retire).
        assert_eq!(gw.engine().live_count(), 1);
    }

    #[test]
    fn pool_view_matches_engine_after_traffic() {
        let mut gw = gateway();
        for i in 0..20 {
            gw.handle("qr-code", SimTime::from_secs(i)).unwrap();
        }
        assert_eq!(gw.provider().pool().total_live(), gw.engine().live_count());
    }
}
