//! Constant-memory latency histogram with logarithmic buckets.
//!
//! [`LatencyRecorder`](crate::latency::LatencyRecorder) keeps raw samples —
//! exact but O(n) memory. For long-running concurrent drivers (the
//! contention benches, day-long trace replays) this HDR-style histogram
//! records into fixed log-spaced buckets: ~2.4 % relative error, O(1) memory,
//! O(1) record.

use simclock::SimDuration;

/// Buckets per power of two (higher = finer resolution).
const SUB_BUCKETS: usize = 32;
/// Number of powers of two covered (1 ns … ~2^40 ns ≈ 18 min).
const OCTAVES: usize = 41;

/// A log-bucketed latency histogram.
///
/// ```
/// use metrics_lite::LatencyHistogram;
/// use simclock::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=1000 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// let p99 = h.quantile(0.99).as_millis_f64();
/// assert!((p99 - 990.0).abs() / 990.0 < 0.02); // ≤ ~1.6 % midpoint error
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; OCTAVES * SUB_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        let octave = 63 - ns.leading_zeros() as usize;
        let octave = octave.min(OCTAVES - 1);
        // Position within the octave, scaled into SUB_BUCKETS slots.
        let base = 1u64 << octave;
        let offset = ((ns - base) as u128 * SUB_BUCKETS as u128 / base as u128) as usize;
        octave * SUB_BUCKETS + offset.min(SUB_BUCKETS - 1)
    }

    /// Representative (midpoint) value of a bucket. Reporting the midpoint
    /// of `[lo, hi)` instead of the lower bound halves the worst-case
    /// quantile bias; the lower bound systematically under-reported by up to
    /// one sub-bucket width.
    fn bucket_value(bucket: usize) -> u64 {
        let octave = bucket / SUB_BUCKETS;
        let offset = (bucket % SUB_BUCKETS) as u64;
        let base = 1u64 << octave;
        let lo = base + base * offset / SUB_BUCKETS as u64;
        let hi = base + base * (offset + 1) / SUB_BUCKETS as u64;
        lo + (hi - lo) / 2
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_nanos();
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of all samples in nanoseconds (tracked outside the
    /// buckets), for reconciling aggregates against e2e totals.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Exact mean (tracked outside the buckets).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / u128::from(self.total)) as u64)
    }

    /// Exact maximum.
    pub fn max(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.max_ns)
        }
    }

    /// Exact minimum.
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Approximate quantile (nearest-rank over buckets; ≤ ~3 % relative
    /// error by construction).
    ///
    /// # Panics
    /// Panics when empty or `q` is out of `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!(self.total > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let v = Self::bucket_value(bucket).clamp(self.min_ns, self.max_ns);
                return SimDuration::from_nanos(v);
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn exact_stats_track() {
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30, 40, 50] {
            h.record(ms(v));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean().as_millis(), 30);
        assert_eq!(h.min().as_millis(), 10);
        assert_eq!(h.max().as_millis(), 50);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(ms(v));
        }
        for (q, expected_ms) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let got = h.quantile(q).as_millis_f64();
            let rel = (got - expected_ms as f64).abs() / expected_ms as f64;
            assert!(rel < 0.02, "q={q}: got {got}, want ~{expected_ms} ({rel})");
        }
    }

    #[test]
    fn bucket_midpoint_removes_lower_bound_bias() {
        // 1540 ns falls in bucket [1536, 1568) (octave 10, 32 ns sub-bucket
        // width). The pre-fix lower-bound representative reported 1536 —
        // biased low for every sample in the bucket — where the midpoint
        // 1552 is the unbiased choice.
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(1540));
        h.record(SimDuration::from_nanos(4096));
        assert_eq!(h.quantile(0.5).as_nanos(), 1552);
        // Exact powers of two clamp to the recorded max, not the midpoint of
        // their (otherwise empty) bucket.
        assert_eq!(h.quantile(1.0).as_nanos(), 4096);
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn empty_quantile_panics() {
        LatencyHistogram::new().quantile(0.5);
    }

    #[test]
    fn zero_and_huge_values_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_secs(100_000));
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert!(h.quantile(1.0) <= SimDuration::from_secs(100_000));
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 1..=100 {
            let d = ms(v);
            if v % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            all.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
    }

    /// Histogram quantiles track exact quantiles within bucket error.
    #[test]
    fn prop_quantile_accuracy() {
        testkit::check(64, |g| {
            let mut vals = g.vec(10..300, |g| g.u64_in(1..10_000_000));
            let q = g.f64_in(0.01..1.0);
            let mut h = LatencyHistogram::new();
            for &v in &vals {
                h.record(SimDuration::from_nanos(v));
            }
            vals.sort_unstable();
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1] as f64;
            let approx = h.quantile(q).as_nanos() as f64;
            // Bucket resolution: 1/32 per octave, halved by the midpoint
            // representative ⇒ ≤ ~1.6 % plus rank-boundary effects.
            assert!(
                (approx - exact).abs() / exact < 0.04,
                "q={q} exact={exact} approx={approx}"
            );
        });
    }

    /// Quantiles are monotone.
    #[test]
    fn prop_quantiles_monotone() {
        testkit::check(64, |g| {
            let vals = g.vec(2..200, |g| g.u64_in(1..1_000_000));
            let mut h = LatencyHistogram::new();
            for &v in &vals {
                h.record(SimDuration::from_nanos(v));
            }
            let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            for w in qs.windows(2) {
                assert!(h.quantile(w[0]) <= h.quantile(w[1]));
            }
        });
    }
}
