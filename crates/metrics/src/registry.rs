//! Always-on metrics registry with a cheap concurrent recording path.
//!
//! The registry is the process-wide (or gateway-wide) home for named
//! [`Counter`]s, [`Gauge`]s, latency [`SharedHistogram`]s, per-scope
//! [`StageSet`]s, and sampled [`TimeSeries`]. Recording is designed for the
//! `ShardedGateway` worker threads: counters and gauges are single relaxed
//! atomics; histograms and stage sets are striped by thread so concurrent
//! recorders land on different locks. Hot-path callers obtain their `Arc`
//! handles once (get-or-create by name) and record through the handle —
//! no per-request name lookup or allocation.
//!
//! Stripes materialize lazily: a scope touched by one thread allocates one
//! stripe's histograms, not all of them, which keeps a registry with
//! hundreds of per-function/per-key scopes small.

use crate::histogram::LatencyHistogram;
use crate::stage::{Stage, StageSample, N_STAGES};
use crate::timeseries::TimeSeries;
use simclock::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use stdshim::{Mutex, RwLock};

/// Lock stripes per histogram/stage-set. Worker threads hash onto stripes,
/// so up to this many threads record without contending. Sized to the
/// widest contention point the bench suite drives (32 gateway threads);
/// stripes are lazily allocated, so idle width costs one pointer each.
const N_STRIPES: usize = 32;

/// Monotone per-thread stripe assignment: the first time a thread records,
/// it claims the next stripe index round-robin and keeps it for life.
fn thread_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    STRIPE.with(|s| *s) % N_STRIPES
}

/// One lazily created stripe, padded to its own cache-line pair. Without the
/// alignment, adjacent stripes' lock words (and the histogram headers mutated
/// on every record) share cache lines, and concurrent recorders on *distinct*
/// stripes still ping-pong those lines between cores (false sharing).
#[repr(align(128))]
#[derive(Debug, Default)]
struct Stripe<T>(OnceLock<Mutex<T>>);

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the counter. For gateways that already tally requests in
    /// an existing atomic: mirroring that tally into the registry at read
    /// time costs one store here instead of a second contended
    /// read-modify-write per request on the hot path.
    pub fn store(&self, v: u64) {
        // lint:allow(atomic-ordering, monotonic tally mirror; the counter word is the whole payload)
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (stored as `f64` bits in one atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        // lint:allow(atomic-ordering, last-value-wins gauge; the f64 bits are the whole payload)
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A latency histogram recordable from many threads: [`N_STRIPES`] lazily
/// allocated [`LatencyHistogram`] stripes, merged on read.
#[derive(Debug, Default)]
pub struct SharedHistogram {
    stripes: [Stripe<LatencyHistogram>; N_STRIPES],
}

impl SharedHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample into the calling thread's stripe.
    pub fn record(&self, latency: SimDuration) {
        let _scope = stdshim::request_path_scope();
        let stripe = self.stripes[thread_stripe()]
            .0
            .get_or_init(|| Mutex::labeled(LatencyHistogram::new(), "metrics/stripe"));
        stripe.lock().record(latency);
    }

    /// Merges all stripes into one histogram.
    pub fn merged(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for stripe in &self.stripes {
            if let Some(m) = stripe.0.get() {
                out.merge(&m.lock());
            }
        }
        out
    }

    /// Folds every sample recorded in `other` into this histogram (into
    /// stripe 0). A reduction-time operation for merging per-worker
    /// registries, not a hot path; `other` is read out fully before this
    /// histogram's stripe lock is taken, so no two stripe locks are ever
    /// held at once.
    pub fn absorb(&self, other: &SharedHistogram) {
        let merged = other.merged();
        let stripe = self.stripes[0]
            .0
            .get_or_init(|| Mutex::labeled(LatencyHistogram::new(), "metrics/stripe"));
        stripe.lock().merge(&merged);
    }
}

/// Per-scope stage histograms: one [`LatencyHistogram`] per [`Stage`] plus
/// one for the sample totals (the e2e distribution), striped like
/// [`SharedHistogram`]. Recording a [`StageSample`] takes one stripe lock
/// for all stages of the request — including its total, so a gateway gets
/// the e2e histogram for free instead of locking a second structure.
#[derive(Debug, Default)]
pub struct StageSet {
    stripes: [Stripe<Box<[LatencyHistogram; N_STAGES + 1]>>; N_STRIPES],
}

impl StageSet {
    /// An empty stage set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records every nonzero stage of `sample` into the calling thread's
    /// stripe (zero stages did not occur and are not counted), plus the
    /// sample total into the totals slot.
    pub fn record(&self, sample: &StageSample) {
        let _scope = stdshim::request_path_scope();
        let stripe = self.stripes[thread_stripe()].0.get_or_init(|| {
            Mutex::labeled(
                Box::new(std::array::from_fn(|_| LatencyHistogram::new())),
                "metrics/stripe",
            )
        });
        let mut hists = stripe.lock();
        let mut total = 0u64;
        for (i, &ns) in sample.nanos().iter().enumerate() {
            if ns > 0 {
                hists[i].record(SimDuration::from_nanos(ns));
                total += ns;
            }
        }
        hists[N_STAGES].record(SimDuration::from_nanos(total));
    }

    /// Merged histogram for one stage.
    pub fn merged(&self, stage: Stage) -> LatencyHistogram {
        self.merged_index(stage.index())
    }

    /// Merged histogram of the recorded sample totals (one per sample).
    pub fn merged_total(&self) -> LatencyHistogram {
        self.merged_index(N_STAGES)
    }

    fn merged_index(&self, index: usize) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for stripe in &self.stripes {
            if let Some(m) = stripe.0.get() {
                out.merge(&m.lock()[index]);
            }
        }
        out
    }

    /// Merged histograms for all stages, in [`Stage::ALL`] order.
    pub fn merged_all(&self) -> Vec<(Stage, LatencyHistogram)> {
        Stage::ALL.iter().map(|&s| (s, self.merged(s))).collect()
    }

    /// Folds every sample recorded in `other` into this stage set (into
    /// stripe 0), including the totals slot. Reduction-time only; `other`
    /// is read out fully before this set's stripe lock is taken.
    pub fn absorb(&self, other: &StageSet) {
        let merged: Vec<LatencyHistogram> = (0..=N_STAGES).map(|i| other.merged_index(i)).collect();
        let stripe = self.stripes[0].0.get_or_init(|| {
            Mutex::labeled(
                Box::new(std::array::from_fn(|_| LatencyHistogram::new())),
                "metrics/stripe",
            )
        });
        let mut hists = stripe.lock();
        for (slot, m) in hists.iter_mut().zip(merged.iter()) {
            slot.merge(m);
        }
    }
}

/// The named-metric registry.
///
/// ```
/// use metrics_lite::{MetricsRegistry, Stage, StageSample};
/// use simclock::{SimDuration, SimTime};
///
/// let reg = MetricsRegistry::new();
/// let requests = reg.counter("gateway/requests");
/// requests.incr();
///
/// let mut sample = StageSample::new();
/// sample.set(Stage::Exec, SimDuration::from_millis(5));
/// reg.stage_set("fn/demo").record(&sample);
/// reg.sample_series("pool/size", SimTime::from_secs(30), 3.0);
///
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("gateway/requests"), Some(1));
/// assert_eq!(snap.stage_count("fn/demo", Stage::Exec), 1);
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<SharedHistogram>>>,
    stages: RwLock<HashMap<String, Arc<StageSet>>>,
    series: Mutex<HashMap<String, TimeSeries>>,
    /// `(union scope, member prefix)`: at snapshot time the union scope's
    /// stage histograms are synthesized by merging every stage set whose
    /// scope starts with the prefix, so the hot path records each sample
    /// once instead of once per enclosing scope.
    stage_unions: Mutex<Vec<(String, String)>>,
    /// `(histogram name, member prefix)`: the named histogram is synthesized
    /// at snapshot time from the member stage sets' total distributions.
    histogram_unions: Mutex<Vec<(String, String)>>,
    /// `member scope → union scope`: each member stage set feeds exactly one
    /// named union scope, synthesized at snapshot time (e.g. every
    /// `fn/<name>` feeding its function's `key/<runtime-key>`). Reassigning
    /// a member moves its whole history to the new union.
    member_unions: Mutex<HashMap<String, String>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        // Snapshot paths hold the name-table locks across union and stripe
        // locks (always in that order); each field gets its own lock class
        // so the sanitizer sees those edges as distinct, acyclic orderings.
        MetricsRegistry {
            counters: RwLock::labeled(HashMap::new(), "metrics/counters"),
            gauges: RwLock::labeled(HashMap::new(), "metrics/gauges"),
            histograms: RwLock::labeled(HashMap::new(), "metrics/histograms"),
            stages: RwLock::labeled(HashMap::new(), "metrics/stages"),
            series: Mutex::labeled(HashMap::new(), "metrics/series"),
            stage_unions: Mutex::labeled(Vec::new(), "metrics/stage-unions"),
            histogram_unions: Mutex::labeled(Vec::new(), "metrics/histogram-unions"),
            member_unions: Mutex::labeled(HashMap::new(), "metrics/member-unions"),
        }
    }
}

/// Two-pointer merge of time series: points at equal instants sum (two
/// workers sampling the same quantity at the same tick), distinct instants
/// interleave in time order.
fn merge_series(a: &TimeSeries, b: &TimeSeries) -> TimeSeries {
    let (pa, pb) = (a.points(), b.points());
    let mut out = TimeSeries::new();
    let (mut i, mut j) = (0, 0);
    while i < pa.len() && j < pb.len() {
        let ((ta, va), (tb, vb)) = (pa[i], pb[j]);
        if ta == tb {
            out.push(ta, va + vb);
            i += 1;
            j += 1;
        } else if ta < tb {
            out.push(ta, va);
            i += 1;
        } else {
            out.push(tb, vb);
            j += 1;
        }
    }
    for &(t, v) in &pa[i..] {
        out.push(t, v);
    }
    for &(t, v) in &pb[j..] {
        out.push(t, v);
    }
    out
}

fn get_or_create<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().get(name) {
        return Arc::clone(v);
    }
    Arc::clone(
        map.write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create a counter. Cache the handle; don't look up per event.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Get-or-create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Get-or-create a latency histogram.
    pub fn histogram(&self, name: &str) -> Arc<SharedHistogram> {
        get_or_create(&self.histograms, name)
    }

    /// Get-or-create a per-scope stage set (scopes are conventionally
    /// `"all"`, `"fn/<function>"`, or `"key/<runtime-key>"`).
    pub fn stage_set(&self, scope: &str) -> Arc<StageSet> {
        get_or_create(&self.stages, scope)
    }

    /// Declares `scope` as the snapshot-time merge of every stage set whose
    /// scope starts with `member_prefix` (e.g. `"all"` over `"fn/"`).
    /// Recording into the member scopes then feeds the union for free;
    /// samples recorded directly into `scope` are merged in as well.
    pub fn stage_union(&self, scope: &str, member_prefix: &str) {
        let mut unions = self.stage_unions.lock();
        if !unions.iter().any(|(s, p)| s == scope && p == member_prefix) {
            unions.push((scope.to_string(), member_prefix.to_string()));
        }
    }

    /// Assigns `member_scope`'s stage set to feed the synthesized
    /// `union_scope` at snapshot time. A member feeds at most one union;
    /// assigning it again (e.g. a function re-registered under a different
    /// runtime key) moves its entire recorded history to the new union.
    pub fn stage_union_member(&self, union_scope: &str, member_scope: &str) {
        self.member_unions
            .lock()
            .insert(member_scope.to_string(), union_scope.to_string());
    }

    /// Declares the named histogram as the snapshot-time merge of the
    /// *total* distributions of every stage set whose scope starts with
    /// `member_prefix` (e.g. `"gateway/e2e"` over `"fn/"` — each request's
    /// stage sum is its e2e latency).
    pub fn histogram_union(&self, name: &str, member_prefix: &str) {
        let mut unions = self.histogram_unions.lock();
        if !unions.iter().any(|(n, p)| n == name && p == member_prefix) {
            unions.push((name.to_string(), member_prefix.to_string()));
        }
    }

    /// Folds every metric recorded in `other` into this registry: counters
    /// add, gauges sum, histograms and stage sets merge sample-for-sample,
    /// time series merge by timestamp (values at equal instants sum), and
    /// union declarations carry over (deduplicated, like re-declaring them).
    ///
    /// This is the deterministic reduction step for per-worker replay
    /// registries. Every fold is commutative and associative, union scopes
    /// are synthesized from the merged raw scopes at snapshot time (never
    /// absorbed pre-synthesized, which would double-count), and snapshots
    /// sort by name — so absorbing worker registries in any order yields
    /// the same snapshot. `other` is read out completely before any of this
    /// registry's locks are taken, so absorb never holds same-class locks
    /// from two registries at once.
    pub fn absorb(&self, other: &MetricsRegistry) {
        let counters = other.counters_snapshot();
        let gauges = other.gauges_snapshot();
        let histograms: Vec<(String, Arc<SharedHistogram>)> = {
            let map = other.histograms.read();
            let mut v: Vec<_> = map
                .iter()
                .map(|(k, h)| (k.clone(), Arc::clone(h)))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let stages: Vec<(String, Arc<StageSet>)> = {
            let map = other.stages.read();
            let mut v: Vec<_> = map
                .iter()
                .map(|(k, s)| (k.clone(), Arc::clone(s)))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let series_list = other.series_snapshot();
        let stage_unions = other.stage_unions.lock().clone();
        let histogram_unions = other.histogram_unions.lock().clone();
        let member_unions: Vec<(String, String)> = {
            let map = other.member_unions.lock();
            let mut v: Vec<_> = map.iter().map(|(m, s)| (m.clone(), s.clone())).collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };

        for (name, v) in counters {
            self.counter(&name).add(v);
        }
        for (name, v) in gauges {
            let g = self.gauge(&name);
            g.set(g.get() + v);
        }
        for (name, h) in histograms {
            self.histogram(&name).absorb(&h);
        }
        for (scope, set) in stages {
            self.stage_set(&scope).absorb(&set);
        }
        {
            let mut series = self.series.lock();
            for (name, other_ts) in series_list {
                let entry = series.entry(name).or_default();
                *entry = merge_series(entry, &other_ts);
            }
        }
        for (scope, prefix) in stage_unions {
            self.stage_union(&scope, &prefix);
        }
        for (name, prefix) in histogram_unions {
            self.histogram_union(&name, &prefix);
        }
        for (member, scope) in member_unions {
            self.stage_union_member(&scope, &member);
        }
    }

    /// Appends one sample to a named time series. Out-of-order samples (only
    /// possible when unrelated threads race on the same series) are dropped
    /// rather than panicking the series' ordering invariant.
    pub fn sample_series(&self, name: &str, at: SimTime, value: f64) {
        let mut series = self.series.lock();
        let ts = series.entry(name.to_string()).or_default();
        match ts.points().last() {
            Some(&(last, _)) if at < last => {}
            _ => ts.push(at, value),
        }
    }

    /// Snapshot of every named time series.
    pub fn series_snapshot(&self) -> Vec<(String, TimeSeries)> {
        let mut out: Vec<_> = self
            .series
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    pub(crate) fn counters_snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<_> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    pub(crate) fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        let mut out: Vec<_> = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    pub(crate) fn histograms_snapshot(&self) -> Vec<(String, LatencyHistogram)> {
        let mut out: HashMap<String, LatencyHistogram> = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.merged()))
            .collect();
        let stages = self.stages.read();
        for (name, prefix) in self.histogram_unions.lock().iter() {
            let mut merged = LatencyHistogram::new();
            for (scope, set) in stages.iter() {
                if scope.starts_with(prefix.as_str()) {
                    merged.merge(&set.merged_total());
                }
            }
            if let Some(existing) = out.get(name) {
                merged.merge(existing);
            }
            out.insert(name.clone(), merged);
        }
        let mut out: Vec<_> = out.into_iter().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    pub(crate) fn stages_snapshot(&self) -> Vec<(String, Vec<(Stage, LatencyHistogram)>)> {
        let stages = self.stages.read();
        let mut out: HashMap<String, Vec<(Stage, LatencyHistogram)>> = stages
            .iter()
            .map(|(k, v)| (k.clone(), v.merged_all()))
            .collect();
        for (scope, prefix) in self.stage_unions.lock().iter() {
            let mut merged: Vec<(Stage, LatencyHistogram)> = Stage::ALL
                .iter()
                .map(|&s| (s, LatencyHistogram::new()))
                .collect();
            for (member, set) in stages.iter() {
                if member.starts_with(prefix.as_str()) {
                    for (slot, (_, hist)) in merged.iter_mut().zip(set.merged_all()) {
                        slot.1.merge(&hist);
                    }
                }
            }
            if let Some(existing) = out.get(scope) {
                for (slot, (_, hist)) in merged.iter_mut().zip(existing.iter()) {
                    slot.1.merge(hist);
                }
            }
            out.insert(scope.clone(), merged);
        }
        for (member, scope) in self.member_unions.lock().iter() {
            let Some(set) = stages.get(member) else {
                continue; // assigned but never recorded into
            };
            let entry = out.entry(scope.clone()).or_insert_with(|| {
                Stage::ALL
                    .iter()
                    .map(|&s| (s, LatencyHistogram::new()))
                    .collect()
            });
            for (slot, (_, hist)) in entry.iter_mut().zip(set.merged_all()) {
                slot.1.merge(&hist);
            }
        }
        let mut out: Vec<_> = out.into_iter().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stdshim::ToJson;

    #[test]
    fn counters_and_gauges_are_named_and_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.incr();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.counter("y").get(), 0);

        reg.gauge("g").set(2.5);
        assert_eq!(reg.gauge("g").get(), 2.5);
    }

    #[test]
    fn shared_histogram_merges_stripes() {
        let h = SharedHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..100u64 {
                        h.record(SimDuration::from_micros(t * 100 + i + 1));
                    }
                });
            }
        });
        let merged = h.merged();
        assert_eq!(merged.count(), 400);
        assert_eq!(merged.min(), SimDuration::from_micros(1));
        assert_eq!(merged.max(), SimDuration::from_micros(400));
    }

    #[test]
    fn stage_set_skips_zero_stages() {
        let set = StageSet::new();
        let mut sample = StageSample::new();
        sample.set(Stage::Exec, SimDuration::from_millis(2));
        set.record(&sample);
        assert_eq!(set.merged(Stage::Exec).count(), 1);
        assert_eq!(set.merged(Stage::ImagePull).count(), 0);
    }

    /// Property: recording a value set concurrently through the striped
    /// histogram yields exactly the same distribution as recording it
    /// single-threaded into one histogram — striping must not lose, double,
    /// or distort samples.
    #[test]
    fn prop_striped_recording_equals_single_threaded() {
        testkit::check(16, |g| {
            let vals = g.vec(1..400, |g| g.u64_in(1..100_000_000));
            let threads = 1 + (g.u64_in(1..8) as usize);

            let mut reference = LatencyHistogram::new();
            for &v in &vals {
                reference.record(SimDuration::from_nanos(v));
            }

            let shared = SharedHistogram::new();
            std::thread::scope(|s| {
                for chunk in vals.chunks(vals.len().div_ceil(threads)) {
                    let shared = &shared;
                    s.spawn(move || {
                        for &v in chunk {
                            shared.record(SimDuration::from_nanos(v));
                        }
                    });
                }
            });
            let merged = shared.merged();
            assert_eq!(merged.count(), reference.count());
            assert_eq!(merged.sum_ns(), reference.sum_ns());
            assert_eq!(merged.min(), reference.min());
            assert_eq!(merged.max(), reference.max());
            for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(merged.quantile(q), reference.quantile(q), "q={q}");
            }
        });
    }

    /// Same property for stage sets: per-stage merged histograms equal
    /// single-threaded recording of the same samples.
    #[test]
    fn prop_stage_set_striping_preserves_samples() {
        testkit::check(16, |g| {
            let samples: Vec<StageSample> = g.vec(1..100, |g| {
                let mut s = StageSample::new();
                s.set(Stage::Exec, SimDuration::from_nanos(g.u64_in(1..1_000_000)));
                if g.u64_in(0..2) == 0 {
                    s.set(
                        Stage::RuntimeInit,
                        SimDuration::from_nanos(g.u64_in(1..1_000_000)),
                    );
                }
                s
            });
            let set = StageSet::new();
            std::thread::scope(|s| {
                for chunk in samples.chunks(samples.len().div_ceil(4)) {
                    let set = &set;
                    s.spawn(move || {
                        for sample in chunk {
                            set.record(sample);
                        }
                    });
                }
            });
            let mut exec_ref = LatencyHistogram::new();
            let mut init_ref = LatencyHistogram::new();
            for s in &samples {
                exec_ref.record(s.get(Stage::Exec));
                if !s.get(Stage::RuntimeInit).is_zero() {
                    init_ref.record(s.get(Stage::RuntimeInit));
                }
            }
            assert_eq!(set.merged(Stage::Exec).count(), exec_ref.count());
            assert_eq!(set.merged(Stage::Exec).sum_ns(), exec_ref.sum_ns());
            assert_eq!(set.merged(Stage::RuntimeInit).count(), init_ref.count());
            assert_eq!(set.merged(Stage::RuntimeInit).sum_ns(), init_ref.sum_ns());
        });
    }

    #[test]
    fn unions_synthesize_scopes_at_snapshot_time() {
        let reg = MetricsRegistry::new();
        reg.stage_union("all", "fn/");
        reg.histogram_union("gateway/e2e", "fn/");
        reg.stage_union_member("key/go", "fn/a");
        reg.stage_union_member("key/go", "fn/b");

        let mut a = StageSample::new();
        a.set(Stage::Exec, SimDuration::from_millis(2));
        a.set(Stage::RuntimeInit, SimDuration::from_millis(1));
        reg.stage_set("fn/a").record(&a);
        let mut b = StageSample::new();
        b.set(Stage::Exec, SimDuration::from_millis(3));
        reg.stage_set("fn/b").record(&b);

        let snap = reg.snapshot();
        // Prefix union: `all` is the merge of both fn scopes.
        assert_eq!(snap.stage_count("all", Stage::Exec), 2);
        assert_eq!(snap.stage_count("all", Stage::RuntimeInit), 1);
        assert_eq!(
            snap.scope_total_ns("all"),
            SimDuration::from_millis(6).as_nanos()
        );
        // Member union: both functions share the `key/go` runtime key.
        assert_eq!(snap.stage_count("key/go", Stage::Exec), 2);
        assert_eq!(
            snap.stage_sum_ns("key/go", Stage::Exec),
            SimDuration::from_millis(5).as_nanos()
        );
        // Histogram union: e2e is the per-sample total distribution.
        let e2e = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "gateway/e2e")
            .map(|(_, h)| h)
            .expect("synthesized e2e histogram");
        assert_eq!(e2e.count, 2);
        assert_eq!(e2e.sum_ns, SimDuration::from_millis(6).as_nanos());
        assert_eq!(e2e.max_ns, SimDuration::from_millis(3).as_nanos());

        // Reassigning a member moves its history to the new union scope.
        reg.stage_union_member("key/py", "fn/b");
        let snap = reg.snapshot();
        assert_eq!(snap.stage_count("key/go", Stage::Exec), 1);
        assert_eq!(snap.stage_count("key/py", Stage::Exec), 1);
    }

    /// Absorbing per-worker registries reproduces the snapshot of one
    /// registry that recorded everything itself — the property the parallel
    /// replay reduction depends on.
    #[test]
    fn absorb_equals_single_registry_recording() {
        let combined = MetricsRegistry::new();
        let workers: Vec<MetricsRegistry> = (0..3).map(|_| MetricsRegistry::new()).collect();
        for reg in workers.iter().chain([&combined]) {
            reg.stage_union("all", "fn/");
            reg.histogram_union("gateway/e2e", "fn/");
        }

        // Worker w records fn/w-scoped samples plus shared counters/series.
        for (w, reg) in workers.iter().enumerate() {
            reg.counter("gateway/requests").add(10 + w as u64);
            reg.gauge("load").set(0.5);
            let mut s = StageSample::new();
            s.set(Stage::Exec, SimDuration::from_millis(1 + w as u64));
            let scope = format!("fn/{w}");
            reg.stage_set(&scope).record(&s);
            reg.stage_union_member("key/k", &scope);
            reg.histogram("lat")
                .record(SimDuration::from_micros(7 * (w as u64 + 1)));
            reg.sample_series("pool/live", SimTime::from_secs(30), w as f64);
            reg.sample_series("pool/live", SimTime::from_secs(60), 1.0);

            combined.counter("gateway/requests").add(10 + w as u64);
            let g = combined.gauge("load");
            g.set(g.get() + 0.5);
            combined.stage_set(&scope).record(&s);
            combined.stage_union_member("key/k", &scope);
            combined
                .histogram("lat")
                .record(SimDuration::from_micros(7 * (w as u64 + 1)));
        }
        combined.sample_series("pool/live", SimTime::from_secs(30), 0.0 + 1.0 + 2.0);
        combined.sample_series("pool/live", SimTime::from_secs(60), 3.0);

        let target = MetricsRegistry::new();
        for w in &workers {
            target.absorb(w);
        }
        assert_eq!(
            target.snapshot().to_json().to_pretty_string(),
            combined.snapshot().to_json().to_pretty_string()
        );
    }

    #[test]
    fn absorb_merges_series_at_distinct_instants() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.sample_series("s", SimTime::from_secs(10), 1.0);
        a.sample_series("s", SimTime::from_secs(30), 2.0);
        b.sample_series("s", SimTime::from_secs(20), 5.0);
        b.sample_series("s", SimTime::from_secs(30), 7.0);
        a.absorb(&b);
        let series = a.series_snapshot();
        assert_eq!(
            series[0].1.points(),
            &[
                (SimTime::from_secs(10), 1.0),
                (SimTime::from_secs(20), 5.0),
                (SimTime::from_secs(30), 9.0),
            ]
        );
    }

    #[test]
    fn series_drop_out_of_order() {
        let reg = MetricsRegistry::new();
        reg.sample_series("s", SimTime::from_secs(10), 1.0);
        reg.sample_series("s", SimTime::from_secs(5), 2.0); // dropped
        reg.sample_series("s", SimTime::from_secs(20), 3.0);
        let series = reg.series_snapshot();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].1.len(), 2);
    }
}
