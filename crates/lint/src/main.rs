//! `hotc-lint` — the workspace conformance analyzer.
//!
//! Scans every `.rs` and `Cargo.toml` file in the workspace (excluding
//! `target/` and dot-directories) and enforces the determinism and
//! concurrency rules documented in DESIGN.md §7. Deny by default: any
//! violation exits 1; the only escape is a reasoned
//! `// lint:allow(rule, reason)` on or directly above the offending line.
//!
//! Usage: `cargo run -p hotc-lint` (from anywhere in the workspace), or
//! `hotc-lint [workspace-root]`.

mod rules;
mod scan;

use std::path::{Path, PathBuf};

/// Recursively collects `.rs` and `Cargo.toml` files, skipping build output
/// and VCS/tooling directories.
fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("dir entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_files(&path, out)?;
            }
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root: an explicit CLI argument, or two levels up from this
/// crate's manifest directory (`crates/lint` → workspace).
fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn run() -> i32 {
    let root = workspace_root();
    let mut files = Vec::new();
    if let Err(e) = collect_files(&root, &mut files) {
        eprintln!("hotc-lint: {e}");
        return 2;
    }
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("hotc-lint: read {rel}: {e}");
                return 2;
            }
        };
        scanned += 1;
        if rel.ends_with("Cargo.toml") {
            violations.extend(rules::check_manifest(&rel, &src));
        } else {
            violations.extend(rules::check_rust_file(&rel, &src));
        }
    }

    if violations.is_empty() {
        println!("hotc-lint: clean ({scanned} files)");
        return 0;
    }
    for v in &violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.msg);
    }
    eprintln!(
        "hotc-lint: {} violation(s) in {} file(s) scanned — fix, or annotate with \
         `// lint:allow(rule, reason)` (see DESIGN.md §7)",
        violations.len(),
        scanned
    );
    1
}

fn main() {
    std::process::exit(run());
}
