//! Container configuration and lifecycle state.
//!
//! §IV-B: HotC's parameter analysis covers "container images, network
//! configuration, UTS (UNIX Time Sharing) settings, IPC (Inter Process
//! Communication) settings, execution options, etc." — those are exactly the
//! fields of [`ContainerConfig`]. The lifecycle follows Docker's FSM with an
//! extra `Idle` state for a live-but-not-executing container (what HotC keeps
//! in its pool).

use crate::image::ImageId;
use crate::network::NetworkConfig;
use std::collections::BTreeMap;

/// Identifier of a container instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

impl std::fmt::Display for ContainerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctr-{:08x}", self.0)
    }
}

/// UTS namespace setting.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum UtsMode {
    /// Private UTS namespace with a generated hostname.
    #[default]
    Private,
    /// Private namespace with an explicit hostname.
    Hostname(String),
    /// Share the host's UTS namespace.
    Host,
}

/// IPC namespace setting.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum IpcMode {
    /// Private IPC namespace.
    #[default]
    Private,
    /// Share the host IPC namespace.
    Host,
    /// Shareable namespace other containers may join.
    Shareable,
}

/// Execution options (the `docker run` flags that shape the runtime).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ExecOptions {
    /// CPU shares limit in milli-cores (0 = unlimited).
    pub cpu_millis: u32,
    /// Memory limit in bytes (0 = unlimited).
    pub mem_limit_bytes: u64,
    /// Environment variables (sorted map ⇒ canonical).
    pub env: BTreeMap<String, String>,
    /// Whether the container runs privileged.
    pub privileged: bool,
    /// Entry command override, if any.
    pub command: Option<String>,
}

impl ExecOptions {
    /// Adds an environment variable (builder style).
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.insert(key.into(), value.into());
        self
    }

    /// Sets a memory limit (builder style).
    pub fn with_mem_limit(mut self, bytes: u64) -> Self {
        self.mem_limit_bytes = bytes;
        self
    }

    /// Sets a CPU limit in milli-cores (builder style).
    pub fn with_cpu_millis(mut self, millis: u32) -> Self {
        self.cpu_millis = millis;
        self
    }
}

/// The complete parameter configuration of a container runtime — the unit of
/// identity for HotC's reuse decisions ("HotC treats containers with
/// identical parameter configurations as the same type of runtime
/// environment").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContainerConfig {
    /// The image to instantiate.
    pub image: ImageId,
    /// Network configuration.
    pub network: NetworkConfig,
    /// UTS namespace setting.
    pub uts: UtsMode,
    /// IPC namespace setting.
    pub ipc: IpcMode,
    /// Execution options.
    pub exec: ExecOptions,
}

impl ContainerConfig {
    /// A bridge-networked container of the given image with defaults
    /// everywhere else — the common case in the paper's experiments.
    pub fn bridge(image: ImageId) -> Self {
        ContainerConfig {
            image,
            network: NetworkConfig::single(crate::network::NetworkMode::Bridge),
            uts: UtsMode::default(),
            ipc: IpcMode::default(),
            exec: ExecOptions::default(),
        }
    }

    /// Same, with an explicit network configuration.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Sets exec options (builder style).
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Validates the configuration (delegates to the parts).
    pub fn validate(&self) -> Result<(), String> {
        self.network.validate()
    }
}

/// Lifecycle state of a container instance.
///
/// HotC's pool views map onto this FSM (paper Fig. 7): `Idle` is
/// *Existing-Available (1)*, `Running` is *Existing-Not-Available (0)*, and a
/// removed/never-created runtime is *Not-Existing (-1)*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerState {
    /// Created but never started (resources allocated, no process).
    Created,
    /// Executing a function/application right now.
    Running,
    /// Alive with no foreground work — reusable.
    Idle,
    /// Stopped; volume unmounted; awaiting removal.
    Stopped,
    /// Gone.
    Removed,
}

impl ContainerState {
    /// Whether the transition `self → next` is legal.
    pub fn can_transition_to(self, next: ContainerState) -> bool {
        use ContainerState::*;
        matches!(
            (self, next),
            (Created, Running)
                | (Created, Idle)
                | (Created, Stopped)
                | (Running, Idle)
                | (Running, Stopped)
                | (Idle, Running)
                | (Idle, Stopped)
                | (Stopped, Removed)
        )
    }

    /// The pool-view encoding used in the paper: -1 Not-Existing, 0
    /// Existing-Not-Available, 1 Existing-Available.
    pub fn pool_code(self) -> i8 {
        match self {
            ContainerState::Idle => 1,
            ContainerState::Created | ContainerState::Running | ContainerState::Stopped => 0,
            ContainerState::Removed => -1,
        }
    }
}

impl stdshim::ToJson for ContainerId {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::ToJson::to_json(&self.0)
    }
}

impl stdshim::ToJson for ContainerState {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::Str(
            match self {
                ContainerState::Created => "created",
                ContainerState::Running => "running",
                ContainerState::Idle => "idle",
                ContainerState::Stopped => "stopped",
                ContainerState::Removed => "removed",
            }
            .to_string(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetworkConfig, NetworkMode};

    fn img() -> ImageId {
        ImageId::parse("python:3.8-alpine")
    }

    #[test]
    fn identical_configs_are_equal_and_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = ContainerConfig::bridge(img())
            .with_exec(ExecOptions::default().with_env("A", "1").with_env("B", "2"));
        let b = ContainerConfig::bridge(img())
            .with_exec(ExecOptions::default().with_env("B", "2").with_env("A", "1"));
        assert_eq!(a, b);
        let h = |c: &ContainerConfig| {
            let mut s = DefaultHasher::new();
            c.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn different_network_means_different_config() {
        let a = ContainerConfig::bridge(img());
        let b = a
            .clone()
            .with_network(NetworkConfig::single(NetworkMode::Host));
        assert_ne!(a, b);
    }

    #[test]
    fn lifecycle_transitions() {
        use ContainerState::*;
        assert!(Created.can_transition_to(Running));
        assert!(Running.can_transition_to(Idle));
        assert!(Idle.can_transition_to(Running));
        assert!(Idle.can_transition_to(Stopped));
        assert!(Stopped.can_transition_to(Removed));
        // Illegal moves.
        assert!(!Removed.can_transition_to(Running));
        assert!(!Stopped.can_transition_to(Running));
        assert!(!Running.can_transition_to(Created));
        assert!(!Idle.can_transition_to(Removed));
    }

    #[test]
    fn pool_codes_match_fig7() {
        assert_eq!(ContainerState::Idle.pool_code(), 1);
        assert_eq!(ContainerState::Running.pool_code(), 0);
        assert_eq!(ContainerState::Removed.pool_code(), -1);
    }

    #[test]
    fn config_validation_delegates_to_network() {
        let bad = ContainerConfig::bridge(img())
            .with_network(NetworkConfig::single(NetworkMode::Overlay));
        assert!(bad.validate().is_err());
        assert!(ContainerConfig::bridge(img()).validate().is_ok());
    }

    #[test]
    fn exec_builder_sets_fields() {
        let e = ExecOptions::default()
            .with_cpu_millis(500)
            .with_mem_limit(1 << 30)
            .with_env("K", "V");
        assert_eq!(e.cpu_millis, 500);
        assert_eq!(e.mem_limit_bytes, 1 << 30);
        assert_eq!(e.env.get("K").map(String::as_str), Some("V"));
    }
}
