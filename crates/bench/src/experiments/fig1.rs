//! Figure 1: cold-start latency pattern and long-tail CDF.
//!
//! The paper's setup (§I): a client sends one request per second for ten
//! seconds, waits 30 minutes, and repeats; the backend generates a random
//! number. The keep-alive window is shorter than the idle gap, so the first
//! request of every batch is a cold start — the highest latency in the batch
//! (paper: +41.8 % over the lowest on AWS Lambda). Fig. 1(b) contrasts the
//! serverless latency CDF's long tail with a local function's flat CDF.
//!
//! Our substrate is a full container cold start (OpenFaaS-like), so the
//! cold/warm gap is larger than Lambda's pre-provisioned microVMs — the same
//! relationship the paper's own Fig. 9 shows for OpenFaaS. EXPERIMENTS.md
//! records both numbers.

use crate::driver::run_workload;
use crate::experiments::server_gateway;
use faas::policy::FixedKeepAlive;
use faas::AppProfile;
use metrics_lite::{Cdf, LatencyRecorder};
use simclock::{SimDuration, SimTime};
use workloads::Arrival;

/// Result of the Fig. 1 experiment.
pub struct Fig1Result {
    /// Per-request latency, batch-major (batches × 10 requests).
    pub latencies: Vec<SimDuration>,
    /// Number of batches.
    pub batches: usize,
    /// Requests per batch.
    pub per_batch: usize,
    /// Highest-over-lowest latency excess, percent (paper: 41.8 %).
    pub high_over_low_pct: f64,
    /// Highest-over-average latency excess, percent (paper: 31.7 %).
    pub high_over_avg_pct: f64,
    /// Serverless latency CDF (Fig. 1(b), long tail).
    pub serverless_cdf: Cdf,
    /// Local-function latency CDF (flat).
    pub local_cdf: Cdf,
    /// p99/p50 tail ratio, serverless.
    pub serverless_tail_ratio: f64,
    /// p99/p50 tail ratio, local function.
    pub local_tail_ratio: f64,
}

/// Runs the experiment: `batches` batches of `per_batch` 1 Hz requests with
/// 30-minute gaps, against a 15-minute keep-alive backend.
pub fn run(batches: usize, per_batch: usize) -> Fig1Result {
    let mut workload: Vec<Arrival> = Vec::new();
    let gap = SimDuration::from_mins(30);
    let batch_span = SimDuration::from_secs(per_batch as u64);
    for b in 0..batches {
        let start = SimTime::ZERO + (gap + batch_span) * b as u64;
        for i in 0..per_batch {
            workload.push(Arrival {
                at: start + SimDuration::from_secs(i as u64),
                config_id: 0,
            });
        }
    }

    let gw = server_gateway(
        FixedKeepAlive::aws_default(),
        &[AppProfile::random_number()],
    );
    let out = run_workload(
        gw,
        &workload,
        |_| "random-number".to_string(),
        SimDuration::from_secs(60),
    );

    let mut recorder = LatencyRecorder::new();
    for t in &out.traces {
        recorder.record(t.total());
    }
    let low = recorder.min().as_secs_f64();
    let high = recorder.max().as_secs_f64();
    let avg = recorder.mean().as_secs_f64();

    // "Local function": the same handler invoked in-process — execution time
    // only, no gateway, no container. Model as the function's steady compute.
    let local_samples: Vec<SimDuration> = (0..recorder.count())
        .map(|i| SimDuration::from_micros(5000 + (i as u64 % 7) * 30))
        .collect();
    let local_cdf = Cdf::from_samples(&local_samples);
    let mut local_rec = LatencyRecorder::new();
    for &s in &local_samples {
        local_rec.record(s);
    }

    Fig1Result {
        latencies: recorder.samples().to_vec(),
        batches,
        per_batch,
        high_over_low_pct: (high / low - 1.0) * 100.0,
        high_over_avg_pct: (high / avg - 1.0) * 100.0,
        serverless_cdf: Cdf::from_samples(recorder.samples()),
        local_cdf,
        serverless_tail_ratio: recorder.tail_ratio(),
        local_tail_ratio: local_rec.tail_ratio(),
    }
}

impl Fig1Result {
    /// Whether, in every batch, the first request has the batch's highest
    /// latency (the paper's observation).
    pub fn first_is_always_slowest(&self) -> bool {
        self.latencies
            .chunks(self.per_batch)
            .all(|batch| batch.iter().skip(1).all(|&l| l < batch[0]))
    }

    /// Text rendering for the harness.
    pub fn render(&self) -> String {
        use metrics_lite::Table;
        let mut table = Table::new(
            "Fig 1(a): request latency to a keep-alive FaaS backend (first of each batch is cold)",
            &["batch", "req", "latency_ms", "cold"],
        );
        for (i, &lat) in self.latencies.iter().enumerate() {
            let batch = i / self.per_batch;
            let idx = i % self.per_batch;
            table.row(&[
                batch.to_string(),
                idx.to_string(),
                format!("{:.1}", lat.as_millis_f64()),
                (idx == 0).to_string(),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "\nhighest vs lowest: +{:.1}%   highest vs average: +{:.1}%  (paper: +41.8% / +31.7% on AWS Lambda)\n",
            self.high_over_low_pct, self.high_over_avg_pct
        ));
        out.push_str(&format!(
            "\nFig 1(b): tail ratio p99/p50 — serverless {:.1}x vs local {:.2}x\n",
            self.serverless_tail_ratio, self.local_tail_ratio
        ));
        let mut cdf_table = Table::new(
            "Fig 1(b): latency CDF",
            &["quantile", "serverless_ms", "local_ms"],
        );
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00] {
            cdf_table.row(&[
                format!("{q:.2}"),
                format!("{:.1}", self.serverless_cdf.quantile(q).as_millis_f64()),
                format!("{:.2}", self.local_cdf.quantile(q).as_millis_f64()),
            ]);
        }
        out.push_str(&cdf_table.render());
        out
    }
}
