//! `hotc-lint` — the workspace conformance analyzer, as a library.
//!
//! The binary (`cargo run -p hotc-lint`) is a thin wrapper over
//! [`lint_workspace`]; the fixture corpus under `tests/fixtures/` drives
//! [`rules::check_rust_file`] / [`rules::check_manifest`] directly against
//! files with known expected violations. Deny by default: any violation
//! exits 1; the only escape is a reasoned `// lint:allow(rule, reason)` on
//! or directly above the offending line.

#![warn(missing_docs)]

pub mod rules;
pub mod scan;

use rules::Violation;
use std::path::{Path, PathBuf};
use stdshim::{JsonValue, ToJson};

/// The result of linting a workspace tree.
#[derive(Debug)]
pub struct Outcome {
    /// Every violation found, in path order.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub scanned: usize,
}

impl Outcome {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl ToJson for Violation {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("file", self.file.to_json()),
            ("line", self.line.to_json()),
            ("rule", self.rule.to_json()),
            ("message", self.msg.to_json()),
        ])
    }
}

impl ToJson for Outcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("clean", self.is_clean().to_json()),
            ("files_scanned", self.scanned.to_json()),
            ("violations", self.violations.to_json()),
        ])
    }
}

/// Recursively collects `.rs` and `Cargo.toml` files, skipping build output,
/// VCS/tooling directories, and lint fixture corpora (`tests/fixtures/`
/// holds files with *deliberate* violations driven by their own test).
pub fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("dir entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            let fixture_corpus =
                name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests");
            if name != "target" && !name.starts_with('.') && !fixture_corpus {
                collect_files(&path, out)?;
            }
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root: an explicit path, or two levels up from this crate's
/// manifest directory (`crates/lint` → workspace).
pub fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Lints every collected file under `root`. Errors are I/O problems, not
/// violations.
pub fn lint_workspace(root: &Path) -> Result<Outcome, String> {
    let mut files = Vec::new();
    collect_files(root, &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("read {rel}: {e}"))?;
        scanned += 1;
        if rel.ends_with("Cargo.toml") {
            violations.extend(rules::check_manifest(&rel, &src));
        } else {
            violations.extend(rules::check_rust_file(&rel, &src));
        }
    }
    Ok(Outcome {
        violations,
        scanned,
    })
}
