#!/usr/bin/env bash
# Single local entry point for everything CI runs. Usage: ci/check.sh
#
# The whole suite is offline by design: every dependency is a path dep into
# this repository (enforced by tests/hermetic.rs), so `--offline` both proves
# the hermeticity claim and keeps the script runnable on an air-gapped box.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

# 1. Hermeticity: the dependency graph resolves without any network access.
run cargo metadata --offline --format-version 1 >/dev/null

# 2. Format and lints.
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings

# 3. Repo-specific conformance analyzer: determinism and concurrency rules
#    clippy cannot express (wall-clock, raw locks, hash-order iteration,
#    unwrap on the request path, hermetic manifests). Deny by default;
#    escapes need `// lint:allow(rule, reason)`.
run cargo run --offline -q -p hotc-lint

# 4. Tier-1: release build + full test suite, offline.
run cargo build --release --offline
run cargo test -q --offline

# 5. Perf smoke: every bench suite in --smoke mode, accumulating one
#    JSON-Lines record per suite into BENCH_ci.json (the CI perf artifact).
export BENCH_OUT_DIR="$PWD"
rm -f "$BENCH_OUT_DIR/BENCH_ci.json"
# --benches keeps cargo from also running the crate's libtest unit-test
# target, which would reject the custom --smoke flag.
run cargo bench --offline -p hotc-bench --benches -- --smoke

echo
echo "==> BENCH_ci.json:"
test -s "$BENCH_OUT_DIR/BENCH_ci.json"
# Shape check: one JSON object per suite, all seven suites present.
for suite in cluster contention controller_tick pipeline pool predictor simkernel; do
    grep -q "\"suite\":\"$suite\"" "$BENCH_OUT_DIR/BENCH_ci.json" \
        || { echo "missing suite '$suite' in BENCH_ci.json" >&2; exit 1; }
done
# The contention suite must record both sides of the sharded-vs-global-lock
# comparison, so the perf trajectory captures the speedup over time.
for name in shared_gateway/8_threads sharded_gateway/8_threads; do
    grep -q "\"$name\"" "$BENCH_OUT_DIR/BENCH_ci.json" \
        || { echo "missing bench '$name' in BENCH_ci.json" >&2; exit 1; }
done
wc -l "$BENCH_OUT_DIR/BENCH_ci.json"
# mean_of <suite> <bench-name>: pull one mean_ns out of the JSON-Lines
# artifact. Bench names contain slashes, so sed delimits with `|`.
mean_of() {
    grep "\"suite\":\"$1\"" "$BENCH_OUT_DIR/BENCH_ci.json" \
        | sed -e "s|.*\"name\":\"$2\",\"mean_ns\":||" -e 's|,.*||'
}
# gate_below <label> <value_ns> <limit_ns>: fail when the record missed the
# performance target (or was not recorded at all).
gate_below() {
    awk -v v="$2" -v lim="$3" 'BEGIN { exit !(v + 0 > 0 && v + 0 < lim + 0) }' \
        || { echo "$1 = '$2' ns is not under the $3 ns gate" >&2; exit 1; }
}

# Contention parity: the sanitizer instrumentation (PR 4) must not erase the
# sharding speedup. Release builds compile the sanitizer out entirely, so the
# sharded gateway at 8 threads must still beat the single-lock gateway.
shared_mean="$(mean_of contention shared_gateway/8_threads)"
sharded_mean="$(mean_of contention sharded_gateway/8_threads)"
echo "contention 8_threads mean_ns: shared=$shared_mean sharded=$sharded_mean"
awk -v a="$sharded_mean" -v b="$shared_mean" \
    'BEGIN { exit !(a + 0 > 0 && b + 0 > 0 && a < b) }' \
    || { echo "sharded_gateway/8_threads ($sharded_mean ns) is not faster than shared_gateway/8_threads ($shared_mean ns)" >&2; exit 1; }

# Perf gates against the PR 4 BENCH_ci.json records (see that file's git
# history). Thresholds leave headroom for single-core CI noise while still
# pinning the O(changed) control-plane wins of PR 5:
#  - hotc_tick_100_types: ≥5x over the PR 4 record of 1234531 ns;
#  - sharded_gateway/8_threads: no regression vs 690046 ns (1.25x headroom);
#  - acquire_exec_release_reuse: parity vs 1411 ns (1.25x headroom);
#  - reuse_among_100_types: the per-request keying cost that scaled with
#    type count collapsed from the PR 4 record of 1849 ns.
tick_mean="$(mean_of pipeline hotc_tick_100_types)"
acquire_mean="$(mean_of pool acquire_exec_release_reuse)"
reuse100_mean="$(mean_of pool reuse_among_100_types)"
echo "perf gates: tick=$tick_mean acquire=$acquire_mean reuse100=$reuse100_mean"
gate_below "pipeline/hotc_tick_100_types" "$tick_mean" 246906
gate_below "contention/sharded_gateway/8_threads" "$sharded_mean" 862557
gate_below "pool/acquire_exec_release_reuse" "$acquire_mean" 1764
gate_below "pool/reuse_among_100_types" "$reuse100_mean" 1400

# The dirty-set tick must stay cheaper than the full sweep at 1000 types —
# the controller's whole point is O(active types), not O(tracked types).
dirty_mean="$(mean_of controller_tick dirty_1000types)"
full_mean="$(mean_of controller_tick full_sweep_1000types)"
echo "controller_tick 1000types mean_ns: dirty=$dirty_mean full=$full_mean"
awk -v a="$dirty_mean" -v b="$full_mean" \
    'BEGIN { exit !(a + 0 > 0 && b + 0 > 0 && a < b) }' \
    || { echo "dirty_1000types ($dirty_mean ns) is not cheaper than full_sweep_1000types ($full_mean ns)" >&2; exit 1; }

# 6. Telemetry smoke: run the demo scenario with --metrics-out and assert the
#    snapshot is well-formed with nonzero cold-start stage counts. stdshim has
#    no JSON parser, so the shape check is textual.
METRICS_OUT="$(mktemp)"
trap 'rm -f "$METRICS_OUT"' EXIT
run sh -c "./target/release/hotc-sim --demo | ./target/release/hotc-sim - --metrics-out '$METRICS_OUT' >/dev/null"
echo
echo "==> metrics snapshot smoke ($METRICS_OUT):"
test -s "$METRICS_OUT"
# Counters present and nonzero (the demo workload always cold-starts some).
grep -q '"gateway/requests": [1-9]' "$METRICS_OUT" \
    || { echo "metrics snapshot missing nonzero gateway/requests" >&2; exit 1; }
grep -q '"gateway/cold_starts": [1-9]' "$METRICS_OUT" \
    || { echo "metrics snapshot missing nonzero gateway/cold_starts" >&2; exit 1; }
# Cold-start stages recorded (zero-count stages are omitted from the JSON,
# so presence implies a nonzero count). image_pull is rightly absent: the
# demo engine stores images locally, so pull cost is zero.
for stage in runtime_init network_setup resource_alloc code_load app_init exec; do
    grep -q "\"$stage\"" "$METRICS_OUT" \
        || { echo "metrics snapshot missing stage '$stage'" >&2; exit 1; }
done
# Every emitted stage histogram carries a nonzero count.
if grep -q '"count": 0' "$METRICS_OUT"; then
    echo "metrics snapshot contains a zero-count stage histogram" >&2; exit 1
fi
echo "metrics snapshot OK"

echo
echo "All checks passed."
