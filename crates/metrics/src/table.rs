//! Text rendering for the figure harness: aligned tables and ASCII series
//! plots, so `repro figN` output is readable in a terminal and diffable in
//! EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}", cell, width = widths[i]);
                if i + 1 < ncols {
                    s.push_str("  ");
                }
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Renders a numeric series as a labelled ASCII bar chart (one row per
/// point), scaled to `max_width` characters.
pub fn render_series(title: &str, labels: &[String], values: &[f64], max_width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "label/value length mismatch");
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    if values.is_empty() {
        let _ = writeln!(out, "(empty series)");
        return out;
    }
    let peak = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    for (label, &v) in labels.iter().zip(values) {
        let bar_len = if peak > 0.0 {
            ((v / peak) * max_width as f64).round().max(0.0) as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{:<label_w$} |{} {:.3}",
            label,
            "#".repeat(bar_len.min(max_width)),
            v,
        );
    }
    out
}

/// Formats a float with engineering-friendly precision for table cells.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_strs(&["short", "1"]);
        t.row_strs(&["a-much-longer-name", "22"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        // Both rows align the second column at the same offset as the header.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].chars().nth(col), Some('1'));
        assert_eq!(lines[4].chars().nth(col), Some('2'));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row_strs(&["only-one"]);
    }

    #[test]
    fn series_renders_bars() {
        let s = render_series(
            "latency",
            &["t0".to_string(), "t1".to_string()],
            &[1.0, 2.0],
            10,
        );
        assert!(s.contains("t0"));
        assert!(s.contains("##########")); // peak gets full width
        assert!(s.contains("#####")); // half value gets half width
    }

    #[test]
    fn series_handles_empty_and_zero() {
        let s = render_series("e", &[], &[], 10);
        assert!(s.contains("empty series"));
        let z = render_series("z", &["a".to_string()], &[0.0], 10);
        assert!(z.contains("a"));
    }

    #[test]
    fn fmt_f64_picks_precision() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234.5");
        assert_eq!(fmt_f64(2.34567), "2.35");
        assert_eq!(fmt_f64(0.01234), "0.0123");
    }
}
