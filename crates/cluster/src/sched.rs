//! Cluster scheduling over per-node HotC gateways.

use faas::gateway::{Gateway, GatewayError, InFlight};
use faas::{FunctionSpec, RequestTrace};
use hotc::HotC;
use simclock::{SimDuration, SimTime};

/// How the cluster places requests on nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Rotate through nodes.
    RoundRobin,
    /// Fewest in-flight requests first.
    LeastLoaded,
    /// Prefer nodes with an available warm runtime of the request's type;
    /// fall back to least-loaded, with an overload spill guard.
    ReuseAffinity,
    /// Estimate each node's completion time — cold-start cost (zero when a
    /// warm runtime is available) plus the node's execution speed — and pick
    /// the minimum. The right policy for *heterogeneous* (cloudlet) clusters,
    /// where naive warm affinity can pin heavy work to a slow edge node.
    CostAware,
}

impl SchedulePolicy {
    /// Policy name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::RoundRobin => "round-robin",
            SchedulePolicy::LeastLoaded => "least-loaded",
            SchedulePolicy::ReuseAffinity => "reuse-affinity",
            SchedulePolicy::CostAware => "cost-aware",
        }
    }
}

/// Cluster errors.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster has no nodes.
    NoNodes,
    /// A node's gateway failed.
    Gateway(GatewayError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "cluster has no nodes"),
            ClusterError::Gateway(e) => write!(f, "gateway error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<GatewayError> for ClusterError {
    fn from(e: GatewayError) -> Self {
        ClusterError::Gateway(e)
    }
}

struct Node {
    name: String,
    gateway: Gateway<HotC>,
    inflight: usize,
}

/// A ticket for an in-flight clustered request.
#[derive(Debug)]
pub struct ClusterInFlight {
    /// Index of the node serving the request.
    pub node: usize,
    /// The node-local in-flight handle.
    pub inner: InFlight,
}

/// Point-in-time view of one node, for reports and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// Node name.
    pub name: String,
    /// Live containers on the node.
    pub live_containers: usize,
    /// Requests currently executing on the node.
    pub inflight: usize,
    /// Requests the node has completed.
    pub requests: u64,
    /// Cold starts the node has paid.
    pub cold_starts: u64,
}

/// Aggregate cluster counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Requests completed across all nodes.
    pub requests: u64,
    /// Cold starts across all nodes.
    pub cold_starts: u64,
    /// Live containers across all nodes.
    pub live_containers: usize,
}

/// A periodically-synchronized view of per-node warm availability — the
/// "distributed key-value store" of §VII, with its inherent staleness. With
/// zero staleness the scheduler reads the pools directly (an oracle); with a
/// sync interval it sees counts as of the last sync and can route to a node
/// whose warm runtime has meanwhile been taken or retired.
#[derive(Debug, Default)]
struct WarmView {
    staleness: SimDuration,
    last_sync: Option<SimTime>,
    /// snapshot[node] = warm-available count per function name.
    snapshot: Vec<std::collections::HashMap<String, usize>>,
}

/// A multi-host HotC deployment.
///
/// ```
/// use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
/// use faas::{AppProfile, FunctionSpec, Gateway};
/// use hotc::HotC;
/// use hotc_cluster::{Cluster, SchedulePolicy};
/// use simclock::SimTime;
///
/// let gateways = (0..3)
///     .map(|i| {
///         let engine = ContainerEngine::with_local_images(HardwareProfile::server());
///         (format!("node-{i}"), Gateway::new(engine, HotC::with_defaults()))
///     })
///     .collect();
/// let mut cluster = Cluster::new(SchedulePolicy::ReuseAffinity, gateways);
/// cluster.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
///     LanguageRuntime::Python,
/// )));
///
/// let (node_a, t1) = cluster.handle("qr-code", SimTime::ZERO).unwrap();
/// let (node_b, t2) = cluster.handle("qr-code", t1.t6_gateway_out).unwrap();
/// assert_eq!(node_a, node_b, "affinity returns to the warm node");
/// assert!(t1.cold && !t2.cold);
/// ```
pub struct Cluster {
    nodes: Vec<Node>,
    policy: SchedulePolicy,
    next_rr: usize,
    warm_view: WarmView,
}

impl Cluster {
    /// Spill threshold for reuse affinity: if the warm node's in-flight load
    /// exceeds `mean × OVERLOAD_FACTOR + 1`, the request goes to the
    /// least-loaded node instead.
    pub const OVERLOAD_FACTOR: f64 = 2.0;

    /// Builds a cluster from named per-node gateways.
    pub fn new(policy: SchedulePolicy, gateways: Vec<(String, Gateway<HotC>)>) -> Self {
        Cluster {
            nodes: gateways
                .into_iter()
                .map(|(name, gateway)| Node {
                    name,
                    gateway,
                    inflight: 0,
                })
                .collect(),
            policy,
            next_rr: 0,
            warm_view: WarmView::default(),
        }
    }

    /// Makes reuse-affinity scheduling read warm availability from a view
    /// that is only synchronized every `staleness` (0 = direct pool reads).
    /// Models the §VII distributed-registry deployment.
    pub fn set_warm_view_staleness(&mut self, staleness: SimDuration) {
        self.warm_view.staleness = staleness;
        self.warm_view.last_sync = None;
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a function on every node (functions are deployable
    /// anywhere; placement is per-request).
    pub fn register_everywhere(&mut self, spec: FunctionSpec) {
        for node in &mut self.nodes {
            node.gateway.register(spec.clone());
        }
    }

    fn least_loaded(&mut self) -> usize {
        let min = self
            .nodes
            .iter()
            .map(|n| n.inflight)
            .min()
            // lint:allow(unwrap, place() returns ClusterError::NoNodes before scheduling on an empty cluster)
            .expect("non-empty cluster");
        let candidates: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inflight == min)
            .map(|(i, _)| i)
            .collect();
        // Rotate among ties so an idle cluster doesn't funnel everything to
        // node 0 (which would fake reuse affinity).
        let pick = candidates[self.next_rr % candidates.len()];
        self.next_rr += 1;
        pick
    }

    fn live_warm_count(node: &Node, function: &str) -> usize {
        let Some(spec) = node.gateway.function(function) else {
            return 0;
        };
        let pool = node.gateway.provider().pool();
        let key = pool.key_of(&spec.config);
        pool.num_avail(&key)
    }

    /// Refreshes the warm-view snapshot if it is due.
    fn sync_warm_view(&mut self, now: SimTime) {
        let due = match self.warm_view.last_sync {
            None => true,
            Some(last) => now.duration_since(last) >= self.warm_view.staleness,
        };
        if !due {
            return;
        }
        self.warm_view.last_sync = Some(now);
        self.warm_view.snapshot = self
            .nodes
            .iter()
            .map(|n| {
                n.gateway
                    .functions()
                    .map(|spec| (spec.name.clone(), Self::live_warm_count(n, &spec.name)))
                    .collect()
            })
            .collect();
    }

    /// Nodes holding an available warm runtime for `function`, least loaded
    /// first — through the warm view when staleness is configured.
    fn warm_nodes(&mut self, function: &str, now: SimTime) -> Vec<usize> {
        let stale = !self.warm_view.staleness.is_zero();
        if stale {
            self.sync_warm_view(now);
        }
        let mut candidates: Vec<(usize, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let available = if stale {
                    self.warm_view
                        .snapshot
                        .get(i)
                        .and_then(|m| m.get(function))
                        .copied()
                        .unwrap_or(0)
                } else {
                    Self::live_warm_count(n, function)
                };
                (available > 0).then_some((n.inflight, i))
            })
            .collect();
        candidates.sort_unstable();
        candidates.into_iter().map(|(_, i)| i).collect()
    }

    fn place(&mut self, function: &str, now: SimTime) -> Result<usize, ClusterError> {
        if self.nodes.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        let node = match self.policy {
            SchedulePolicy::RoundRobin => {
                let i = self.next_rr % self.nodes.len();
                self.next_rr += 1;
                i
            }
            SchedulePolicy::LeastLoaded => self.least_loaded(),
            SchedulePolicy::ReuseAffinity => {
                let warm = self.warm_nodes(function, now);
                match warm.first().copied() {
                    Some(candidate) => {
                        // Overload guard: spill when the warm node is far
                        // hotter than the average.
                        let mean = self.nodes.iter().map(|n| n.inflight).sum::<usize>() as f64
                            / self.nodes.len() as f64;
                        let limit = mean * Self::OVERLOAD_FACTOR + 1.0;
                        if (self.nodes[candidate].inflight as f64) > limit {
                            self.least_loaded()
                        } else {
                            candidate
                        }
                    }
                    None => self.least_loaded(),
                }
            }
            SchedulePolicy::CostAware => self.cheapest_node(function),
        };
        Ok(node)
    }

    /// Estimated completion time of `function` on node `i`: cold-start cost
    /// (zero if a warm runtime is available) plus the app's execution time at
    /// the node's speed, plus a small queueing penalty per in-flight request.
    fn completion_estimate(&self, i: usize, function: &str) -> Option<SimDuration> {
        let node = &self.nodes[i];
        let spec = node.gateway.function(function)?;
        let engine = node.gateway.engine();
        let cold = if Self::live_warm_count(node, function) > 0 {
            SimDuration::ZERO
        } else {
            engine.estimate_cold_start(&spec.config).ok()?
        };
        let hw = engine.host().hardware();
        let exec = hw.compute(spec.app.work.compute + spec.app.app_init);
        let queue = SimDuration::from_millis(20) * node.inflight as u64;
        Some(cold + exec + queue)
    }

    fn cheapest_node(&mut self, function: &str) -> usize {
        let best = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, _)| self.completion_estimate(i, function).map(|c| (c, i)))
            .min_by_key(|&(c, _)| c)
            .map(|(_, i)| i);
        match best {
            Some(i) => i,
            // Function unknown everywhere: let the gateway error surface.
            None => self.least_loaded(),
        }
    }

    /// Starts a request: picks a node, begins execution there. Complete it
    /// with [`Self::finish`] once the clock reaches `inner.t4_func_end`.
    pub fn begin(&mut self, function: &str, now: SimTime) -> Result<ClusterInFlight, ClusterError> {
        let node = self.place(function, now)?;
        let inner = self.nodes[node].gateway.begin(function, now)?;
        self.nodes[node].inflight += 1;
        Ok(ClusterInFlight { node, inner })
    }

    /// Completes a clustered request.
    pub fn finish(&mut self, ticket: ClusterInFlight) -> Result<RequestTrace, ClusterError> {
        let node = &mut self.nodes[ticket.node];
        let trace = node.gateway.finish(ticket.inner)?;
        node.inflight = node.inflight.saturating_sub(1);
        Ok(trace)
    }

    /// Serves one request start-to-finish (non-overlapping workloads).
    pub fn handle(
        &mut self,
        function: &str,
        now: SimTime,
    ) -> Result<(usize, RequestTrace), ClusterError> {
        let ticket = self.begin(function, now)?;
        let node = ticket.node;
        Ok((node, self.finish(ticket)?))
    }

    /// Runs provider maintenance on every node.
    pub fn tick(&mut self, now: SimTime) -> Result<(), ClusterError> {
        for node in &mut self.nodes {
            node.gateway.tick(now)?;
        }
        Ok(())
    }

    /// Per-node snapshots.
    pub fn snapshots(&self) -> Vec<NodeSnapshot> {
        self.nodes
            .iter()
            .map(|n| NodeSnapshot {
                name: n.name.clone(),
                live_containers: n.gateway.engine().live_count(),
                inflight: n.inflight,
                requests: n.gateway.stats().requests,
                cold_starts: n.gateway.stats().cold_starts,
            })
            .collect()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ClusterStats {
        let mut stats = ClusterStats::default();
        for n in &self.nodes {
            stats.requests += n.gateway.stats().requests;
            stats.cold_starts += n.gateway.stats().cold_starts;
            stats.live_containers += n.gateway.engine().live_count();
        }
        stats
    }

    /// Load imbalance: max over mean of per-node completed requests
    /// (1.0 = perfectly balanced).
    pub fn request_imbalance(&self) -> f64 {
        let counts: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| n.gateway.stats().requests as f64)
            .collect();
        let mean = counts.iter().sum::<f64>() / counts.len().max(1) as f64;
        if mean == 0.0 {
            return 1.0;
        }
        counts.iter().cloned().fold(0.0, f64::max) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
    use faas::AppProfile;
    use simclock::SimDuration;

    fn cluster(policy: SchedulePolicy, nodes: usize) -> Cluster {
        let gateways = (0..nodes)
            .map(|i| {
                let engine = ContainerEngine::with_local_images(HardwareProfile::server());
                (
                    format!("node-{i}"),
                    Gateway::new(engine, HotC::with_defaults()),
                )
            })
            .collect();
        let mut cluster = Cluster::new(policy, gateways);
        cluster.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
            LanguageRuntime::Python,
        )));
        cluster
    }

    #[test]
    fn round_robin_rotates() {
        let mut c = cluster(SchedulePolicy::RoundRobin, 3);
        let mut nodes = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..6 {
            let (node, trace) = c.handle("qr-code", now).unwrap();
            nodes.push(node);
            now = trace.t6_gateway_out + SimDuration::from_secs(1);
        }
        assert_eq!(nodes, vec![0, 1, 2, 0, 1, 2]);
        // Every node cold-started its own runtime.
        assert_eq!(c.stats().cold_starts, 3);
        assert_eq!(c.stats().live_containers, 3);
    }

    #[test]
    fn reuse_affinity_sticks_to_the_warm_node() {
        let mut c = cluster(SchedulePolicy::ReuseAffinity, 3);
        let mut now = SimTime::ZERO;
        let mut nodes = Vec::new();
        for _ in 0..6 {
            let (node, trace) = c.handle("qr-code", now).unwrap();
            nodes.push(node);
            now = trace.t6_gateway_out + SimDuration::from_secs(1);
        }
        // After the first (cold) placement, everything reuses that node.
        assert!(nodes[1..].iter().all(|&n| n == nodes[0]));
        assert_eq!(c.stats().cold_starts, 1);
        assert_eq!(c.stats().live_containers, 1);
    }

    #[test]
    fn least_loaded_spreads_overlapping_requests() {
        let mut c = cluster(SchedulePolicy::LeastLoaded, 3);
        // Three overlapping requests: each goes to an idle node.
        let t1 = c.begin("qr-code", SimTime::ZERO).unwrap();
        let t2 = c.begin("qr-code", SimTime::ZERO).unwrap();
        let t3 = c.begin("qr-code", SimTime::ZERO).unwrap();
        let placed: std::collections::BTreeSet<_> =
            [t1.node, t2.node, t3.node].into_iter().collect();
        assert_eq!(placed.len(), 3, "each request on its own node");
        for t in [t1, t2, t3] {
            c.finish(t).unwrap();
        }
    }

    #[test]
    fn affinity_spills_when_warm_node_is_overloaded() {
        let mut c = cluster(SchedulePolicy::ReuseAffinity, 2);
        // Warm node 0 with a serving + release cycle.
        let (first, trace) = c.handle("qr-code", SimTime::ZERO).unwrap();
        let mut now = trace.t6_gateway_out + SimDuration::from_secs(1);

        // Pile 4 overlapping requests; the first reuses node `first`'s warm
        // runtime, then the overload guard pushes the rest to the other node.
        let mut tickets = Vec::new();
        let mut nodes_hit = Vec::new();
        for _ in 0..4 {
            let t = c.begin("qr-code", now).unwrap();
            nodes_hit.push(t.node);
            tickets.push(t);
            now += SimDuration::from_millis(1);
        }
        assert_eq!(nodes_hit[0], first);
        assert!(
            nodes_hit.iter().any(|&n| n != first),
            "overload guard must spill: {nodes_hit:?}"
        );
        for t in tickets {
            c.finish(t).unwrap();
        }
    }

    #[test]
    fn empty_cluster_errors() {
        let mut c = Cluster::new(SchedulePolicy::RoundRobin, Vec::new());
        assert!(matches!(
            c.begin("qr-code", SimTime::ZERO),
            Err(ClusterError::NoNodes)
        ));
        assert!(c.is_empty());
    }

    #[test]
    fn unknown_function_surfaces_gateway_error() {
        let mut c = cluster(SchedulePolicy::RoundRobin, 2);
        assert!(matches!(
            c.handle("nope", SimTime::ZERO),
            Err(ClusterError::Gateway(GatewayError::UnknownFunction(_)))
        ));
    }

    #[test]
    fn snapshots_and_stats_agree() {
        let mut c = cluster(SchedulePolicy::RoundRobin, 2);
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            let (_, trace) = c.handle("qr-code", now).unwrap();
            now = trace.t6_gateway_out + SimDuration::from_secs(1);
        }
        let snaps = c.snapshots();
        let stats = c.stats();
        assert_eq!(
            snaps.iter().map(|s| s.requests).sum::<u64>(),
            stats.requests
        );
        assert_eq!(
            snaps.iter().map(|s| s.cold_starts).sum::<u64>(),
            stats.cold_starts
        );
        assert_eq!(stats.requests, 4);
        // Round robin on 2 nodes × 4 requests: perfectly balanced.
        assert!((c.request_imbalance() - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod staleness_tests {
    use super::*;
    use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
    use faas::AppProfile;
    use simclock::SimDuration;

    fn cluster_with_staleness(staleness: SimDuration) -> Cluster {
        let gateways = (0..3)
            .map(|i| {
                let engine = ContainerEngine::with_local_images(HardwareProfile::server());
                (
                    format!("node-{i}"),
                    Gateway::new(engine, HotC::with_defaults()),
                )
            })
            .collect();
        let mut c = Cluster::new(SchedulePolicy::ReuseAffinity, gateways);
        c.set_warm_view_staleness(staleness);
        c.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
            LanguageRuntime::Python,
        )));
        c
    }

    #[test]
    fn fresh_view_behaves_like_oracle() {
        let mut c = cluster_with_staleness(SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        let mut nodes = Vec::new();
        for _ in 0..5 {
            let (node, trace) = c.handle("qr-code", now).unwrap();
            nodes.push(node);
            now = trace.t6_gateway_out + SimDuration::from_secs(1);
        }
        assert!(nodes[1..].iter().all(|&n| n == nodes[0]));
        assert_eq!(c.stats().cold_starts, 1);
    }

    #[test]
    fn stale_view_misses_recent_warm_containers() {
        // 60 s staleness: the view synced at t=0 (no warm runtimes anywhere),
        // so requests shortly after the first one still see "nothing warm"
        // and fall back to least-loaded — landing on cold nodes.
        let mut c = cluster_with_staleness(SimDuration::from_secs(60));
        let (first, trace) = c.handle("qr-code", SimTime::ZERO).unwrap();
        // Well within the stale window: the scheduler doesn't know node
        // `first` has a warm runtime now.
        let next_at = trace.t6_gateway_out + SimDuration::from_secs(5);
        let (second, _) = c.handle("qr-code", next_at).unwrap();
        assert_ne!(
            second, first,
            "stale view must not see the just-warmed node"
        );
        assert_eq!(c.stats().cold_starts, 2);

        // After the view refreshes, affinity works again.
        let (third, _) = c.handle("qr-code", SimTime::from_secs(120)).unwrap();
        let warm_nodes = [first, second];
        assert!(warm_nodes.contains(&third));
        assert_eq!(c.stats().cold_starts, 2);
    }

    #[test]
    fn staleness_degrades_cold_rate_monotonically() {
        // A round-robin-over-time single-tenant flow: every request arrives
        // 10 s after the previous finished. Fresh views give 1 cold start;
        // staler views give more.
        let run = |staleness_s: u64| {
            let mut c = cluster_with_staleness(SimDuration::from_secs(staleness_s));
            let mut now = SimTime::ZERO;
            for _ in 0..20 {
                let (_, trace) = c.handle("qr-code", now).unwrap();
                now = trace.t6_gateway_out + SimDuration::from_secs(10);
            }
            c.stats().cold_starts
        };
        let fresh = run(0);
        let mild = run(30);
        let heavy = run(600);
        assert_eq!(fresh, 1);
        assert!(mild >= fresh);
        assert!(heavy >= mild);
        assert!(
            heavy >= 3,
            "heavy staleness causes repeated cold routing: {heavy}"
        );
    }
}

#[cfg(test)]
mod cloudlet_tests {
    use super::*;
    use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
    use faas::AppProfile;
    use simclock::SimDuration;

    /// One cloud server plus two Raspberry Pis (a cloudlet).
    fn heterogeneous(policy: SchedulePolicy) -> Cluster {
        let mut gateways = vec![(
            "server".to_string(),
            Gateway::new(
                ContainerEngine::with_local_images(HardwareProfile::server()),
                HotC::with_defaults(),
            ),
        )];
        for i in 0..2 {
            gateways.push((
                format!("pi-{i}"),
                Gateway::new(
                    ContainerEngine::with_local_images(HardwareProfile::raspberry_pi3()),
                    HotC::with_defaults(),
                ),
            ));
        }
        let mut c = Cluster::new(policy, gateways);
        c.register_everywhere(FunctionSpec::from_app(AppProfile::v3_app()));
        c.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
            LanguageRuntime::Go,
        )));
        c
    }

    #[test]
    fn cost_aware_sends_heavy_work_to_the_server() {
        let mut c = heterogeneous(SchedulePolicy::CostAware);
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            let (node, trace) = c.handle("v3-app", now).unwrap();
            assert_eq!(node, 0, "heavy inference belongs on the server");
            now = trace.t6_gateway_out + SimDuration::from_secs(5);
        }
    }

    #[test]
    fn cost_aware_prefers_a_warm_pi_for_light_work() {
        let mut c = heterogeneous(SchedulePolicy::CostAware);
        // Cold everywhere: the server's fast cold start wins the first one.
        let (first, trace) = c.handle("qr-code", SimTime::ZERO).unwrap();
        assert_eq!(first, 0);
        // Occupy the server with heavy work so its warm runtime is the only
        // thing that differentiates; still prefers the warm server.
        let (second, _) = c
            .handle("qr-code", trace.t6_gateway_out + SimDuration::from_secs(1))
            .unwrap();
        assert_eq!(second, 0, "warm server beats cold pi for light work");
    }

    #[test]
    fn affinity_can_pin_heavy_work_to_a_slow_node() {
        // The §VII hazard cost-aware fixes: seed the v3 runtime on a Pi, and
        // warm affinity keeps sending 30×-slower inferences there.
        let mut c = heterogeneous(SchedulePolicy::ReuseAffinity);
        // Force the first placement onto pi-0 by loading the server.
        let busy: Vec<_> = (0..4)
            .map(|i| {
                c.begin("qr-code", SimTime::ZERO + SimDuration::from_millis(i))
                    .unwrap()
            })
            .collect();
        let heavy = c
            .begin("v3-app", SimTime::ZERO + SimDuration::from_millis(10))
            .unwrap();
        let pinned = heavy.node;
        assert_ne!(pinned, 0, "the loaded server is skipped");
        for t in busy {
            c.finish(t).unwrap();
        }
        let trace = c.finish(heavy).unwrap();

        // Later, with the cluster idle, affinity still returns to the Pi.
        let (again, trace2) = c
            .handle("v3-app", trace.t6_gateway_out + SimDuration::from_secs(30))
            .unwrap();
        assert_eq!(again, pinned, "affinity pins to the warm (slow) node");
        assert!(!trace2.cold);
        // Cost-aware in the same state would pay a cold start on the server
        // instead — and still finish far sooner than the Pi's execution.
        let pi_exec = trace2.total();
        assert!(pi_exec > SimDuration::from_secs(20), "{pi_exec}");
    }
}
