//! HotC on a memory-constrained edge device (Raspberry Pi 3) with overlay
//! networking: shows the 80 %-memory guardrail evicting oldest runtimes
//! while the pool keeps serving warm requests.
//!
//! ```text
//! cargo run --example edge_deployment
//! ```

use hotc_repro::prelude::*;

fn main() {
    let engine = ContainerEngine::with_local_images(HardwareProfile::raspberry_pi3());
    // A tight pool for a 1 GB board: at most 12 live containers, evict past
    // 70 % memory pressure.
    let config = HotCConfig {
        limits: PoolLimits::new(12, 0.70),
        ..Default::default()
    };
    let mut gateway = Gateway::new(engine, HotC::new(config));

    // Three functions with different footprints, overlay networking (the
    // paper's Pi setup): a JVM app, a Python app, a Go app.
    for (name, app) in [
        ("classify", AppProfile::v3_app()),
        ("transform", AppProfile::qr_code(LanguageRuntime::Python)),
        ("collect", AppProfile::qr_code(LanguageRuntime::Go)),
    ] {
        let spec = faas::FunctionSpec::from_app(app.clone())
            .named(name)
            .with_config(app.config_with_network(NetworkMode::Overlay));
        gateway.register(spec);
    }

    let mut table = Table::new(
        "edge traffic on a Raspberry Pi 3 (overlay network)",
        &[
            "t_s",
            "function",
            "latency_ms",
            "cold",
            "live",
            "mem_pressure_%",
        ],
    );
    let functions = [
        "transform",
        "collect",
        "transform",
        "classify",
        "transform",
        "collect",
    ];
    let mut now = SimTime::ZERO;
    for round in 0..6u64 {
        for f in &functions {
            let trace = gateway.handle(f, now).expect("edge request");
            table.row(&[
                now.as_secs().to_string(),
                f.to_string(),
                format!("{:.0}", trace.total().as_millis_f64()),
                trace.cold.to_string(),
                gateway.engine().live_count().to_string(),
                format!("{:.0}", gateway.engine().host().memory_pressure() * 100.0),
            ]);
            now = trace.t6_gateway_out + SimDuration::from_secs(2);
        }
        gateway.tick(now).expect("tick");
        now += SimDuration::from_secs(20 + round);
    }
    println!("{}", table.render());
    println!(
        "pool never exceeds the limits: live={} (max 12), pressure={:.0}% (threshold 70%)",
        gateway.engine().live_count(),
        gateway.engine().host().memory_pressure() * 100.0
    );
}
