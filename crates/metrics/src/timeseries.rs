//! Timestamped value series for resource timelines and demand histories.

use simclock::{SimDuration, SimTime};

/// A time-ordered series of `(SimTime, f64)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// Panics if `at` precedes the last sample (series must stay ordered).
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(
                at >= last,
                "samples must be time-ordered: {at:?} < {last:?}"
            );
        }
        self.points.push((at, value));
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Just the values, in time order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Last value at or before `t` (step interpolation), if any sample
    /// precedes `t`.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|&(at, _)| at <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Bins the series into fixed windows of `width`, averaging the samples
    /// in each bin. Empty bins repeat the previous bin's value (step-hold),
    /// starting from 0. Returns one value per bin covering `[start, end)`;
    /// when the range is not an exact multiple of `width` the final bin is a
    /// partial window (shorter than `width`) so no sample is dropped.
    pub fn bin_average(&self, start: SimTime, end: SimTime, width: SimDuration) -> Vec<f64> {
        assert!(!width.is_zero(), "bin width must be positive");
        assert!(end > start, "empty binning range");
        let span = end.duration_since(start);
        let whole = span.div_duration(width) as usize;
        let nbins = if span.as_nanos().is_multiple_of(width.as_nanos()) {
            whole
        } else {
            whole + 1
        };
        let mut sums = vec![0.0; nbins];
        let mut counts = vec![0u32; nbins];
        for &(at, v) in &self.points {
            if at < start || at >= end {
                continue;
            }
            let bin = at.duration_since(start).div_duration(width) as usize;
            if bin < nbins {
                sums[bin] += v;
                counts[bin] += 1;
            }
        }
        let mut out = Vec::with_capacity(nbins);
        let mut last = 0.0;
        for i in 0..nbins {
            if counts[i] > 0 {
                last = sums[i] / counts[i] as f64;
            }
            out.push(last);
        }
        out
    }

    /// Peak value (None when empty).
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Time-weighted average over the sampled span (step-hold between
    /// samples). None for fewer than 2 samples.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0.duration_since(w[0].0).as_secs_f64();
            weighted += w[0].1 * dt;
            total += dt;
        }
        if total == 0.0 {
            None
        } else {
            Some(weighted / total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_query() {
        let mut ts = TimeSeries::new();
        ts.push(t(1), 10.0);
        ts.push(t(3), 30.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.value_at(t(0)), None);
        assert_eq!(ts.value_at(t(1)), Some(10.0));
        assert_eq!(ts.value_at(t(2)), Some(10.0));
        assert_eq!(ts.value_at(t(5)), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_rejected() {
        let mut ts = TimeSeries::new();
        ts.push(t(5), 1.0);
        ts.push(t(3), 2.0);
    }

    #[test]
    fn bin_average_basic() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 2.0);
        ts.push(t(1), 4.0); // bin 0 (width 2s): mean 3
        ts.push(t(2), 10.0); // bin 1: 10
                             // bin 2 empty: holds 10
        ts.push(t(7), 8.0); // bin 3: 8
        let bins = ts.bin_average(t(0), t(8), SimDuration::from_secs(2));
        assert_eq!(bins, vec![3.0, 10.0, 10.0, 8.0]);
    }

    #[test]
    fn bin_average_includes_trailing_partial_window() {
        // [0s, 5s) at width 2s covers [0,2), [2,4), [4,5): three bins, the
        // last one partial. The pre-fix code truncated nbins to 2 and
        // silently dropped the t=4 sample despite the doc's [start, end)
        // coverage promise.
        let mut ts = TimeSeries::new();
        ts.push(t(0), 2.0);
        ts.push(t(4), 9.0);
        let bins = ts.bin_average(t(0), t(5), SimDuration::from_secs(2));
        assert_eq!(bins, vec![2.0, 2.0, 9.0]);
    }

    #[test]
    fn bin_average_all_empty_is_zero() {
        let ts = TimeSeries::new();
        let bins = ts.bin_average(t(0), t(4), SimDuration::from_secs(1));
        assert_eq!(bins, vec![0.0; 4]);
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 10.0); // holds for 9s
        ts.push(t(9), 0.0); // final point: no weight after
        ts.push(t(10), 0.0);
        let m = ts.time_weighted_mean().unwrap();
        assert!((m - 9.0).abs() < 1e-12, "m={m}");
    }

    #[test]
    fn max_and_values() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 1.0);
        ts.push(t(1), 5.0);
        ts.push(t(2), 3.0);
        assert_eq!(ts.max(), Some(5.0));
        assert_eq!(ts.values(), vec![1.0, 5.0, 3.0]);
        assert!(TimeSeries::new().max().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    /// Binning conserves sample mass: the average of bin values weighted
    /// by their sample counts equals the overall sample mean.
    #[test]
    fn prop_bin_average_bounded() {
        testkit::check(64, |g| {
            let points = g.vec(1..80, |g| (g.u64_in(0..100), g.f64_in(-50.0..50.0)));
            let mut sorted = points.clone();
            sorted.sort_by_key(|&(t, _)| t);
            let mut ts = TimeSeries::new();
            for &(t, v) in &sorted {
                ts.push(SimTime::from_secs(t), v);
            }
            let bins = ts.bin_average(
                SimTime::ZERO,
                SimTime::from_secs(100),
                SimDuration::from_secs(10),
            );
            assert_eq!(bins.len(), 10);
            let lo = sorted.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let hi = sorted
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            // Every bin value is within the sample range (or the 0.0 default
            // before the first sample lands).
            for &b in &bins {
                assert!(b == 0.0 || (b >= lo - 1e-9 && b <= hi + 1e-9));
            }
        });
    }

    /// value_at is consistent with the raw points (step interpolation).
    #[test]
    fn prop_value_at_steps() {
        testkit::check(64, |g| {
            let values = g.vec(1..40, |g| g.f64_in(-10.0..10.0));
            let probe = g.u64_in(0..200);
            let mut ts = TimeSeries::new();
            for (i, &v) in values.iter().enumerate() {
                ts.push(SimTime::from_secs(i as u64 * 2), v);
            }
            let got = ts.value_at(SimTime::from_secs(probe));
            let expect_idx = (probe / 2).min(values.len() as u64 - 1) as usize;
            assert_eq!(got, Some(values[expect_idx]));
        });
    }
}
