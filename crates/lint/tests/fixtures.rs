//! Fixture-corpus driver: every file under `tests/fixtures/` is linted as
//! if it lived at the workspace path named by its `lint-fixture-path:`
//! header comment, and the findings must match its `.expect` manifest
//! (`line:rule` per line, order-insensitive) exactly — positive cases prove
//! each rule fires, negative cases prove it stays quiet on the idiomatic
//! form. The workspace scan skips `tests/fixtures/` ([`hotc_lint::collect_files`]),
//! so the deliberate violations here never fail the real lint run.

use hotc_lint::rules::{check_manifest, check_rust_file};
use std::collections::BTreeSet;
use std::path::Path;

/// Every rule in the set; the corpus must exercise each at least once.
const ALL_RULES: [&str; 10] = [
    "wall-clock",
    "raw-lock",
    "map-iteration",
    "unwrap",
    "atomic-ordering",
    "atomic-seqcst",
    "atomic-facade",
    "unchecked-cas",
    "allow-syntax",
    "hermetic-deps",
];

fn fixture_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The pretend workspace path from the fixture's header comment.
fn declared_path(name: &str, src: &str) -> String {
    const MARKER: &str = "lint-fixture-path:";
    for line in src.lines().take(3) {
        if let Some(at) = line.find(MARKER) {
            return line[at + MARKER.len()..].trim().to_string();
        }
    }
    panic!("fixture {name} lacks a `{MARKER}` header comment");
}

fn expected(manifest: &str) -> Vec<String> {
    let mut out: Vec<String> = manifest
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    out.sort();
    out
}

#[test]
fn fixture_corpus_matches_expected_violations() {
    let dir = fixture_dir();
    let mut checked = 0;
    let mut rules_seen: BTreeSet<String> = BTreeSet::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixture dir exists")
        .map(|e| e.expect("readable fixture entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        let is_rust = name.ends_with(".rs");
        if !is_rust && !name.ends_with(".toml") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable fixture");
        let manifest_path = path.with_extension("expect");
        let manifest = std::fs::read_to_string(&manifest_path)
            .unwrap_or_else(|e| panic!("fixture {name} lacks its .expect manifest: {e}"));
        let rel = declared_path(&name, &src);
        let violations = if is_rust {
            check_rust_file(&rel, &src)
        } else {
            check_manifest(&rel, &src)
        };
        let mut got: Vec<String> = violations
            .iter()
            .map(|v| {
                assert_eq!(v.file, rel, "{name}: finding reports the declared path");
                format!("{}:{}", v.line, v.rule)
            })
            .collect();
        got.sort();
        assert_eq!(
            got,
            expected(&manifest),
            "{name}: findings differ from {}",
            manifest_path.display()
        );
        for v in &violations {
            rules_seen.insert(v.rule.to_string());
        }
        checked += 1;
    }
    assert!(
        checked >= 2 * ALL_RULES.len() - 1,
        "corpus covers each rule both ways"
    );
    for rule in ALL_RULES {
        assert!(
            rules_seen.contains(rule),
            "no fixture exercises the `{rule}` rule"
        );
    }
}
