//! lint-fixture-path: crates/cluster/src/fixture.rs
use std::sync::atomic::{AtomicU64, Ordering};
fn f(x: &AtomicU64) -> u64 {
    x.load(Ordering::SeqCst)
}
