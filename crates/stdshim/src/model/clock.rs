//! Vector clocks for the model checker's happens-before tracking.
//!
//! One component per virtual thread, grown on demand (threads are spawned
//! during a run). A thread's own component counts its events; joins take the
//! componentwise maximum, which is exactly the happens-before union.

/// A grow-on-demand vector clock indexed by virtual thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u32>,
}

impl VClock {
    /// The all-zero clock (happens-before everything).
    pub fn new() -> VClock {
        VClock::default()
    }

    /// The component for thread `tid` (0 if never ticked).
    pub fn get(&self, tid: usize) -> u32 {
        self.ticks.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component by one event and returns the new value.
    pub fn tick(&mut self, tid: usize) -> u32 {
        if self.ticks.len() <= tid {
            self.ticks.resize(tid + 1, 0);
        }
        self.ticks[tid] += 1;
        self.ticks[tid]
    }

    /// Componentwise maximum: after `self.join(other)`, everything that
    /// happened-before `other` also happens-before `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (mine, theirs) in self.ticks.iter_mut().zip(other.ticks.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether the event `(tid, tick)` happens-before (or is) this clock's
    /// current point — i.e. this clock has observed it.
    pub fn observed(&self, tid: usize, tick: u32) -> bool {
        self.get(tid) >= tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_observed() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        assert_eq!(a.tick(0), 1);
        assert_eq!(a.tick(0), 2);
        assert_eq!(b.tick(3), 1);
        assert!(!b.observed(0, 1), "b has not seen a's events");
        b.join(&a);
        assert!(b.observed(0, 2));
        assert!(b.observed(3, 1));
        assert!(!b.observed(0, 3));
        assert!(a.observed(1, 0), "tick 0 is vacuously observed");
    }
}
