//! Property test: the streaming replay path is observationally identical to
//! the materialized one (tentpole acceptance of the trace frontend).
//!
//! For every `WorkloadSpec` variant — generator-backed, synthesized, and
//! file-backed — `run_scenario` (pull-based, no full arrival vector) and
//! `run_scenario_materialized` (drain-then-replay reference) must produce
//! byte-identical rendered reports and byte-identical metrics JSON.

use containersim::{HardwareProfile, LanguageRuntime, NetworkMode};
use hotc_cli::scenario::{FunctionDecl, ProviderSpec, WorkloadSpec};
use hotc_cli::{run_scenario, run_scenario_materialized, Scenario};
use simclock::SimDuration;
use std::collections::BTreeMap;
use std::path::PathBuf;
use stdshim::ToJson;
use testkit::Gen;

fn decl(name: &str, app: &str, replicas: usize) -> FunctionDecl {
    FunctionDecl {
        name: name.to_string(),
        app: app.to_string(),
        lang: LanguageRuntime::Python,
        network: NetworkMode::Bridge,
        env: BTreeMap::new(),
        replicas,
    }
}

fn scenario(provider: ProviderSpec, seed: u64, workload: WorkloadSpec) -> Scenario {
    Scenario {
        hardware: HardwareProfile::server(),
        provider,
        seed,
        tick: SimDuration::from_secs(30),
        crash_rate: 0.0,
        functions: vec![
            decl("alpha", "qr-code", 1),
            decl("beta", "random-number", 3),
        ],
        workload,
    }
}

/// Writes the sample file-backed traces once per test process.
fn sample_files() -> (PathBuf, PathBuf) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let csv = dir.join("equiv_azure.csv");
    let opendc = dir.join("equiv_opendc.trace");
    std::fs::write(&csv, "name,m1,m2,m3\nfn-a,5,0,9\nfn-b,2,2,2\nfn-c,0,7,1\n").expect("write csv");
    std::fs::write(
        &opendc,
        "timestamp,function\n0,fa\n250,fb\n250,fa\n900,fc\n900,fb\n1800,fa\n",
    )
    .expect("write opendc");
    (csv, opendc)
}

fn all_variants() -> Vec<WorkloadSpec> {
    let (csv, opendc) = sample_files();
    let m = SimDuration::from_mins;
    let s = SimDuration::from_secs;
    vec![
        WorkloadSpec::Serial {
            count: 25,
            interval: s(20),
        },
        WorkloadSpec::Parallel {
            threads: 6,
            per_thread: 5,
            interval: s(40),
        },
        WorkloadSpec::Linear {
            increasing: true,
            start: 2,
            step: 3,
            rounds: 7,
            round: s(30),
        },
        WorkloadSpec::Exponential {
            increasing: false,
            rounds: 6,
            round: s(30),
        },
        WorkloadSpec::Burst {
            base: 5,
            factor: 8,
            burst_at: vec![2, 5],
            rounds: 8,
            round: s(30),
        },
        WorkloadSpec::Poisson {
            rate: 1.5,
            duration: s(240),
            zipf: 1.1,
        },
        WorkloadSpec::Youtube {
            scale: 30.0,
            index: s(60),
            length: 48,
        },
        WorkloadSpec::Azure {
            functions: 12,
            duration: m(30),
        },
        WorkloadSpec::Synth {
            requests: 1500,
            keys: 40,
            duration: m(60),
            zipf: 1.1,
            peak: 3.0,
        },
        WorkloadSpec::FlashCrowd {
            requests: 1200,
            keys: 30,
            duration: m(45),
            zipf: 1.2,
            peak: 2.0,
            at: 0.3,
            width: 0.08,
            magnitude: 6.0,
        },
        WorkloadSpec::DeployWaves {
            requests: 1000,
            keys: 64,
            duration: m(40),
            zipf: 1.1,
            waves: 4,
            window: 16,
        },
        WorkloadSpec::MultiTenant {
            tenants: 3,
            requests: 400,
            keys: 20,
            duration: m(30),
            zipf: 1.1,
        },
        WorkloadSpec::AzureCsv {
            path: csv.to_string_lossy().into_owned(),
            interval: m(2),
        },
        WorkloadSpec::OpenDc {
            path: opendc.to_string_lossy().into_owned(),
        },
    ]
}

fn assert_equivalent(sc: &Scenario, label: &str) {
    let streamed =
        run_scenario(sc).unwrap_or_else(|e| panic!("{label}: streaming run failed: {e}"));
    let materialized = run_scenario_materialized(sc)
        .unwrap_or_else(|e| panic!("{label}: materialized run failed: {e}"));
    assert!(
        streamed.render(true) == materialized.render(true),
        "{label}: rendered reports differ\nstreaming:\n{}\nmaterialized:\n{}",
        streamed.render(true),
        materialized.render(true)
    );
    let sj = streamed.metrics.to_json().to_pretty_string();
    let mj = materialized.metrics.to_json().to_pretty_string();
    assert!(
        sj == mj,
        "{label}: metrics JSON differs ({} vs {} bytes)",
        sj.len(),
        mj.len()
    );
}

#[test]
fn every_workload_variant_streams_identically() {
    for (i, workload) in all_variants().into_iter().enumerate() {
        let sc = scenario(ProviderSpec::HotC, 42, workload);
        assert_equivalent(&sc, &format!("variant #{i}"));
    }
}

#[test]
fn random_scenarios_stream_identically() {
    let variants = all_variants();
    let providers = [
        ProviderSpec::HotC,
        ProviderSpec::HotCFuzzy,
        ProviderSpec::ColdStart,
        ProviderSpec::FixedKeepAlive(SimDuration::from_mins(10)),
        ProviderSpec::PeriodicWarmup(SimDuration::from_mins(5)),
        ProviderSpec::HybridKeepAlive,
    ];
    testkit::check(18, |g: &mut Gen| {
        let workload = g.pick(&variants).clone();
        let provider = g.pick(&providers).clone();
        let seed = g.next_u64();
        let mut sc = scenario(provider, seed, workload);
        sc.tick = SimDuration::from_secs(*g.pick(&[15u64, 30, 60]));
        if g.bool() {
            sc.crash_rate = 0.2;
        }
        if g.bool() {
            sc.functions = vec![decl("solo", "random-number", 5)];
        }
        assert_equivalent(&sc, &format!("seed {seed}"));
    });
}

/// Satellite regression: equal-timestamp arrivals from *different* merge
/// sources replay in the same total order every run — the multi-tenant
/// scenario is all same-instant collisions across tenants, so any ordering
/// instability shows up as a report/metrics diff between two identical runs.
#[test]
fn colliding_merge_sources_replay_deterministically() {
    let sc = scenario(
        ProviderSpec::HotC,
        7,
        WorkloadSpec::MultiTenant {
            tenants: 4,
            requests: 600,
            keys: 16,
            duration: SimDuration::from_mins(20),
            zipf: 1.1,
        },
    );
    let a = run_scenario(&sc).expect("first run");
    let b = run_scenario(&sc).expect("second run");
    assert_eq!(a.render(true), b.render(true));
    assert_eq!(
        a.metrics.to_json().to_pretty_string(),
        b.metrics.to_json().to_pretty_string()
    );
}
