//! The six request flows of §V-D.
//!
//! All generators are deterministic given their parameters (Poisson takes an
//! explicit seed). Times follow the paper's setups: 30-second rounds for the
//! serial/ramp experiments, per-round request counts as described per figure.

use crate::Arrival;
use simclock::{SimDuration, SimRng, SimTime};

/// Start instant of round `index` on an `interval`-spaced schedule, checked:
/// `interval * index` silently *saturates* under the `Mul` operator, which at
/// 1e8-request counts with long intervals would collapse every late arrival
/// onto `u64::MAX` ns (one giant synthetic burst) instead of failing. A
/// schedule that does not fit the u64-nanosecond timeline is a caller error,
/// so panic loudly with the offending operands.
pub(crate) fn round_start(interval: SimDuration, index: u64) -> SimTime {
    let offset = interval
        .checked_mul(index)
        .unwrap_or_else(|| schedule_overflow(interval, index));
    SimTime::ZERO
        .checked_add(offset)
        .unwrap_or_else(|| schedule_overflow(interval, index))
}

#[cold]
fn schedule_overflow(interval: SimDuration, index: u64) -> ! {
    panic!("arrival schedule overflows the simulation timeline: {interval} * {index} exceeds SimTime::MAX");
}

/// Ramp direction for the linear/exponential flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Request count grows round over round.
    Increasing,
    /// Request count shrinks round over round.
    Decreasing,
}

/// Fig. 12(a): a single-threaded client sending the same request every
/// `interval` — `count` requests of one configuration.
pub fn serial(interval: SimDuration, count: usize, config_id: usize) -> Vec<Arrival> {
    (0..count)
        .map(|i| Arrival {
            at: round_start(interval, i as u64),
            config_id,
        })
        .collect()
}

/// Fig. 12(b): `threads` concurrent clients, each with its *own* runtime
/// configuration (config ids `0..threads`), each sending `per_thread`
/// requests every `interval`. Arrivals at the same instant are emitted in
/// thread order.
pub fn parallel_clients(threads: usize, per_thread: usize, interval: SimDuration) -> Vec<Arrival> {
    let mut out = Vec::with_capacity(threads * per_thread);
    for round in 0..per_thread {
        for thread in 0..threads {
            out.push(Arrival {
                at: round_start(interval, round as u64),
                config_id: thread,
            });
        }
    }
    out
}

/// Fig. 13: linear ramp. Increasing: round `r` (0-based) sends
/// `start + step·r` requests; decreasing: starts at `start + step·(rounds-1)`
/// and sheds `step` per round. The paper uses start=2, step=2, 30 s rounds.
pub fn linear_ramp(
    direction: Direction,
    start: usize,
    step: usize,
    rounds: usize,
    round_interval: SimDuration,
    config_id: usize,
) -> Vec<Arrival> {
    let mut out = Vec::new();
    for r in 0..rounds {
        let n = match direction {
            Direction::Increasing => start + step * r,
            Direction::Decreasing => start + step * (rounds - 1 - r),
        };
        let at = round_start(round_interval, r as u64);
        out.extend((0..n).map(|_| Arrival { at, config_id }));
    }
    out
}

/// Fig. 14(a): exponential ramp — round `i` sends `2^i` requests
/// (increasing) or `2^(rounds-1-i)` (decreasing).
pub fn exponential_ramp(
    direction: Direction,
    rounds: u32,
    round_interval: SimDuration,
    config_id: usize,
) -> Vec<Arrival> {
    let mut out = Vec::new();
    for r in 0..rounds {
        let exp = match direction {
            Direction::Increasing => r,
            Direction::Decreasing => rounds - 1 - r,
        };
        let n = 1usize << exp.min(20); // cap at 2^20 to bound memory
        let at = round_start(round_interval, r as u64);
        out.extend((0..n).map(|_| Arrival { at, config_id }));
    }
    out
}

/// Fig. 14(b): burst flow. Every round sends `base` requests (the paper's 8)
/// except rounds in `burst_rounds` (the paper's 4th/8th/12th/16th), which
/// send `base × burst_factor` (the paper's ×10).
pub fn burst(
    base: usize,
    burst_factor: usize,
    burst_rounds: &[usize],
    rounds: usize,
    round_interval: SimDuration,
    config_id: usize,
) -> Vec<Arrival> {
    let mut out = Vec::new();
    for r in 0..rounds {
        let n = if burst_rounds.contains(&r) {
            base * burst_factor
        } else {
            base
        };
        let at = round_start(round_interval, r as u64);
        out.extend((0..n).map(|_| Arrival { at, config_id }));
    }
    out
}

/// A Poisson arrival process at `rate_per_sec` over `duration`, with config
/// ids sampled Zipf-style over `config_kinds` (popular runtimes dominate, as
/// in the Fig. 2 survey).
pub fn poisson(
    rate_per_sec: f64,
    duration: SimDuration,
    config_kinds: usize,
    zipf_exponent: f64,
    seed: u64,
) -> Vec<Arrival> {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    assert!(config_kinds >= 1, "need at least one config kind");
    let mut rng = SimRng::seeded(seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let horizon = duration.as_secs_f64();
    loop {
        t += rng.exponential(1.0 / rate_per_sec);
        if t >= horizon {
            break;
        }
        out.push(Arrival {
            at: SimTime::ZERO + SimDuration::from_secs_f64(t),
            config_id: rng.zipf(config_kinds, zipf_exponent),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_time_ordered;

    const ROUND: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn serial_spacing() {
        let w = serial(ROUND, 5, 3);
        assert_eq!(w.len(), 5);
        assert!(is_time_ordered(&w));
        assert!(w.iter().all(|a| a.config_id == 3));
        assert_eq!(w[4].at, SimTime::from_secs(120));
    }

    #[test]
    fn parallel_each_thread_own_config() {
        let w = parallel_clients(10, 4, ROUND);
        assert_eq!(w.len(), 40);
        assert!(is_time_ordered(&w));
        let configs: std::collections::BTreeSet<_> = w.iter().map(|a| a.config_id).collect();
        assert_eq!(configs.len(), 10);
        // First round: one arrival per thread at t=0.
        assert_eq!(w.iter().filter(|a| a.at == SimTime::ZERO).count(), 10);
    }

    #[test]
    fn linear_ramp_counts() {
        let up = linear_ramp(Direction::Increasing, 2, 2, 4, ROUND, 0);
        // Rounds: 2, 4, 6, 8 = 20 total.
        assert_eq!(up.len(), 20);
        let at_round = |w: &[Arrival], r: u64| {
            w.iter()
                .filter(|a| a.at == SimTime::ZERO + ROUND * r)
                .count()
        };
        assert_eq!(at_round(&up, 0), 2);
        assert_eq!(at_round(&up, 3), 8);

        let down = linear_ramp(Direction::Decreasing, 2, 2, 4, ROUND, 0);
        assert_eq!(down.len(), 20);
        assert_eq!(at_round(&down, 0), 8);
        assert_eq!(at_round(&down, 3), 2);
    }

    #[test]
    fn exponential_ramp_doubles() {
        let up = exponential_ramp(Direction::Increasing, 5, ROUND, 0);
        // 1+2+4+8+16 = 31.
        assert_eq!(up.len(), 31);
        let down = exponential_ramp(Direction::Decreasing, 5, ROUND, 0);
        assert_eq!(down.len(), 31);
        assert_eq!(down.iter().filter(|a| a.at == SimTime::ZERO).count(), 16);
        assert!(is_time_ordered(&up) && is_time_ordered(&down));
    }

    #[test]
    fn exponential_ramp_is_capped() {
        let huge = exponential_ramp(Direction::Increasing, 25, ROUND, 0);
        // Rounds beyond 2^20 are capped, so the total stays bounded.
        assert!(huge.len() < 6 * (1 << 20));
    }

    #[test]
    fn burst_rounds_multiply() {
        let w = burst(8, 10, &[3, 7], 10, ROUND, 0);
        let at_round = |r: u64| {
            w.iter()
                .filter(|a| a.at == SimTime::ZERO + ROUND * r)
                .count()
        };
        assert_eq!(at_round(0), 8);
        assert_eq!(at_round(3), 80);
        assert_eq!(at_round(7), 80);
        assert_eq!(at_round(9), 8);
        assert_eq!(w.len(), 8 * 8 + 2 * 80);
    }

    #[test]
    fn poisson_rate_and_determinism() {
        let w1 = poisson(5.0, SimDuration::from_secs(200), 4, 1.1, 42);
        let w2 = poisson(5.0, SimDuration::from_secs(200), 4, 1.1, 42);
        assert_eq!(w1, w2, "same seed must reproduce the workload");
        assert!(is_time_ordered(&w1));
        // ~1000 expected arrivals; allow wide tolerance.
        assert!((700..1300).contains(&w1.len()), "len={}", w1.len());
        // Popular config dominates.
        let c0 = w1.iter().filter(|a| a.config_id == 0).count();
        let c3 = w1.iter().filter(|a| a.config_id == 3).count();
        assert!(c0 > c3);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_zero_rate_rejected() {
        let _ = poisson(0.0, SimDuration::from_secs(1), 1, 1.0, 0);
    }

    // Overflow boundary: u64::MAX ns / (1<<33) ns-intervals leaves room for
    // exactly 2^31 rounds (indices 0..=2^31 - 1 fit; index 2^31 overflows).
    const BIG_IV: SimDuration = SimDuration::from_nanos(1 << 33);

    #[test]
    fn serial_near_overflow_boundary_stays_exact() {
        // Regression: the `Mul` operator saturates, so before the checked
        // round_start helper this workload silently collapsed late arrivals
        // onto u64::MAX instead of spacing them.
        let last = (1u64 << 31) - 1;
        let w = serial(BIG_IV, 4, 0);
        assert_eq!(w[3].at.as_nanos(), 3 << 33);
        let tail = round_start(BIG_IV, last);
        assert_eq!(tail.as_nanos(), last << 33);
        assert!(tail < SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "overflows the simulation timeline")]
    fn round_start_past_boundary_panics_loudly() {
        let _ = round_start(BIG_IV, 1u64 << 31);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::is_time_ordered;

    /// Every generator emits a time-ordered workload, and counts are what
    /// the closed forms say.
    #[test]
    fn prop_generators_ordered_and_counted() {
        testkit::check(64, |g| {
            let count = g.usize_in(1..40);
            let threads = g.usize_in(1..8);
            let rounds = g.usize_in(1..10);
            let start = g.usize_in(1..5);
            let step = g.usize_in(1..5);
            let iv = SimDuration::from_secs(30);
            let s = serial(iv, count, 0);
            assert!(is_time_ordered(&s));
            assert_eq!(s.len(), count);

            let p = parallel_clients(threads, rounds, iv);
            assert!(is_time_ordered(&p));
            assert_eq!(p.len(), threads * rounds);

            let up = linear_ramp(Direction::Increasing, start, step, rounds, iv, 0);
            let down = linear_ramp(Direction::Decreasing, start, step, rounds, iv, 0);
            assert!(is_time_ordered(&up));
            assert_eq!(up.len(), down.len());
            let expected: usize = (0..rounds).map(|r| start + step * r).sum();
            assert_eq!(up.len(), expected);
        });
    }

    /// Poisson arrival counts scale with the rate.
    #[test]
    fn prop_poisson_scales_with_rate() {
        testkit::check(64, |g| {
            let seed = g.u64_in(0..1000);
            let slow = poisson(1.0, SimDuration::from_secs(400), 2, 1.0, seed);
            let fast = poisson(8.0, SimDuration::from_secs(400), 2, 1.0, seed + 1);
            assert!(fast.len() > slow.len());
        });
    }
}
