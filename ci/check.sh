#!/usr/bin/env bash
# Single local entry point for everything CI runs. Usage: ci/check.sh
#
# The whole suite is offline by design: every dependency is a path dep into
# this repository (enforced by tests/hermetic.rs), so `--offline` both proves
# the hermeticity claim and keeps the script runnable on an air-gapped box.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

# 1. Hermeticity: the dependency graph resolves without any network access.
run cargo metadata --offline --format-version 1 >/dev/null

# 2. Format and lints.
run cargo fmt --all --check
run cargo clippy --workspace --all-targets --offline -- -D warnings

# 3. Repo-specific conformance analyzer: determinism and concurrency rules
#    clippy cannot express (wall-clock, raw locks, hash-order iteration,
#    unwrap on the request path, hermetic manifests). Deny by default;
#    escapes need `// lint:allow(rule, reason)`.
run cargo run --offline -q -p hotc-lint

# 4. Tier-1: release build + full test suite, offline.
run cargo build --release --offline
run cargo test -q --offline

# 5. Perf smoke: every bench suite in --smoke mode, accumulating one
#    JSON-Lines record per suite into BENCH_ci.json (the CI perf artifact).
export BENCH_OUT_DIR="$PWD"
rm -f "$BENCH_OUT_DIR/BENCH_ci.json"
# --benches keeps cargo from also running the crate's libtest unit-test
# target, which would reject the custom --smoke flag.
run cargo bench --offline -p hotc-bench --benches -- --smoke

echo
echo "==> BENCH_ci.json:"
test -s "$BENCH_OUT_DIR/BENCH_ci.json"
# Shape check: one JSON object per suite, all six suites present.
for suite in cluster contention pipeline pool predictor simkernel; do
    grep -q "\"suite\":\"$suite\"" "$BENCH_OUT_DIR/BENCH_ci.json" \
        || { echo "missing suite '$suite' in BENCH_ci.json" >&2; exit 1; }
done
# The contention suite must record both sides of the sharded-vs-global-lock
# comparison, so the perf trajectory captures the speedup over time.
for name in shared_gateway/8_threads sharded_gateway/8_threads; do
    grep -q "\"$name\"" "$BENCH_OUT_DIR/BENCH_ci.json" \
        || { echo "missing bench '$name' in BENCH_ci.json" >&2; exit 1; }
done
wc -l "$BENCH_OUT_DIR/BENCH_ci.json"
# Contention parity: the sanitizer instrumentation (PR 4) must not erase the
# sharding speedup. Release builds compile the sanitizer out entirely, so the
# sharded gateway at 8 threads must still beat the single-lock gateway.
mean_of() {
    grep '"suite":"contention"' "$BENCH_OUT_DIR/BENCH_ci.json" \
        | sed -e "s/.*\"$1\\/8_threads\",\"mean_ns\"://" -e 's/,.*//'
}
shared_mean="$(mean_of shared_gateway)"
sharded_mean="$(mean_of sharded_gateway)"
echo "contention 8_threads mean_ns: shared=$shared_mean sharded=$sharded_mean"
awk -v a="$sharded_mean" -v b="$shared_mean" \
    'BEGIN { exit !(a + 0 > 0 && b + 0 > 0 && a < b) }' \
    || { echo "sharded_gateway/8_threads ($sharded_mean ns) is not faster than shared_gateway/8_threads ($shared_mean ns)" >&2; exit 1; }

# 6. Telemetry smoke: run the demo scenario with --metrics-out and assert the
#    snapshot is well-formed with nonzero cold-start stage counts. stdshim has
#    no JSON parser, so the shape check is textual.
METRICS_OUT="$(mktemp)"
trap 'rm -f "$METRICS_OUT"' EXIT
run sh -c "./target/release/hotc-sim --demo | ./target/release/hotc-sim - --metrics-out '$METRICS_OUT' >/dev/null"
echo
echo "==> metrics snapshot smoke ($METRICS_OUT):"
test -s "$METRICS_OUT"
# Counters present and nonzero (the demo workload always cold-starts some).
grep -q '"gateway/requests": [1-9]' "$METRICS_OUT" \
    || { echo "metrics snapshot missing nonzero gateway/requests" >&2; exit 1; }
grep -q '"gateway/cold_starts": [1-9]' "$METRICS_OUT" \
    || { echo "metrics snapshot missing nonzero gateway/cold_starts" >&2; exit 1; }
# Cold-start stages recorded (zero-count stages are omitted from the JSON,
# so presence implies a nonzero count). image_pull is rightly absent: the
# demo engine stores images locally, so pull cost is zero.
for stage in runtime_init network_setup resource_alloc code_load app_init exec; do
    grep -q "\"$stage\"" "$METRICS_OUT" \
        || { echo "metrics snapshot missing stage '$stage'" >&2; exit 1; }
done
# Every emitted stage histogram carries a nonzero count.
if grep -q '"count": 0' "$METRICS_OUT"; then
    echo "metrics snapshot contains a zero-count stage histogram" >&2; exit 1
fi
echo "metrics snapshot OK"

echo
echo "All checks passed."
