//! Cluster-scheduler benchmarks: the CPU cost of a placement decision under
//! each policy as the cluster and function catalogue grow.

use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
use faas::{AppProfile, FunctionSpec, Gateway};
use hotc::HotC;
use hotc_bench::Harness;
use hotc_cluster::{Cluster, SchedulePolicy};
use simclock::{SimDuration, SimTime};
use std::hint::black_box;

fn build(policy: SchedulePolicy, nodes: usize, functions: usize) -> Cluster {
    let gateways = (0..nodes)
        .map(|i| {
            let engine = ContainerEngine::with_local_images(HardwareProfile::server());
            (
                format!("node-{i}"),
                Gateway::new(engine, HotC::with_defaults()),
            )
        })
        .collect();
    let mut cluster = Cluster::new(policy, gateways);
    for f in 0..functions {
        let app = AppProfile::qr_code(LanguageRuntime::Go);
        let mut config = app.default_config();
        config.exec.env.insert("FN".into(), f.to_string());
        cluster.register_everywhere(
            FunctionSpec::from_app(app)
                .named(format!("fn-{f}"))
                .with_config(config),
        );
    }
    // Warm every function once so affinity has pools to inspect.
    let mut now = SimTime::ZERO;
    for f in 0..functions {
        let (_, trace) = cluster.handle(&format!("fn-{f}"), now).expect("prime");
        now = trace.t6_gateway_out + SimDuration::from_secs(1);
    }
    cluster
}

/// `64` → `"64"`, `10_000` → `"10k"` (bench-name suffixes).
fn count_label(n: usize) -> String {
    if n >= 1000 && n.is_multiple_of(1000) {
        format!("{}k", n / 1000)
    } else {
        n.to_string()
    }
}

fn bench_placement(h: &mut Harness) {
    // The 1024-node / 10k-function point is the scale gate: placement must
    // stay flat in cluster size (indexed warm rows + power-of-two-choices),
    // and the request path allocates nothing per placement — the old
    // least-loaded tie `Vec` is gone, so the policies differ only by a few
    // index probes (ci/gates.json holds reuse-affinity ≤ 2× round-robin).
    for &(nodes, functions) in &[(4usize, 16usize), (16, 64), (1024, 10_000)] {
        for policy in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::LeastLoaded,
            SchedulePolicy::ReuseAffinity,
        ] {
            let mut cluster = build(policy, nodes, functions);
            let mut now = SimTime::from_secs(10_000);
            let mut i = 0usize;
            let name = format!(
                "place_and_serve/{}/{}n_{}f",
                policy.name(),
                count_label(nodes),
                count_label(functions)
            );
            h.bench(&name, || {
                i = (i + 7) % functions;
                now += SimDuration::from_millis(300);
                let function = format!("fn-{i}");
                black_box(cluster.handle(&function, now).expect("request"))
            });
        }
    }
}

fn main() {
    let mut h = Harness::new("cluster");
    bench_placement(&mut h);
    h.finish();
}
