//! lint-fixture-path: crates/core/src/fixture.rs
use std::sync::Arc;
use std::sync::MutexGuard;
use stdshim::Mutex;
