#![warn(missing_docs)]

//! Workload generators for the HotC evaluation (§V-D "Analysis of Request
//! Patterns").
//!
//! The paper drives HotC with six request shapes (serial, parallel,
//! linear ↑/↓, exponential ↑/↓, burst) plus a YouTube request trace collected
//! at the UMass campus gateway (Fig. 11) and motivates runtime homogeneity
//! with a survey of GitHub Dockerfiles (Fig. 2). This crate generates all of
//! them deterministically:
//!
//! * [`patterns`] — the six §V-D request flows as arrival sequences,
//! * [`youtube`] — a synthetic day-long trace reproducing the three named
//!   features of Fig. 11 (burst 20→300 at T710, afternoon decline
//!   T800–T1200, evening rise T1200–T1400),
//! * [`dockerfiles`] — a Zipf-weighted sampler over the base-image/config
//!   catalogue for the Fig. 2 popularity and configuration shares.
//!
//! A workload is a time-ordered [`Vec<Arrival>`]; each [`Arrival`] names the
//! *runtime configuration id* it needs (HotC maps ids to full
//! `ContainerConfig`s), so generators stay decoupled from the container
//! engine.

pub mod azure;
pub mod dockerfiles;
pub mod patterns;
pub mod trace;
pub mod youtube;

pub use azure::{azure_workload, AzureWorkloadParams, FunctionClass};
pub use dockerfiles::{DockerfileSurvey, ProjectConfig};
pub use patterns::{
    burst, exponential_ramp, linear_ramp, parallel_clients, poisson, serial, Direction,
};
pub use trace::{
    azure_csv_trace, azure_trace, drain, multi_tenant_trace, synth_trace, ConfigModulo, MergeTrace,
    OpenDcTrace, PartitionTrace, SynthShape, SynthSpec, Trace, VecTrace, ZipfSampler,
};
pub use youtube::{youtube_trace, YoutubeTraceParams};

use simclock::SimTime;

/// One request arrival: when it hits the gateway and which runtime
/// configuration it needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant at the gateway.
    pub at: SimTime,
    /// Runtime configuration id (same id ⇒ same container runtime type).
    pub config_id: usize,
}

/// Validates that a workload is time-ordered (generators guarantee this; the
/// drivers debug-assert it).
pub fn is_time_ordered(workload: &[Arrival]) -> bool {
    workload.windows(2).all(|w| w[0].at <= w[1].at)
}

/// Groups a workload into per-interval demand counts for a given config id —
/// the series the predictor consumes.
pub fn demand_series(
    workload: &[Arrival],
    config_id: usize,
    interval: simclock::SimDuration,
    horizon: SimTime,
) -> Vec<f64> {
    assert!(!interval.is_zero(), "interval must be positive");
    let nbins = horizon.duration_since(SimTime::ZERO).div_duration(interval) as usize;
    let mut counts = vec![0.0; nbins];
    for a in workload {
        if a.config_id != config_id || a.at >= horizon {
            continue;
        }
        let bin = a.at.duration_since(SimTime::ZERO).div_duration(interval) as usize;
        if bin < nbins {
            counts[bin] += 1.0;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;

    #[test]
    fn time_ordering_check() {
        let t = |s| SimTime::from_secs(s);
        let ok = vec![
            Arrival {
                at: t(1),
                config_id: 0,
            },
            Arrival {
                at: t(1),
                config_id: 1,
            },
            Arrival {
                at: t(2),
                config_id: 0,
            },
        ];
        assert!(is_time_ordered(&ok));
        let bad = vec![
            Arrival {
                at: t(2),
                config_id: 0,
            },
            Arrival {
                at: t(1),
                config_id: 0,
            },
        ];
        assert!(!is_time_ordered(&bad));
    }

    #[test]
    fn demand_series_bins_by_config() {
        let t = |s| SimTime::from_secs(s);
        let w = vec![
            Arrival {
                at: t(0),
                config_id: 0,
            },
            Arrival {
                at: t(0),
                config_id: 1,
            },
            Arrival {
                at: t(5),
                config_id: 0,
            },
            Arrival {
                at: t(11),
                config_id: 0,
            },
        ];
        let series = demand_series(&w, 0, SimDuration::from_secs(10), t(20));
        assert_eq!(series, vec![2.0, 1.0]);
        let series1 = demand_series(&w, 1, SimDuration::from_secs(10), t(20));
        assert_eq!(series1, vec![1.0, 0.0]);
    }
}
