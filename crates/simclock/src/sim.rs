//! Single-threaded discrete-event simulation driver.
//!
//! [`Simulation`] owns a virtual clock, an event queue of boxed closures, and
//! a user-supplied state value. Events receive a [`Scheduler`] handle (to
//! read the clock and schedule follow-up events) and `&mut` access to the
//! state. This is the engine behind every figure experiment in the
//! reproduction harness.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

type Event<S> = Box<dyn FnOnce(&mut Scheduler<S>, &mut S)>;

/// Handle passed to executing events; lets them observe the clock and enqueue
/// further events without owning the whole simulation.
pub struct Scheduler<S> {
    now: SimTime,
    pending: Vec<(SimTime, Event<S>)>,
}

impl<S> Scheduler<S> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to run at the absolute instant `at`. Events in the
    /// past are clamped to "now" (they run next, after already-queued events
    /// at the current instant).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) {
        let at = at.max(self.now);
        self.pending.push((at, Box::new(event)));
    }

    /// Schedules `event` to run `delay` after the current instant.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) {
        self.schedule_at(self.now + delay, event);
    }
}

/// A deterministic, single-threaded discrete-event simulation.
pub struct Simulation<S> {
    queue: EventQueue<Event<S>>,
    now: SimTime,
    state: S,
    executed: u64,
}

impl<S> Simulation<S> {
    /// Creates a simulation at t=0 with the given state.
    pub fn new(state: S) -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            state,
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Immutable access to the simulation state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the simulation state (between runs).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the simulation, returning its state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Schedules an event at an absolute instant (clamped to now).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) {
        self.queue.push(at.max(self.now), Box::new(event));
    }

    /// Schedules an event `delay` from the current instant.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) {
        self.schedule_at(self.now + delay, event);
    }

    /// Runs a single event; returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue returned a past event");
        self.now = at;
        let mut scheduler = Scheduler {
            now: at,
            pending: Vec::new(),
        };
        event(&mut scheduler, &mut self.state);
        for (t, e) in scheduler.pending {
            self.queue.push(t, e);
        }
        self.executed += 1;
        true
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or the clock passes `deadline`; events
    /// scheduled after the deadline remain queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > deadline {
                break;
            }
            self.step();
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so repeated run_until calls observe monotonic time.
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Number of queued (not yet executed) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_order_and_advance_clock() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_in(SimDuration::from_millis(20), |s, log| {
            log.push(s.now().as_millis())
        });
        sim.schedule_in(SimDuration::from_millis(10), |s, log| {
            log.push(s.now().as_millis())
        });
        sim.run();
        assert_eq!(*sim.state(), vec![10, 20]);
        assert_eq!(sim.now().as_millis(), 20);
        assert_eq!(sim.executed(), 2);
    }

    #[test]
    fn events_can_chain() {
        let mut sim = Simulation::new(0u64);
        fn tick(s: &mut Scheduler<u64>, n: &mut u64) {
            *n += 1;
            if *n < 5 {
                s.schedule_in(SimDuration::from_secs(1), tick);
            }
        }
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run();
        assert_eq!(*sim.state(), 5);
        assert_eq!(sim.now().as_secs(), 4);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_in(SimDuration::from_secs(10), |s, log| {
            // Deliberately schedule "in the past"; it must still run, at now.
            s.schedule_at(SimTime::ZERO, |s2, log2: &mut Vec<u64>| {
                log2.push(s2.now().as_secs())
            });
            log.push(s.now().as_secs());
        });
        sim.run();
        assert_eq!(*sim.state(), vec![10, 10]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(0u32);
        for i in 1..=10 {
            sim.schedule_at(SimTime::from_secs(i), |_, n| *n += 1);
        }
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(*sim.state(), 5);
        assert_eq!(sim.pending(), 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run();
        assert_eq!(*sim.state(), 10);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim = Simulation::new(());
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut sim = Simulation::new(());
        assert!(!sim.step());
    }

    #[test]
    fn fifo_for_simultaneous_events() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        for i in 0..50 {
            sim.schedule_at(SimTime::from_secs(1), move |_, log| log.push(i));
        }
        sim.run();
        assert_eq!(*sim.state(), (0..50).collect::<Vec<_>>());
    }
}
