//! Builds and runs a parsed [`Scenario`], producing a [`ScenarioReport`].

use crate::scenario::{FunctionDecl, ProviderSpec, Scenario, WorkloadSpec};
use containersim::{ContainerEngine, LanguageRuntime};
use faas::gateway::Gateway;
use faas::{
    AppProfile, ColdStartAlways, FixedKeepAlive, FunctionSpec, HybridKeepAlive, PeriodicWarmup,
};
use hotc::{HotC, HotCConfig, KeyPolicy};
use hotc_bench::run_workload;
use metrics_lite::{LatencyRecorder, Table};
use workloads::patterns::{self, Direction};
use workloads::youtube::{expand_to_arrivals, youtube_trace, YoutubeTraceParams};
use workloads::Arrival;

/// The outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Requests served.
    pub requests: usize,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// p99 latency (ms).
    pub p99_ms: f64,
    /// Fraction of requests that cold-started.
    pub cold_fraction: f64,
    /// Fraction of requests that failed (fault injection).
    pub failed_fraction: f64,
    /// Live containers at the end of the run.
    pub live_at_end: usize,
    /// Provider background work (virtual seconds).
    pub background_s: f64,
    /// Per-request latencies (ms), arrival order.
    pub latencies_ms: Vec<f64>,
    /// Full telemetry snapshot taken at the end of the run (counters,
    /// stage histograms, pool series) — exported by `--metrics-out`.
    pub metrics: metrics_lite::MetricsSnapshot,
}

impl ScenarioReport {
    /// Renders the report as text tables.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        if verbose {
            let labels: Vec<String> = (0..self.latencies_ms.len())
                .map(|i| format!("r{i:03}"))
                .collect();
            out.push_str(&metrics_lite::render_series(
                "per-request latency (ms)",
                &labels,
                &self.latencies_ms,
                48,
            ));
            out.push('\n');
        }
        let mut table = Table::new(
            "scenario summary",
            &[
                "requests",
                "mean_ms",
                "p50_ms",
                "p99_ms",
                "cold_frac",
                "failed_frac",
                "live_at_end",
                "background_s",
            ],
        );
        table.row(&[
            self.requests.to_string(),
            format!("{:.1}", self.mean_ms),
            format!("{:.1}", self.p50_ms),
            format!("{:.1}", self.p99_ms),
            format!("{:.3}", self.cold_fraction),
            format!("{:.3}", self.failed_fraction),
            self.live_at_end.to_string(),
            format!("{:.2}", self.background_s),
        ]);
        out.push_str(&table.render());
        out
    }
}

fn build_app(decl: &FunctionDecl) -> Result<AppProfile, String> {
    Ok(match decl.app.as_str() {
        "random-number" => AppProfile::random_number(),
        "qr-code" => AppProfile::qr_code(decl.lang),
        "s3-download" => AppProfile::s3_download(decl.lang),
        "v3-app" => AppProfile::v3_app(),
        "tf-api-app" => AppProfile::tf_api_app(),
        "cassandra" => AppProfile::cassandra(),
        other => return Err(format!("unknown app '{other}'")),
    })
}

fn build_workload(spec: &WorkloadSpec, functions: usize, seed: u64) -> Vec<Arrival> {
    match spec {
        WorkloadSpec::Serial { count, interval } => patterns::serial(*interval, *count, 0),
        WorkloadSpec::Parallel {
            threads,
            per_thread,
            interval,
        } => patterns::parallel_clients(*threads, *per_thread, *interval),
        WorkloadSpec::Linear {
            increasing,
            start,
            step,
            rounds,
            round,
        } => patterns::linear_ramp(
            if *increasing {
                Direction::Increasing
            } else {
                Direction::Decreasing
            },
            *start,
            *step,
            *rounds,
            *round,
            0,
        ),
        WorkloadSpec::Exponential {
            increasing,
            rounds,
            round,
        } => patterns::exponential_ramp(
            if *increasing {
                Direction::Increasing
            } else {
                Direction::Decreasing
            },
            *rounds,
            *round,
            0,
        ),
        WorkloadSpec::Burst {
            base,
            factor,
            burst_at,
            rounds,
            round,
        } => patterns::burst(*base, *factor, burst_at, *rounds, *round, 0),
        WorkloadSpec::Poisson {
            rate,
            duration,
            zipf,
        } => patterns::poisson(*rate, *duration, functions.max(1), *zipf, seed),
        WorkloadSpec::Azure {
            functions: population,
            duration,
        } => {
            let params = workloads::azure::AzureWorkloadParams {
                functions: *population,
                duration: *duration,
                seed,
                ..Default::default()
            };
            let (mut arrivals, _) = workloads::azure::azure_workload(&params);
            // Cycle the synthetic population onto the declared functions.
            for a in &mut arrivals {
                a.config_id %= functions.max(1);
            }
            arrivals
        }
        WorkloadSpec::Youtube {
            scale,
            index,
            length,
        } => {
            let params = YoutubeTraceParams {
                length: *length,
                seed,
                ..Default::default()
            };
            let rates: Vec<f64> = youtube_trace(&params)
                .into_iter()
                .map(|r| r / scale.max(1e-9))
                .collect();
            expand_to_arrivals(&rates, *index, 0, seed)
        }
    }
}

fn run_with_provider<P: faas::RuntimeProvider + 'static>(
    provider: P,
    scenario: &Scenario,
    workload: &[Arrival],
) -> Result<ScenarioReport, String> {
    let mut engine = ContainerEngine::with_local_images(scenario.hardware.clone());
    if scenario.crash_rate > 0.0 {
        engine.set_fault_injection(scenario.crash_rate, scenario.seed);
    }
    let mut gateway = Gateway::new(engine, provider);
    for decl in &scenario.functions {
        let app = build_app(decl)?;
        let mut config = app.config_with_network(decl.network);
        for (k, v) in &decl.env {
            config.exec.env.insert(k.clone(), v.clone());
        }
        gateway.register(
            FunctionSpec::from_app(app)
                .named(decl.name.clone())
                .with_config(config),
        );
    }

    let names: Vec<String> = scenario.functions.iter().map(|f| f.name.clone()).collect();
    let out = run_workload(
        gateway,
        workload,
        move |config_id| names[config_id % names.len()].clone(),
        scenario.tick,
    );

    let mut recorder = LatencyRecorder::new();
    let mut failed = 0usize;
    for t in &out.traces {
        recorder.record(t.total());
        if t.failed {
            failed += 1;
        }
    }
    let metrics = out.gateway.metrics().snapshot();
    Ok(ScenarioReport {
        requests: out.traces.len(),
        mean_ms: recorder.mean().as_millis_f64(),
        p50_ms: recorder.median().as_millis_f64(),
        p99_ms: recorder.percentile(0.99).as_millis_f64(),
        cold_fraction: out.cold_fraction(),
        failed_fraction: failed as f64 / out.traces.len().max(1) as f64,
        live_at_end: out.gateway.engine().live_count(),
        background_s: out.gateway.provider().background_cost().as_secs_f64(),
        latencies_ms: out
            .traces
            .iter()
            .map(|t| t.total().as_millis_f64())
            .collect(),
        metrics,
    })
}

/// Runs a scenario end to end.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let workload = build_workload(&scenario.workload, scenario.functions.len(), scenario.seed);
    if workload.is_empty() {
        return Err("workload generated no arrivals".to_string());
    }
    match &scenario.provider {
        ProviderSpec::HotC => run_with_provider(HotC::with_defaults(), scenario, &workload),
        ProviderSpec::HotCFuzzy => run_with_provider(
            HotC::new(HotCConfig {
                key_policy: KeyPolicy::Fuzzy,
                ..Default::default()
            }),
            scenario,
            &workload,
        ),
        ProviderSpec::ColdStart => run_with_provider(ColdStartAlways::new(), scenario, &workload),
        ProviderSpec::FixedKeepAlive(ttl) => {
            run_with_provider(FixedKeepAlive::new(*ttl), scenario, &workload)
        }
        ProviderSpec::PeriodicWarmup(period) => {
            run_with_provider(PeriodicWarmup::new(*period), scenario, &workload)
        }
        ProviderSpec::HybridKeepAlive => {
            run_with_provider(HybridKeepAlive::new(), scenario, &workload)
        }
    }
}

/// Convenience: language runtime names accepted by the scenario format (for
/// error messages and docs).
pub fn supported_languages() -> &'static [&'static str] {
    &["python", "go", "java", "nodejs", "ruby", "native"]
}

/// Convenience: app names accepted by the scenario format.
pub fn supported_apps() -> &'static [&'static str] {
    &[
        "random-number",
        "qr-code",
        "s3-download",
        "v3-app",
        "tf-api-app",
        "cassandra",
    ]
}

/// Maps a language name to its runtime (used by docs/tests).
pub fn language_by_name(name: &str) -> Option<LanguageRuntime> {
    Some(match name {
        "python" => LanguageRuntime::Python,
        "go" => LanguageRuntime::Go,
        "java" => LanguageRuntime::Java,
        "nodejs" | "node" => LanguageRuntime::NodeJs,
        "ruby" => LanguageRuntime::Ruby,
        "native" => LanguageRuntime::Native,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DEMO_SCENARIO;

    #[test]
    fn demo_scenario_runs() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        // 18 rounds × 8 + 4 bursts × 72 extra = 144 + 288 = 432 requests.
        assert_eq!(report.requests, 8 * 18 + 4 * 72);
        assert!(report.cold_fraction < 0.5);
        assert!(report.mean_ms > 0.0);
        assert_eq!(report.failed_fraction, 0.0);
    }

    #[test]
    fn cold_start_scenario_all_cold() {
        let text = DEMO_SCENARIO.replace("provider = hotc", "provider = cold-start");
        let scenario = Scenario::parse(&text).unwrap();
        let report = run_scenario(&scenario).unwrap();
        assert!((report.cold_fraction - 1.0).abs() < 1e-9);
        assert_eq!(report.live_at_end, 0);
    }

    #[test]
    fn crash_rate_flows_through() {
        let text = DEMO_SCENARIO.replace("seed     = 42", "seed = 42\ncrash_rate = 0.3");
        let scenario = Scenario::parse(&text).unwrap();
        assert!((scenario.crash_rate - 0.3).abs() < 1e-12);
        let report = run_scenario(&scenario).unwrap();
        assert!(report.failed_fraction > 0.15, "{}", report.failed_fraction);
    }

    #[test]
    fn unknown_app_is_a_runner_error() {
        let text = DEMO_SCENARIO.replace("app     = qr-code", "app = warp-drive");
        let scenario = Scenario::parse(&text).unwrap();
        let err = run_scenario(&scenario).unwrap_err();
        assert!(err.contains("warp-drive"));
    }

    #[test]
    fn multi_function_poisson_scenario() {
        let text = "\
provider = hotc
seed = 5

[function alpha]
app = qr-code
lang = python

[function beta]
app = qr-code
lang = go

[workload]
pattern = poisson
rate = 2.0
duration = 120s
";
        let scenario = Scenario::parse(text).unwrap();
        let report = run_scenario(&scenario).unwrap();
        assert!(report.requests > 100);
        assert!(report.cold_fraction < 0.2);
    }

    #[test]
    fn report_metrics_reconcile_with_summary() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        let snap = &report.metrics;
        assert_eq!(
            snap.counter("gateway/requests"),
            Some(report.requests as u64)
        );
        let cold = snap.counter("gateway/cold_starts").unwrap() as f64;
        assert!((cold / report.requests as f64 - report.cold_fraction).abs() < 1e-9);
        // The stage decomposition covers every request and sums to the
        // recorded e2e totals.
        let total_ns: u64 = report
            .latencies_ms
            .iter()
            .map(|ms| (ms * 1_000_000.0).round() as u64)
            .sum();
        assert_eq!(
            snap.stage_count("all", metrics_lite::Stage::Exec),
            report.requests as u64
        );
        assert_eq!(snap.scope_total_ns("all"), total_ns);
        // Cold starts ran the runtime-init stage at least once.
        assert!(snap.stage_count("all", metrics_lite::Stage::RuntimeInit) > 0);
    }

    #[test]
    fn report_renders() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        let text = report.render(false);
        assert!(text.contains("scenario summary"));
        let verbose = report.render(true);
        assert!(verbose.contains("per-request latency"));
    }
}
