//! Figure 14: exponential flows and request bursts.
//!
//! (a) requests double every round (2^i): at least half of each round's
//!     requests can reuse the previous round's runtimes; decreasing flows
//!     always find hot runtimes after the peak.
//! (b) bursts: 8 requests per round with ×10 bursts at rounds 4/8/12/16 —
//!     the first burst only improves ≈9 % (only the steady-state pool is
//!     warm), later bursts improve by up to ≈73 % (capacity retained from
//!     earlier bursts plus prediction).

use crate::driver::run_workload;
use crate::experiments::{reduction_pct, server_gateway};
use faas::policy::ColdStartAlways;
use faas::AppProfile;
use hotc::HotC;
use metrics_lite::Table;
use simclock::{SimDuration, SimTime};
use workloads::patterns::{burst, exponential_ramp, Direction};
use workloads::Arrival;

/// Per-round reuse summary for the exponential flows.
pub struct ExpEval {
    /// Requests per round.
    pub counts: Vec<usize>,
    /// Fraction of each round's requests served from warm runtimes (HotC).
    pub reuse_fraction: Vec<f64>,
}

/// Per-burst-round latency comparison.
pub struct BurstEval {
    /// The burst round indices.
    pub burst_rounds: Vec<usize>,
    /// Mean latency in each burst round, default backend (ms).
    pub default_ms: Vec<f64>,
    /// Mean latency in each burst round, HotC (ms).
    pub hotc_ms: Vec<f64>,
}

impl BurstEval {
    /// Reduction per burst (paper: ≈9 % first, up to ≈73 % later).
    pub fn reductions_pct(&self) -> Vec<f64> {
        self.default_ms
            .iter()
            .zip(&self.hotc_ms)
            .map(|(&d, &h)| reduction_pct(d, h))
            .collect()
    }
}

/// Result of the Fig. 14 experiment.
pub struct Fig14Result {
    /// Exponential increasing flow.
    pub exp_increasing: ExpEval,
    /// Exponential decreasing flow.
    pub exp_decreasing: ExpEval,
    /// Burst comparison.
    pub bursts: BurstEval,
}

const ROUND: SimDuration = SimDuration::from_secs(30);

fn round_of(a: &Arrival) -> usize {
    a.at.duration_since(SimTime::ZERO).div_duration(ROUND) as usize
}

fn exp_eval(direction: Direction, rounds: u32) -> ExpEval {
    let workload = exponential_ramp(direction, rounds, ROUND, 0);
    let apps = [AppProfile::qr_code(containersim::LanguageRuntime::Python)];
    let out = run_workload(
        server_gateway(HotC::with_defaults(), &apps),
        &workload,
        |_| "qr-code".to_string(),
        ROUND,
    );
    let n_rounds = rounds as usize;
    let mut counts = vec![0usize; n_rounds];
    let mut warm = vec![0usize; n_rounds];
    for (a, t) in workload.iter().zip(&out.traces) {
        let r = round_of(a);
        counts[r] += 1;
        if !t.cold {
            warm[r] += 1;
        }
    }
    ExpEval {
        reuse_fraction: warm
            .iter()
            .zip(&counts)
            .map(|(&w, &c)| if c > 0 { w as f64 / c as f64 } else { 0.0 })
            .collect(),
        counts,
    }
}

/// Runs both panels.
pub fn run() -> Fig14Result {
    let exp_increasing = exp_eval(Direction::Increasing, 7);
    let exp_decreasing = exp_eval(Direction::Decreasing, 7);

    // Fig 14(b): 18 rounds of 8 requests, ×10 bursts at rounds 4/8/12/16.
    let burst_rounds = vec![4usize, 8, 12, 16];
    let workload = burst(8, 10, &burst_rounds, 18, ROUND, 0);
    let apps = [AppProfile::qr_code(containersim::LanguageRuntime::Python)];
    let route = |_| "qr-code".to_string();

    let d = run_workload(
        server_gateway(ColdStartAlways::new(), &apps),
        &workload,
        route,
        ROUND,
    );
    let h = run_workload(
        server_gateway(HotC::with_defaults(), &apps),
        &workload,
        route,
        ROUND,
    );

    let mut default_ms = Vec::new();
    let mut hotc_ms = Vec::new();
    for &br in &burst_rounds {
        let mean = |traces: &[faas::RequestTrace]| {
            let in_round: Vec<f64> = workload
                .iter()
                .zip(traces)
                .filter(|(a, _)| round_of(a) == br)
                .map(|(_, t)| t.total().as_millis_f64())
                .collect();
            in_round.iter().sum::<f64>() / in_round.len() as f64
        };
        default_ms.push(mean(&d.traces));
        hotc_ms.push(mean(&h.traces));
    }

    Fig14Result {
        exp_increasing,
        exp_decreasing,
        bursts: BurstEval {
            burst_rounds,
            default_ms,
            hotc_ms,
        },
    }
}

impl Fig14Result {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, eval) in [
            (
                "Fig 14(a): exponential increasing (2^i per round), HotC reuse",
                &self.exp_increasing,
            ),
            (
                "Fig 14(a): exponential decreasing, HotC reuse",
                &self.exp_decreasing,
            ),
        ] {
            let mut table = Table::new(label, &["round", "requests", "reuse_fraction"]);
            for r in 0..eval.counts.len() {
                table.row(&[
                    r.to_string(),
                    eval.counts[r].to_string(),
                    format!("{:.2}", eval.reuse_fraction[r]),
                ]);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out.push_str(
            "(paper: at least half of each increasing round reuses the previous wave)\n\n",
        );

        let mut table = Table::new(
            "Fig 14(b): request bursts (×10 at rounds 4/8/12/16)",
            &["burst_round", "default_ms", "hotc_ms", "reduction_%"],
        );
        for (i, &br) in self.bursts.burst_rounds.iter().enumerate() {
            table.row(&[
                br.to_string(),
                format!("{:.1}", self.bursts.default_ms[i]),
                format!("{:.1}", self.bursts.hotc_ms[i]),
                format!("{:.1}", self.bursts.reductions_pct()[i]),
            ]);
        }
        out.push_str(&table.render());
        out.push_str("(paper: ≈9% at the first burst, up to ≈73% at later bursts)\n");
        out
    }
}
