//! Hardware profiles: the paper's two testbeds as cost-model multipliers.
//!
//! §V-A: a Dell PowerEdge T430 (dual 10-core Xeon E5-2640 2.6 GHz, 64 GB RAM,
//! gigabit NIC) and a Raspberry Pi 3 (quad-core 1.2 GHz BCM2837, 1 GB RAM).
//! §V-B observes that on the Pi "the normal execution time of the same
//! application prolongs more than 10 times" which "makes the cold start
//! impact less significant among the total execution time" — exactly the
//! behaviour a compute multiplier reproduces.

use simclock::SimDuration;

/// A hardware platform, expressed as multipliers over the reference server
/// cost model in [`crate::costmodel`].
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Human-readable platform name.
    pub name: String,
    /// Multiplier on application compute time (1.0 = PowerEdge T430).
    pub cpu_factor: f64,
    /// Multiplier on container control-plane operations (create/stop/remove,
    /// volume operations). Slower storage and single-channel memory make
    /// these worse on edge boards, but less than raw compute.
    pub control_factor: f64,
    /// Multiplier on network setup operations.
    pub net_factor: f64,
    /// Multiplier on image pull/unpack (storage + NIC bound).
    pub io_factor: f64,
    /// Total physical memory in bytes.
    pub mem_bytes: u64,
    /// Swap space in bytes.
    pub swap_bytes: u64,
    /// Number of logical cores.
    pub cores: u32,
}

impl HardwareProfile {
    /// The paper's cloud server: Dell PowerEdge T430, dual 10-core Xeon
    /// E5-2640 2.6 GHz, 64 GB memory, gigabit network.
    pub fn server() -> Self {
        HardwareProfile {
            name: "PowerEdge-T430".to_string(),
            cpu_factor: 1.0,
            control_factor: 1.0,
            net_factor: 1.0,
            io_factor: 1.0,
            mem_bytes: 64 * 1024 * 1024 * 1024,
            swap_bytes: 8 * 1024 * 1024 * 1024,
            cores: 20,
        }
    }

    /// The paper's edge device: Raspberry Pi 3, quad-core 1.2 GHz BCM2837,
    /// 1 GB memory, 32 GB SD storage. Compute ≈ 10× slower than the server
    /// (§V-B), control plane ≈ 4×, network setup ≈ 3×, storage I/O ≈ 8×.
    pub fn raspberry_pi3() -> Self {
        HardwareProfile {
            name: "RaspberryPi-3".to_string(),
            cpu_factor: 10.5,
            control_factor: 4.0,
            net_factor: 3.0,
            io_factor: 8.0,
            mem_bytes: 1024 * 1024 * 1024,
            swap_bytes: 512 * 1024 * 1024,
            cores: 4,
        }
    }

    /// Nvidia Jetson TX2 (§III-A evaluates OpenFaaS on it): faster than a Pi,
    /// slower than the server.
    pub fn jetson_tx2() -> Self {
        HardwareProfile {
            name: "Jetson-TX2".to_string(),
            cpu_factor: 4.0,
            control_factor: 2.0,
            net_factor: 1.8,
            io_factor: 3.0,
            mem_bytes: 8 * 1024 * 1024 * 1024,
            swap_bytes: 2 * 1024 * 1024 * 1024,
            cores: 6,
        }
    }

    /// Scales an application-compute duration.
    pub fn compute(&self, base: SimDuration) -> SimDuration {
        base.mul_f64(self.cpu_factor)
    }

    /// Scales a container control-plane duration.
    pub fn control(&self, base: SimDuration) -> SimDuration {
        base.mul_f64(self.control_factor)
    }

    /// Scales a network-setup duration.
    pub fn network(&self, base: SimDuration) -> SimDuration {
        base.mul_f64(self.net_factor)
    }

    /// Scales an image pull/unpack duration.
    pub fn io(&self, base: SimDuration) -> SimDuration {
        base.mul_f64(self.io_factor)
    }
}

impl Default for HardwareProfile {
    fn default() -> Self {
        HardwareProfile::server()
    }
}

impl stdshim::ToJson for HardwareProfile {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::object([
            ("name", self.name.to_json()),
            ("cpu_factor", self.cpu_factor.to_json()),
            ("control_factor", self.control_factor.to_json()),
            ("net_factor", self.net_factor.to_json()),
            ("io_factor", self.io_factor.to_json()),
            ("mem_bytes", self.mem_bytes.to_json()),
            ("swap_bytes", self.swap_bytes.to_json()),
            ("cores", self.cores.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_is_reference() {
        let hw = HardwareProfile::server();
        let d = SimDuration::from_millis(100);
        assert_eq!(hw.compute(d), d);
        assert_eq!(hw.control(d), d);
        assert_eq!(hw.network(d), d);
        assert_eq!(hw.io(d), d);
    }

    #[test]
    fn pi_compute_is_10x_slower() {
        let pi = HardwareProfile::raspberry_pi3();
        let d = SimDuration::from_millis(100);
        let scaled = pi.compute(d);
        // §V-B: "prolongs more than 10 times".
        assert!(scaled >= d.mul_f64(10.0));
        assert!(scaled <= d.mul_f64(12.0));
    }

    #[test]
    fn pi_cold_start_fraction_shrinks() {
        // On the Pi, compute slows down more than control-plane work, so the
        // cold start's *share* of total time shrinks — the paper's stated
        // reason HotC's relative gain is smaller on the edge.
        let server = HardwareProfile::server();
        let pi = HardwareProfile::raspberry_pi3();
        let cold = SimDuration::from_millis(700);
        let exec = SimDuration::from_millis(1000);
        let share = |hw: &HardwareProfile| {
            let c = hw.control(cold).as_secs_f64();
            let e = hw.compute(exec).as_secs_f64();
            c / (c + e)
        };
        assert!(share(&pi) < share(&server));
    }

    #[test]
    fn ordering_of_platforms() {
        let s = HardwareProfile::server();
        let j = HardwareProfile::jetson_tx2();
        let p = HardwareProfile::raspberry_pi3();
        assert!(s.cpu_factor < j.cpu_factor && j.cpu_factor < p.cpu_factor);
        assert!(s.mem_bytes > j.mem_bytes && j.mem_bytes > p.mem_bytes);
    }
}
