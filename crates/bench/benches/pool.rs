//! Micro-benchmarks of HotC's control-plane hot path: the real CPU cost of
//! the pool bookkeeping that sits on every request (the paper's "negligible
//! overhead" claim, §V-E).

use containersim::engine::ExecWork;
use containersim::{ContainerConfig, ContainerEngine, HardwareProfile, ImageId};
use hotc::{ContainerPool, KeyPolicy, RuntimeKey};
use hotc_bench::Harness;
use simclock::{SimDuration, SimTime};
use std::hint::black_box;

fn configs(n: usize) -> Vec<ContainerConfig> {
    let images = [
        "python:3.8-alpine",
        "golang:1.13",
        "node:12-alpine",
        "openjdk:8-jre",
    ];
    (0..n)
        .map(|i| {
            let mut c = ContainerConfig::bridge(ImageId::parse(images[i % images.len()]));
            c.exec.env.insert("SHARD".into(), i.to_string());
            c
        })
        .collect()
}

fn bench_key_canonicalization(h: &mut Harness) {
    let config = &configs(1)[0];
    h.bench("key/exact_from_config", || {
        RuntimeKey::from_config(black_box(config), KeyPolicy::Exact)
    });
    h.bench("key/fuzzy_from_config", || {
        RuntimeKey::from_config(black_box(config), KeyPolicy::Fuzzy)
    });
    // The steady-state replacement for the formatting above: a re-intern of
    // a known configuration hashes the key-relevant fields and returns the
    // u32 id — no string is built, nothing is allocated.
    let pool = hotc::ShardedPool::new(KeyPolicy::Exact);
    let id = pool.intern_config(config);
    h.bench("key/intern_hit", || {
        assert_eq!(id, pool.intern_config(black_box(config)));
    });
}

fn bench_acquire_release_reuse(h: &mut Harness) {
    // Steady-state: the container exists and is available; measure the pure
    // bookkeeping of Algorithm 1 + Algorithm 2 (reuse path).
    let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut pool = ContainerPool::new(KeyPolicy::Exact);
    let config = &configs(1)[0];
    pool.prewarm(&mut engine, config, SimTime::ZERO).unwrap();
    let work = ExecWork::light(SimDuration::from_millis(1));

    let mut now = SimTime::ZERO;
    h.bench("acquire_exec_release_reuse", || {
        now += SimDuration::from_millis(10);
        let acq = pool.acquire(&mut engine, config, now).unwrap();
        assert!(!acq.cold);
        let out = engine.begin_exec(acq.container, work, now).unwrap();
        engine.end_exec(acq.container, now + out.latency).unwrap();
        pool.release(&mut engine, acq.container, now).unwrap();
    });
}

fn bench_acquire_many_types(h: &mut Harness) {
    // 100 distinct runtime types warm in the pool: lookup cost at scale.
    let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut pool = ContainerPool::new(KeyPolicy::Exact);
    let configs = configs(100);
    for config in &configs {
        pool.prewarm(&mut engine, config, SimTime::ZERO).unwrap();
    }
    let work = ExecWork::light(SimDuration::from_millis(1));
    let mut i = 0usize;
    let mut now = SimTime::ZERO;
    h.bench("reuse_among_100_types", || {
        i = (i + 7) % configs.len();
        now += SimDuration::from_millis(10);
        let acq = pool.acquire(&mut engine, &configs[i], now).unwrap();
        let out = engine.begin_exec(acq.container, work, now).unwrap();
        engine.end_exec(acq.container, now + out.latency).unwrap();
        pool.release(&mut engine, acq.container, now).unwrap();
    });
}

fn bench_cold_create_and_remove(h: &mut Harness) {
    // The cold path's bookkeeping (engine create + pool insert + teardown).
    let config = configs(1).remove(0);
    h.bench_with_setup(
        "cold_create_then_evict",
        || {
            let engine = ContainerEngine::with_local_images(HardwareProfile::server());
            (engine, ContainerPool::new(KeyPolicy::Exact))
        },
        |(mut engine, mut pool)| {
            for i in 0..8u64 {
                pool.prewarm(&mut engine, &config, SimTime::from_secs(i))
                    .unwrap();
            }
            while pool
                .evict_oldest(&mut engine, SimTime::from_secs(100))
                .unwrap()
                .is_some()
            {}
            black_box(pool.total_live())
        },
    );
}

fn main() {
    let mut h = Harness::new("pool");
    bench_key_canonicalization(&mut h);
    bench_acquire_release_reuse(&mut h);
    bench_acquire_many_types(&mut h);
    bench_cold_create_and_remove(&mut h);
    h.finish();
}
