//! Resource guardrails for the live pool (§IV-B "Container Runtime Pool").
//!
//! "In our current design, we set the maximum number of live containers to
//! 500 and the memory usage threshold as 80 % in the host. We used a
//! heuristic method to identify the memory pressure through monitoring
//! used_mem and used_swap in the kernel. If there exist too many containers
//! or fewer resources, the oldest live container is forcibly terminated."

use crate::pool::ContainerPool;
use crate::shard::{EngineRef, ExclusiveEngine, ShardedPool};
use containersim::{ContainerEngine, EngineError};
use simclock::{SimDuration, SimTime};

/// Pool resource limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolLimits {
    /// Maximum live containers in the pool (paper: 500).
    pub max_live: usize,
    /// Host memory-pressure threshold in `[0, 1]` over
    /// `(used_mem + used_swap) / physical` (paper: 0.8).
    pub mem_threshold: f64,
}

impl Default for PoolLimits {
    fn default() -> Self {
        PoolLimits {
            max_live: 500,
            mem_threshold: 0.8,
        }
    }
}

impl PoolLimits {
    /// Creates explicit limits.
    pub fn new(max_live: usize, mem_threshold: f64) -> Self {
        assert!(max_live >= 1, "pool must allow at least one container");
        assert!(
            (0.0..=1.5).contains(&mem_threshold),
            "threshold must be a sane fraction"
        );
        PoolLimits {
            max_live,
            mem_threshold,
        }
    }

    /// Whether the pool/host currently violates a limit.
    pub fn violated(&self, pool: &ContainerPool, engine: &ContainerEngine) -> bool {
        pool.total_live() > self.max_live || engine.host().memory_pressure() > self.mem_threshold
    }

    /// Evicts oldest-first until limits hold (or no available container
    /// remains to evict — in-flight containers are never killed). Returns
    /// the accumulated teardown cost.
    pub fn enforce(
        &self,
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        self.enforce_sharded(pool.sharded(), &ExclusiveEngine::new(engine), now)
    }

    /// [`Self::enforce`], also reporting how many containers were evicted —
    /// see [`Self::enforce_sharded_counted`].
    pub fn enforce_counted(
        &self,
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        now: SimTime,
    ) -> Result<(SimDuration, usize), EngineError> {
        self.enforce_sharded_counted(pool.sharded(), &ExclusiveEngine::new(engine), now)
    }

    /// Sharded variant of [`Self::violated`]. Reads the pool's live count
    /// (one shard lock at a time) and the host memory pressure (engine lock)
    /// sequentially — the two locks are never nested.
    pub fn violated_sharded(&self, pool: &ShardedPool, engine: &impl EngineRef) -> bool {
        pool.total_live() > self.max_live
            || engine.with_engine(|e| e.host().memory_pressure()) > self.mem_threshold
    }

    /// Sharded variant of [`Self::enforce`]: two-phase oldest-first eviction
    /// until limits hold or no available container remains.
    pub fn enforce_sharded(
        &self,
        pool: &ShardedPool,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        self.enforce_sharded_counted(pool, engine, now)
            .map(|(cost, _)| cost)
    }

    /// [`Self::enforce_sharded`], also reporting how many containers were
    /// evicted — the telemetry layer counts forced evictions separately from
    /// controller-driven retires.
    pub fn enforce_sharded_counted(
        &self,
        pool: &ShardedPool,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<(SimDuration, usize), EngineError> {
        let mut cost = SimDuration::ZERO;
        let mut evicted = 0;
        while self.violated_sharded(pool, engine) {
            match pool.evict_oldest(engine, now)? {
                Some(c) => {
                    cost += c;
                    evicted += 1;
                }
                None => break,
            }
        }
        Ok((cost, evicted))
    }
}

impl stdshim::ToJson for PoolLimits {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::object([
            ("max_live", stdshim::ToJson::to_json(&self.max_live)),
            (
                "mem_threshold",
                stdshim::ToJson::to_json(&self.mem_threshold),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyPolicy;
    use containersim::{ContainerConfig, HardwareProfile, ImageId};

    fn setup() -> (ContainerEngine, ContainerPool) {
        (
            ContainerEngine::with_local_images(HardwareProfile::server()),
            ContainerPool::new(KeyPolicy::Exact),
        )
    }

    fn cfg() -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse("alpine:3.12"))
    }

    #[test]
    fn default_limits_match_paper() {
        let limits = PoolLimits::default();
        assert_eq!(limits.max_live, 500);
        assert!((limits.mem_threshold - 0.8).abs() < 1e-12);
    }

    #[test]
    fn enforce_trims_to_max_live() {
        let (mut e, mut pool) = setup();
        let limits = PoolLimits::new(3, 0.99);
        for i in 0..6 {
            pool.prewarm(&mut e, &cfg(), SimTime::from_secs(i)).unwrap();
        }
        assert!(limits.violated(&pool, &e));
        let cost = limits
            .enforce(&mut pool, &mut e, SimTime::from_secs(10))
            .unwrap();
        assert!(!cost.is_zero());
        assert_eq!(pool.total_live(), 3);
        assert!(!limits.violated(&pool, &e));
        // The newest three survive (oldest evicted first).
        let survivors = e.live_ids_oldest_first();
        assert_eq!(survivors.len(), 3,);
        assert!(e.created_at(survivors[0]).unwrap() >= SimTime::from_secs(3));
    }

    #[test]
    fn enforce_stops_when_only_busy_remain() {
        let (mut e, mut pool) = setup();
        let limits = PoolLimits::new(1, 0.99);
        // Two busy containers (never released): cannot be evicted.
        pool.acquire(&mut e, &cfg(), SimTime::ZERO).unwrap();
        pool.acquire(&mut e, &cfg(), SimTime::ZERO).unwrap();
        assert!(limits.violated(&pool, &e));
        limits
            .enforce(&mut pool, &mut e, SimTime::from_secs(1))
            .unwrap();
        // Still violated, but enforce terminated rather than spinning.
        assert_eq!(pool.total_live(), 2);
    }

    #[test]
    fn memory_pressure_triggers_eviction() {
        // A tiny edge host: Pi with 1 GB. JVM containers at ~49 MB idle each.
        let mut e = ContainerEngine::with_local_images(HardwareProfile::raspberry_pi3());
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let jvm = ContainerConfig::bridge(ImageId::parse("openjdk:8-jre"));
        let limits = PoolLimits::new(500, 0.5);
        for i in 0..12 {
            pool.prewarm(&mut e, &jvm, SimTime::from_secs(i)).unwrap();
        }
        assert!(e.host().memory_pressure() > 0.5);
        limits
            .enforce(&mut pool, &mut e, SimTime::from_secs(20))
            .unwrap();
        assert!(e.host().memory_pressure() <= 0.5);
        assert!(pool.total_live() < 12);
    }

    #[test]
    #[should_panic(expected = "at least one container")]
    fn zero_max_rejected() {
        let _ = PoolLimits::new(0, 0.8);
    }
}
