//! Lock-contention benchmark: real OS threads sharing one HotC gateway,
//! measuring control-plane throughput as parallelism grows (1–8 threads).
//! The virtual execution happens outside the lock, so this isolates the
//! serialized pool bookkeeping — the scalability question for the paper's
//! middleware design.

use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
use faas::{AppProfile, Gateway};
use hotc::{ConcurrentGateway, HotC};
use hotc_bench::Harness;
use simclock::shared::ThreadTimeline;
use simclock::{SimDuration, SimTime};
use std::sync::Arc;

fn shared_gateway(functions: usize) -> Arc<ConcurrentGateway<HotC>> {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut gw = Gateway::new(engine, HotC::with_defaults());
    for i in 0..functions {
        let app = AppProfile::qr_code(LanguageRuntime::Go);
        let mut config = app.default_config();
        config.exec.env.insert("SHARD".into(), i.to_string());
        gw.register(
            faas::FunctionSpec::from_app(app)
                .named(format!("fn-{i}"))
                .with_config(config),
        );
    }
    let shared = Arc::new(ConcurrentGateway::new(gw));
    // Prime one runtime per function so the benchmark measures reuse.
    let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
    for i in 0..functions {
        shared
            .handle(&format!("fn-{i}"), &mut timeline)
            .expect("prime");
    }
    shared
}

fn bench_contention(h: &mut Harness) {
    // Fewer requests per iteration in smoke mode keeps CI under a second.
    let requests_per_thread = if h.is_smoke() { 20usize } else { 200 };
    for &threads in &[1usize, 2, 4, 8] {
        let gw = shared_gateway(threads.max(2));
        h.bench(&format!("shared_gateway/{threads}_threads"), || {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let gw = Arc::clone(&gw);
                    s.spawn(move || {
                        let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                        let function = format!("fn-{t}");
                        for _ in 0..requests_per_thread {
                            gw.handle(&function, &mut timeline).expect("request");
                            timeline.advance(SimDuration::from_millis(200));
                        }
                    });
                }
            });
        });
    }
}

fn main() {
    let mut h = Harness::new("contention");
    bench_contention(&mut h);
    h.finish();
}
