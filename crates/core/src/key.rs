//! Parameter analysis: from container configuration to runtime key.
//!
//! §IV-B: "The first step of HotC is to analyze the user command or
//! configuration file to figure out the parameter setting of the container
//! runtime. The parameter includes container images, network configuration,
//! UTS settings, IPC settings, execution options, etc. … The key is the
//! formatted parameter configurations for each container."
//!
//! [`RuntimeKey`] is that formatted form: a canonical string over the
//! configuration fields, so two configurations that mean the same runtime
//! always produce byte-identical keys (environment maps are sorted, port
//! lists are kept sorted by construction).
//!
//! §VII (future work): "We will explore adopting a subset of the available
//! parameters as the key … which reuses an existing available or idle
//! container with a similar configuration and applies the changes."
//! [`KeyPolicy::Fuzzy`] implements that ablation: only the image and network
//! attachment participate in the key; the remaining differences are applied
//! at acquire time for a small reconfiguration cost.

use containersim::container::{IpcMode, UtsMode};
use containersim::ContainerConfig;
use simclock::SimDuration;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use stdshim::RwLock;
use stdshim::{FastHasher, FastMap};

/// Which configuration fields participate in the runtime key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KeyPolicy {
    /// All parameters (the paper's deployed design).
    #[default]
    Exact,
    /// Image + network attachment only (the future-work fuzzy matching);
    /// differing UTS/IPC/exec options are applied on reuse for
    /// [`FUZZY_RECONFIG_COST`].
    Fuzzy,
}

/// Cost of applying configuration deltas (env, limits, hostname) to a reused
/// container under [`KeyPolicy::Fuzzy`]. Far below a cold start.
pub const FUZZY_RECONFIG_COST: SimDuration = SimDuration::from_millis(18);

/// A canonical, formatted runtime key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuntimeKey(String);

impl RuntimeKey {
    /// Formats a configuration into its runtime key under `policy`.
    pub fn from_config(config: &ContainerConfig, policy: KeyPolicy) -> Self {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "img={};net={}", config.image, config.network.mode);
        let _ = write!(
            s,
            ";scope={}",
            match config.network.scope {
                containersim::NetworkScope::SingleHost => "single",
                containersim::NetworkScope::MultiHost => "multi",
            }
        );
        if policy == KeyPolicy::Exact {
            let _ = write!(s, ";ports=");
            for (i, (c, h)) in config.network.published_ports.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}:{h}");
            }
            let _ = write!(
                s,
                ";uts={}",
                match &config.uts {
                    UtsMode::Private => "private".to_string(),
                    UtsMode::Hostname(h) => format!("host:{h}"),
                    UtsMode::Host => "hostns".to_string(),
                }
            );
            let _ = write!(
                s,
                ";ipc={}",
                match config.ipc {
                    IpcMode::Private => "private",
                    IpcMode::Host => "host",
                    IpcMode::Shareable => "shareable",
                }
            );
            let _ = write!(
                s,
                ";cpu={};mem={};priv={}",
                config.exec.cpu_millis, config.exec.mem_limit_bytes, config.exec.privileged
            );
            let _ = write!(s, ";env=");
            // BTreeMap iterates sorted ⇒ canonical.
            for (i, (k, v)) in config.exec.env.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{k}={v}");
            }
            if let Some(cmd) = &config.exec.command {
                let _ = write!(s, ";cmd={cmd}");
            }
        }
        RuntimeKey(s)
    }

    /// The formatted key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for RuntimeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A compact, copyable handle for an interned [`RuntimeKey`].
///
/// Steady-state request paths hash and compare this `u32` instead of the
/// canonical key string; the string itself is formatted once per distinct
/// configuration, at intern time. Ids are dense (handed out consecutively
/// from 0 by a [`KeyInterner`]) and only meaningful within the interner —
/// and thus the pool — that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(u32);

impl KeyId {
    /// Dense index of this id within its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a dense index previously obtained via
    /// [`KeyId::index`]. Crate-private: only the pool's container reverse
    /// index round-trips ids this way, and it only stores indices of ids
    /// the interner already issued.
    pub(crate) fn from_index(index: u32) -> KeyId {
        KeyId(index)
    }
}

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key#{}", self.0)
    }
}

/// Interns runtime configurations into [`KeyId`]s.
///
/// The fast path hashes only the configuration fields that participate in
/// the key under the active [`KeyPolicy`] (the *config fingerprint*) and
/// verifies candidates by structural comparison of those same fields — no
/// canonical string is formatted and nothing is allocated for a
/// configuration that has been seen before. Fingerprint collisions are
/// handled by chaining ids per fingerprint.
///
/// Lock class `pool/interner`: acquired read-mostly, strictly *before* (and
/// released before) any `pool/shard` lock, so the request path still holds
/// at most one lock at a time (DESIGN §5).
#[derive(Debug)]
pub struct KeyInterner {
    policy: KeyPolicy,
    state: RwLock<InternerState>,
}

#[derive(Debug, Default)]
struct InternerState {
    /// `KeyId::index()` → interned entry.
    entries: Vec<InternedKey>,
    /// Config fingerprint → candidate ids (chained on collision). A
    /// [`FastMap`]: the key is already a hash, so re-SipHashing it on every
    /// intern is pure overhead.
    by_fingerprint: FastMap<u64, Vec<KeyId>>,
    /// Canonical string → id, for the key-based compatibility APIs.
    by_key: HashMap<RuntimeKey, KeyId>,
}

#[derive(Debug)]
struct InternedKey {
    key: RuntimeKey,
    config: ContainerConfig,
}

impl KeyInterner {
    /// Creates an empty interner for `policy`.
    pub fn new(policy: KeyPolicy) -> Self {
        KeyInterner {
            policy,
            state: RwLock::labeled(InternerState::default(), "pool/interner"),
        }
    }

    /// Hashes exactly the fields that participate in the runtime key under
    /// the active policy. Uses [`FastHasher`]: collisions only cost a
    /// structural comparison in [`Self::find`], never a wrong answer, so the
    /// hash needs speed, not adversarial resistance.
    fn fingerprint(&self, config: &ContainerConfig) -> u64 {
        let mut h = FastHasher::default();
        match self.policy {
            KeyPolicy::Exact => config.hash(&mut h),
            KeyPolicy::Fuzzy => {
                // Mirrors the fuzzy key string: image + network attachment;
                // published ports and everything else are reconfigured on
                // reuse instead of splitting the key.
                config.image.hash(&mut h);
                config.network.mode.hash(&mut h);
                config.network.scope.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Structural equality over the same field set as [`Self::fingerprint`].
    fn key_fields_eq(&self, a: &ContainerConfig, b: &ContainerConfig) -> bool {
        match self.policy {
            KeyPolicy::Exact => a == b,
            KeyPolicy::Fuzzy => {
                a.image == b.image
                    && a.network.mode == b.network.mode
                    && a.network.scope == b.network.scope
            }
        }
    }

    fn find(
        &self,
        state: &InternerState,
        fingerprint: u64,
        config: &ContainerConfig,
    ) -> Option<KeyId> {
        let candidates = state.by_fingerprint.get(&fingerprint)?;
        candidates
            .iter()
            .copied()
            .find(|id| self.key_fields_eq(&state.entries[id.index()].config, config))
    }

    /// Interns `config`, returning its stable id. Formats the canonical
    /// [`RuntimeKey`] only on first sight of a configuration.
    pub fn intern(&self, config: &ContainerConfig) -> KeyId {
        let fingerprint = self.fingerprint(config);
        {
            let state = self.state.read();
            if let Some(id) = self.find(&state, fingerprint, config) {
                return id;
            }
        }
        // First sight (or a racing thread got here first): build the
        // canonical key outside the write lock, then double-check.
        let key = RuntimeKey::from_config(config, self.policy);
        let mut state = self.state.write();
        if let Some(id) = self.find(&state, fingerprint, config) {
            return id;
        }
        let id = KeyId(state.entries.len() as u32);
        state.entries.push(InternedKey {
            key: key.clone(),
            config: config.clone(),
        });
        state
            .by_fingerprint
            .entry(fingerprint)
            .or_default()
            .push(id);
        state.by_key.insert(key, id);
        id
    }

    /// Looks up the id of an already-interned canonical key.
    pub fn lookup(&self, key: &RuntimeKey) -> Option<KeyId> {
        self.state.read().by_key.get(key).copied()
    }

    /// The canonical key string for an id issued by this interner.
    pub fn resolve(&self, id: KeyId) -> Option<RuntimeKey> {
        self.state
            .read()
            .entries
            .get(id.index())
            .map(|e| e.key.clone())
    }

    /// Number of distinct keys interned so far.
    pub fn len(&self) -> usize {
        self.state.read().entries.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether reusing a container that was created with `existing` for a
/// request needing `wanted` requires applying configuration deltas (only
/// possible under [`KeyPolicy::Fuzzy`], where keys can match while configs
/// differ).
pub fn needs_reconfig(existing: &ContainerConfig, wanted: &ContainerConfig) -> bool {
    existing != wanted
}

impl stdshim::ToJson for KeyPolicy {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::Str(
            match self {
                KeyPolicy::Exact => "exact",
                KeyPolicy::Fuzzy => "fuzzy",
            }
            .to_string(),
        )
    }
}

impl stdshim::ToJson for RuntimeKey {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::Str(self.0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::container::ExecOptions;
    use containersim::{ImageId, NetworkConfig, NetworkMode};

    fn base() -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse("python:3.8-alpine"))
    }

    #[test]
    fn identical_configs_same_key() {
        let a = RuntimeKey::from_config(&base(), KeyPolicy::Exact);
        let b = RuntimeKey::from_config(&base(), KeyPolicy::Exact);
        assert_eq!(a, b);
    }

    #[test]
    fn env_order_is_canonical() {
        let a = base().with_exec(ExecOptions::default().with_env("A", "1").with_env("B", "2"));
        let b = base().with_exec(ExecOptions::default().with_env("B", "2").with_env("A", "1"));
        assert_eq!(
            RuntimeKey::from_config(&a, KeyPolicy::Exact),
            RuntimeKey::from_config(&b, KeyPolicy::Exact)
        );
    }

    #[test]
    fn exact_distinguishes_env() {
        let a = base().with_exec(ExecOptions::default().with_env("A", "1"));
        let b = base().with_exec(ExecOptions::default().with_env("A", "2"));
        assert_ne!(
            RuntimeKey::from_config(&a, KeyPolicy::Exact),
            RuntimeKey::from_config(&b, KeyPolicy::Exact)
        );
    }

    #[test]
    fn fuzzy_collapses_env_but_not_image() {
        let a = base().with_exec(ExecOptions::default().with_env("A", "1"));
        let b = base().with_exec(ExecOptions::default().with_env("A", "2"));
        assert_eq!(
            RuntimeKey::from_config(&a, KeyPolicy::Fuzzy),
            RuntimeKey::from_config(&b, KeyPolicy::Fuzzy)
        );
        let other_image = ContainerConfig::bridge(ImageId::parse("golang:1.13"));
        assert_ne!(
            RuntimeKey::from_config(&a, KeyPolicy::Fuzzy),
            RuntimeKey::from_config(&other_image, KeyPolicy::Fuzzy)
        );
    }

    #[test]
    fn network_mode_always_distinguishes() {
        let bridge = base();
        let host = base().with_network(NetworkConfig::single(NetworkMode::Host));
        for policy in [KeyPolicy::Exact, KeyPolicy::Fuzzy] {
            assert_ne!(
                RuntimeKey::from_config(&bridge, policy),
                RuntimeKey::from_config(&host, policy),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn ports_distinguish_exact_keys() {
        let a = base().with_network(NetworkConfig::single(NetworkMode::Bridge).publish(80, 8080));
        let b = base().with_network(NetworkConfig::single(NetworkMode::Bridge).publish(80, 9090));
        assert_ne!(
            RuntimeKey::from_config(&a, KeyPolicy::Exact),
            RuntimeKey::from_config(&b, KeyPolicy::Exact)
        );
    }

    #[test]
    fn key_is_human_readable() {
        let key = RuntimeKey::from_config(&base(), KeyPolicy::Exact);
        let text = key.to_string();
        assert!(text.contains("img=python:3.8-alpine"));
        assert!(text.contains("net=bridge"));
    }

    #[test]
    fn interner_ids_are_stable_and_dense() {
        let interner = KeyInterner::new(KeyPolicy::Exact);
        let a = base();
        let b = base().with_exec(ExecOptions::default().with_env("A", "1"));
        let ia = interner.intern(&a);
        let ib = interner.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(ia.index(), 0);
        assert_eq!(ib.index(), 1);
        assert_eq!(interner.intern(&a), ia);
        assert_eq!(
            interner.resolve(ia),
            Some(RuntimeKey::from_config(&a, KeyPolicy::Exact))
        );
        assert_eq!(
            interner.lookup(&RuntimeKey::from_config(&b, KeyPolicy::Exact)),
            Some(ib)
        );
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn fuzzy_interner_collapses_exec_options() {
        let interner = KeyInterner::new(KeyPolicy::Fuzzy);
        let a = base().with_exec(ExecOptions::default().with_env("A", "1"));
        let b = base().with_exec(ExecOptions::default().with_env("A", "2"));
        assert_eq!(interner.intern(&a), interner.intern(&b));
        let ports =
            base().with_network(NetworkConfig::single(NetworkMode::Bridge).publish(80, 8080));
        // Fuzzy keys ignore published ports, exactly like the string form.
        assert_eq!(interner.intern(&a), interner.intern(&ports));
        let other = ContainerConfig::bridge(ImageId::parse("golang:1.13"));
        assert_ne!(interner.intern(&a), interner.intern(&other));
    }

    #[test]
    fn reconfig_detection() {
        let a = base();
        let b = base().with_exec(ExecOptions::default().with_env("X", "1"));
        assert!(!needs_reconfig(&a, &a.clone()));
        assert!(needs_reconfig(&a, &b));
    }
}
