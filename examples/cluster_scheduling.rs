//! Multi-host HotC (the paper's §VII future work): compare request
//! scheduling policies on a 4-node cluster under Zipf-skewed traffic.
//!
//! ```text
//! cargo run --example cluster_scheduling
//! ```

use hotc_cluster::{Cluster, SchedulePolicy};
use hotc_repro::prelude::*;
use simclock::SimRng;

fn build(policy: SchedulePolicy) -> Cluster {
    let gateways = (0..4)
        .map(|i| {
            let engine = ContainerEngine::with_local_images(HardwareProfile::server());
            (
                format!("node-{i}"),
                Gateway::new(engine, HotC::with_defaults()),
            )
        })
        .collect();
    let mut cluster = Cluster::new(policy, gateways);
    // Twelve tenants; a few will be extremely popular (Zipf).
    for f in 0..12 {
        let app = AppProfile::qr_code(LanguageRuntime::Python);
        let mut config = app.default_config();
        config.exec.env.insert("TENANT".into(), f.to_string());
        cluster.register_everywhere(
            faas::FunctionSpec::from_app(app)
                .named(format!("fn-{f}"))
                .with_config(config),
        );
    }
    cluster
}

fn main() {
    let mut table = Table::new(
        "4-node cluster, 600 Zipf-skewed requests",
        &[
            "policy",
            "mean_ms",
            "cold_starts",
            "live_ctrs",
            "per_node_requests",
        ],
    );
    for policy in [
        SchedulePolicy::RoundRobin,
        SchedulePolicy::LeastLoaded,
        SchedulePolicy::ReuseAffinity,
    ] {
        let mut cluster = build(policy);
        let mut rng = SimRng::seeded(2021);
        let mut recorder = LatencyRecorder::new();
        let mut now = SimTime::ZERO;
        // 150 waves of 4 concurrent requests each (600 total).
        for _ in 0..150 {
            let tickets: Vec<_> = (0..4)
                .map(|_| {
                    let f = format!("fn-{}", rng.zipf(12, 1.2));
                    cluster.begin(&f, now).expect("begin")
                })
                .collect();
            for ticket in tickets {
                let trace = cluster.finish(ticket).expect("finish");
                recorder.record(trace.total());
            }
            now += SimDuration::from_secs(3);
            if now.as_secs().is_multiple_of(30) {
                cluster.tick(now).expect("tick");
            }
        }
        let stats = cluster.stats();
        let per_node: Vec<String> = cluster
            .snapshots()
            .iter()
            .map(|s| s.requests.to_string())
            .collect();
        table.row(&[
            policy.name().to_string(),
            format!("{:.1}", recorder.mean().as_millis_f64()),
            stats.cold_starts.to_string(),
            stats.live_containers.to_string(),
            per_node.join("/"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reuse-affinity routes each tenant to its warm node (fewest cold starts and containers),\n\
         spilling to the least-loaded node only when the warm node is overloaded"
    );
}
