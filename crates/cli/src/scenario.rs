//! The scenario file format and its parser.
//!
//! Line-based: `key = value` pairs, `[section]` headers, `#` comments.
//! Global keys come first, then any number of `[function <name>]` sections,
//! then one `[workload]` section:
//!
//! ```text
//! # global
//! hardware = server               # server | raspberry-pi3 | jetson-tx2
//! provider = hotc                 # hotc | hotc:fuzzy | cold-start |
//!                                 # fixed-keepalive:15m | periodic-warmup:5m
//! seed     = 42
//! tick     = 30s
//! crash_rate = 0.0                # optional fault injection
//!
//! [function qr]
//! app     = qr-code               # qr-code | random-number | s3-download |
//!                                 # v3-app | tf-api-app | cassandra
//! lang    = python                # qr-code / s3-download only
//! network = bridge                # none|bridge|host|container|overlay|routing
//! env.TENANT = 1                  # any number of env.* keys
//!
//! [workload]
//! pattern  = burst                # serial | parallel | linear-up | linear-down |
//!                                 # exp-up | exp-down | burst | poisson | youtube
//! base     = 8
//! factor   = 10
//! rounds   = 18
//! burst_at = 4,8,12,16
//! round    = 30s
//! ```
//!
//! Durations accept `ns`, `us`, `ms`, `s`, `m` suffixes. Workload arrivals
//! cycle over the declared functions via their `config_id`.

use containersim::{HardwareProfile, LanguageRuntime, NetworkMode};
use simclock::SimDuration;
use std::collections::BTreeMap;

/// A parse failure, with the 1-based line number where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Which runtime-management provider to run.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderSpec {
    /// HotC with exact keys (paper default).
    HotC,
    /// HotC with fuzzy (§VII subset) keys.
    HotCFuzzy,
    /// Fresh container per request.
    ColdStart,
    /// AWS-style keep-alive with the given TTL.
    FixedKeepAlive(SimDuration),
    /// Azure-Logic-style periodic warm-up with the given period.
    PeriodicWarmup(SimDuration),
    /// Azure-style per-type learned keep-alive windows.
    HybridKeepAlive,
}

/// One declared function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (the section header).
    pub name: String,
    /// Application profile name.
    pub app: String,
    /// Language (for per-language apps).
    pub lang: LanguageRuntime,
    /// Network mode.
    pub network: NetworkMode,
    /// Extra environment variables.
    pub env: BTreeMap<String, String>,
}

/// The workload pattern, mirroring `workloads::patterns`.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// `serial`: `count` requests, `interval` apart (function 0).
    Serial {
        /// Requests to send.
        count: usize,
        /// Gap between requests.
        interval: SimDuration,
    },
    /// `parallel`: `threads` clients × `per_thread` rounds; client *i* calls
    /// function *i mod functions*.
    Parallel {
        /// Concurrent clients.
        threads: usize,
        /// Rounds per client.
        per_thread: usize,
        /// Gap between rounds.
        interval: SimDuration,
    },
    /// `linear-up` / `linear-down`.
    Linear {
        /// Whether the ramp increases.
        increasing: bool,
        /// Starting request count.
        start: usize,
        /// Step per round.
        step: usize,
        /// Number of rounds.
        rounds: usize,
        /// Round length.
        round: SimDuration,
    },
    /// `exp-up` / `exp-down`: 2^i per round.
    Exponential {
        /// Whether the ramp increases.
        increasing: bool,
        /// Number of rounds.
        rounds: u32,
        /// Round length.
        round: SimDuration,
    },
    /// `burst`.
    Burst {
        /// Per-round baseline.
        base: usize,
        /// Burst multiplier.
        factor: usize,
        /// Rounds that burst.
        burst_at: Vec<usize>,
        /// Total rounds.
        rounds: usize,
        /// Round length.
        round: SimDuration,
    },
    /// `poisson`: arrivals at `rate`/s for `duration`, functions picked
    /// Zipf(`zipf`).
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
        /// Total span.
        duration: SimDuration,
        /// Zipf exponent over the declared functions.
        zipf: f64,
    },
    /// `youtube`: the Fig. 11 day shape, rates divided by `scale`, one
    /// `index` per trace point (function 0).
    Youtube {
        /// Rate divisor.
        scale: f64,
        /// Virtual length of one trace index.
        index: SimDuration,
        /// Number of trace indices.
        length: usize,
    },
    /// `azure`: the hot/periodic/rare multi-tenant population. Ignores the
    /// declared function *count* mismatch: arrivals cycle over the declared
    /// functions.
    Azure {
        /// Population size (synthetic functions in the trace).
        functions: usize,
        /// Total span.
        duration: SimDuration,
    },
}

/// A fully parsed scenario.
///
/// ```
/// use hotc_cli::Scenario;
///
/// let scenario = Scenario::parse(
///     "provider = hotc\n\
///      [function f]\n\
///      app = qr-code\n\
///      lang = go\n\
///      [workload]\n\
///      pattern = serial\n\
///      count = 5\n",
/// )
/// .unwrap();
/// let report = hotc_cli::run_scenario(&scenario).unwrap();
/// assert_eq!(report.requests, 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Hardware platform.
    pub hardware: HardwareProfile,
    /// Runtime provider.
    pub provider: ProviderSpec,
    /// RNG seed.
    pub seed: u64,
    /// Provider maintenance interval.
    pub tick: SimDuration,
    /// Execution crash probability (fault injection), 0.0 = off.
    pub crash_rate: f64,
    /// Declared functions, in declaration order.
    pub functions: Vec<FunctionDecl>,
    /// The workload.
    pub workload: WorkloadSpec,
}

/// Parses a duration literal like `30s`, `15m`, `250ms`, `10us`, `5ns`.
pub fn parse_duration(s: &str, line: usize) -> Result<SimDuration, ParseError> {
    let s = s.trim();
    let split = s
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = match num.parse() {
        Ok(v) => v,
        Err(_) => return err(line, format!("bad duration number '{num}'")),
    };
    let nanos = match unit.trim() {
        "ns" => value,
        "us" => value * 1e3,
        "ms" => value * 1e6,
        "s" | "" => value * 1e9,
        "m" => value * 60e9,
        other => return err(line, format!("unknown duration unit '{other}'")),
    };
    Ok(SimDuration::from_nanos(nanos as u64))
}

fn parse_lang(s: &str, line: usize) -> Result<LanguageRuntime, ParseError> {
    Ok(match s {
        "python" => LanguageRuntime::Python,
        "go" => LanguageRuntime::Go,
        "java" => LanguageRuntime::Java,
        "nodejs" | "node" => LanguageRuntime::NodeJs,
        "ruby" => LanguageRuntime::Ruby,
        "native" => LanguageRuntime::Native,
        other => return err(line, format!("unknown language '{other}'")),
    })
}

fn parse_network(s: &str, line: usize) -> Result<NetworkMode, ParseError> {
    Ok(match s {
        "none" => NetworkMode::None,
        "bridge" => NetworkMode::Bridge,
        "host" => NetworkMode::Host,
        "container" => NetworkMode::Container,
        "overlay" => NetworkMode::Overlay,
        "routing" => NetworkMode::Routing,
        other => return err(line, format!("unknown network mode '{other}'")),
    })
}

#[derive(Debug, PartialEq)]
enum Section {
    Global,
    Function(String),
    Workload,
}

impl Scenario {
    /// Parses a scenario from its text form.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let mut hardware = HardwareProfile::server();
        let mut provider = ProviderSpec::HotC;
        let mut seed = 0u64;
        let mut tick = SimDuration::from_secs(30);
        let mut crash_rate = 0.0f64;
        let mut functions: Vec<FunctionDecl> = Vec::new();
        let mut workload_kv: BTreeMap<String, (String, usize)> = BTreeMap::new();
        let mut saw_workload = false;

        let mut section = Section::Global;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(header) = header.strip_suffix(']') else {
                    return err(line_no, "unterminated section header");
                };
                let header = header.trim();
                section = if header == "workload" {
                    saw_workload = true;
                    Section::Workload
                } else if let Some(name) = header.strip_prefix("function") {
                    let name = name.trim();
                    if name.is_empty() {
                        return err(line_no, "function section needs a name");
                    }
                    functions.push(FunctionDecl {
                        name: name.to_string(),
                        app: "random-number".to_string(),
                        lang: LanguageRuntime::Python,
                        network: NetworkMode::Bridge,
                        env: BTreeMap::new(),
                    });
                    Section::Function(name.to_string())
                } else {
                    return err(line_no, format!("unknown section '[{header}]'"));
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(line_no, format!("expected 'key = value', got '{line}'"));
            };
            let key = key.trim();
            let value = value.trim();
            match &section {
                Section::Global => match key {
                    "hardware" => {
                        hardware = match value {
                            "server" => HardwareProfile::server(),
                            "raspberry-pi3" | "pi" => HardwareProfile::raspberry_pi3(),
                            "jetson-tx2" => HardwareProfile::jetson_tx2(),
                            other => return err(line_no, format!("unknown hardware '{other}'")),
                        }
                    }
                    "provider" => {
                        provider = match value.split_once(':') {
                            None => match value {
                                "hotc" => ProviderSpec::HotC,
                                "cold-start" => ProviderSpec::ColdStart,
                                "hybrid-keepalive" => ProviderSpec::HybridKeepAlive,
                                other => {
                                    return err(line_no, format!("unknown provider '{other}'"))
                                }
                            },
                            Some(("hotc", "fuzzy")) => ProviderSpec::HotCFuzzy,
                            Some(("fixed-keepalive", ttl)) => {
                                ProviderSpec::FixedKeepAlive(parse_duration(ttl, line_no)?)
                            }
                            Some(("periodic-warmup", period)) => {
                                ProviderSpec::PeriodicWarmup(parse_duration(period, line_no)?)
                            }
                            Some((other, _)) => {
                                return err(line_no, format!("unknown provider '{other}'"))
                            }
                        }
                    }
                    "seed" => {
                        seed = value.parse().map_err(|_| ParseError {
                            line: line_no,
                            message: format!("bad seed '{value}'"),
                        })?
                    }
                    "tick" => tick = parse_duration(value, line_no)?,
                    "crash_rate" => {
                        crash_rate = value.parse().map_err(|_| ParseError {
                            line: line_no,
                            message: format!("bad crash_rate '{value}'"),
                        })?;
                        if !(0.0..=1.0).contains(&crash_rate) {
                            return err(line_no, "crash_rate must be in [0,1]");
                        }
                    }
                    other => return err(line_no, format!("unknown global key '{other}'")),
                },
                Section::Function(_) => {
                    // Entering a function section pushes its declaration, so
                    // one is always present here — but a parser bug should
                    // surface as a parse error, not a panic.
                    let Some(decl) = functions.last_mut() else {
                        return err(line_no, "function key outside a [function] section");
                    };
                    if let Some(env_key) = key.strip_prefix("env.") {
                        decl.env.insert(env_key.to_string(), value.to_string());
                        continue;
                    }
                    match key {
                        "app" => decl.app = value.to_string(),
                        "lang" => decl.lang = parse_lang(value, line_no)?,
                        "network" => decl.network = parse_network(value, line_no)?,
                        other => return err(line_no, format!("unknown function key '{other}'")),
                    }
                }
                Section::Workload => {
                    workload_kv.insert(key.to_string(), (value.to_string(), line_no));
                }
            }
        }

        if functions.is_empty() {
            return err(0, "scenario declares no functions");
        }
        if !saw_workload {
            return err(0, "scenario has no [workload] section");
        }
        let workload = Self::parse_workload(&workload_kv)?;
        Ok(Scenario {
            hardware,
            provider,
            seed,
            tick,
            crash_rate,
            functions,
            workload,
        })
    }

    fn parse_workload(kv: &BTreeMap<String, (String, usize)>) -> Result<WorkloadSpec, ParseError> {
        let get = |key: &str| kv.get(key).map(|(v, l)| (v.as_str(), *l));
        let get_usize = |key: &str, default: usize| -> Result<usize, ParseError> {
            match get(key) {
                None => Ok(default),
                Some((v, l)) => v.parse().map_err(|_| ParseError {
                    line: l,
                    message: format!("bad integer '{v}' for '{key}'"),
                }),
            }
        };
        let get_f64 = |key: &str, default: f64| -> Result<f64, ParseError> {
            match get(key) {
                None => Ok(default),
                Some((v, l)) => v.parse().map_err(|_| ParseError {
                    line: l,
                    message: format!("bad number '{v}' for '{key}'"),
                }),
            }
        };
        let get_duration = |key: &str, default: SimDuration| -> Result<SimDuration, ParseError> {
            match get(key) {
                None => Ok(default),
                Some((v, l)) => parse_duration(v, l),
            }
        };

        let Some((pattern, pattern_line)) = get("pattern") else {
            return err(0, "[workload] needs a 'pattern' key");
        };
        let round_default = SimDuration::from_secs(30);
        Ok(match pattern {
            "serial" => WorkloadSpec::Serial {
                count: get_usize("count", 20)?,
                interval: get_duration("interval", round_default)?,
            },
            "parallel" => WorkloadSpec::Parallel {
                threads: get_usize("threads", 10)?,
                per_thread: get_usize("per_thread", 10)?,
                interval: get_duration("interval", round_default)?,
            },
            "linear-up" | "linear-down" => WorkloadSpec::Linear {
                increasing: pattern == "linear-up",
                start: get_usize("start", 2)?,
                step: get_usize("step", 2)?,
                rounds: get_usize("rounds", 10)?,
                round: get_duration("round", round_default)?,
            },
            "exp-up" | "exp-down" => WorkloadSpec::Exponential {
                increasing: pattern == "exp-up",
                rounds: get_usize("rounds", 7)? as u32,
                round: get_duration("round", round_default)?,
            },
            "burst" => {
                let burst_at = match get("burst_at") {
                    None => vec![4, 8, 12, 16],
                    Some((v, l)) => v
                        .split(',')
                        .map(|part| {
                            part.trim().parse().map_err(|_| ParseError {
                                line: l,
                                message: format!("bad burst round '{part}'"),
                            })
                        })
                        .collect::<Result<Vec<usize>, _>>()?,
                };
                WorkloadSpec::Burst {
                    base: get_usize("base", 8)?,
                    factor: get_usize("factor", 10)?,
                    burst_at,
                    rounds: get_usize("rounds", 18)?,
                    round: get_duration("round", round_default)?,
                }
            }
            "poisson" => WorkloadSpec::Poisson {
                rate: get_f64("rate", 2.0)?,
                duration: get_duration("duration", SimDuration::from_secs(600))?,
                zipf: get_f64("zipf", 1.1)?,
            },
            "youtube" => WorkloadSpec::Youtube {
                scale: get_f64("scale", 10.0)?,
                index: get_duration("index", SimDuration::from_secs(300))?,
                length: get_usize("length", 288)?,
            },
            "azure" => WorkloadSpec::Azure {
                functions: get_usize("functions", 20)?,
                duration: get_duration("duration", SimDuration::from_mins(120))?,
            },
            other => {
                return err(pattern_line, format!("unknown pattern '{other}'"));
            }
        })
    }
}

/// A commented example scenario (printed by `hotc-sim --demo`).
pub const DEMO_SCENARIO: &str = "\
# hotc-sim demo scenario: the Fig. 14(b) burst experiment
hardware = server
provider = hotc
seed     = 42
tick     = 30s

[function qr]
app     = qr-code
lang    = python
network = bridge

[workload]
pattern  = burst
base     = 8
factor   = 10
rounds   = 18
burst_at = 4,8,12,16
round    = 30s
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_scenario_parses() {
        let s = Scenario::parse(DEMO_SCENARIO).unwrap();
        assert_eq!(s.provider, ProviderSpec::HotC);
        assert_eq!(s.seed, 42);
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].name, "qr");
        assert_eq!(s.functions[0].app, "qr-code");
        assert!(matches!(
            s.workload,
            WorkloadSpec::Burst {
                base: 8,
                factor: 10,
                rounds: 18,
                ..
            }
        ));
    }

    #[test]
    fn durations_parse() {
        assert_eq!(
            parse_duration("30s", 1).unwrap(),
            SimDuration::from_secs(30)
        );
        assert_eq!(
            parse_duration("15m", 1).unwrap(),
            SimDuration::from_mins(15)
        );
        assert_eq!(
            parse_duration("250ms", 1).unwrap(),
            SimDuration::from_millis(250)
        );
        assert_eq!(parse_duration("7", 1).unwrap(), SimDuration::from_secs(7));
        assert!(parse_duration("10h", 1).is_err());
        assert!(parse_duration("abc", 1).is_err());
    }

    #[test]
    fn provider_variants_parse() {
        let base = "\n[function f]\napp = random-number\n\n[workload]\npattern = serial\n";
        for (text, expected) in [
            ("provider = hotc", ProviderSpec::HotC),
            ("provider = hotc:fuzzy", ProviderSpec::HotCFuzzy),
            ("provider = cold-start", ProviderSpec::ColdStart),
            (
                "provider = fixed-keepalive:15m",
                ProviderSpec::FixedKeepAlive(SimDuration::from_mins(15)),
            ),
            (
                "provider = periodic-warmup:5m",
                ProviderSpec::PeriodicWarmup(SimDuration::from_mins(5)),
            ),
        ] {
            let s = Scenario::parse(&format!("{text}{base}")).unwrap();
            assert_eq!(s.provider, expected, "{text}");
        }
    }

    #[test]
    fn env_keys_collected() {
        let text = "\
[function a]
app = qr-code
env.TENANT = 7
env.MODE = fast

[workload]
pattern = serial
";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.functions[0].env.get("TENANT").unwrap(), "7");
        assert_eq!(s.functions[0].env.get("MODE").unwrap(), "fast");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "hardware = quantum\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("quantum"));

        let text = "\n\nprovider = blockchain\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn missing_sections_rejected() {
        let e = Scenario::parse("seed = 1\n").unwrap_err();
        assert!(e.message.contains("no functions"));

        let e = Scenario::parse("[function f]\napp = qr-code\n").unwrap_err();
        assert!(e.message.contains("no [workload]"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# leading comment
seed = 9   # trailing comment

[function f]    # section comment
app = random-number

[workload]
pattern = serial
count = 3
";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.seed, 9);
        assert!(matches!(s.workload, WorkloadSpec::Serial { count: 3, .. }));
    }

    #[test]
    fn unknown_keys_rejected() {
        let text = "\
[function f]
app = qr-code
colour = blue

[workload]
pattern = serial
";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("colour"));
    }

    #[test]
    fn burst_at_list_parses() {
        let text = "\
[function f]
app = random-number

[workload]
pattern = burst
burst_at = 2, 5, 9
rounds = 12
";
        let s = Scenario::parse(text).unwrap();
        match s.workload {
            WorkloadSpec::Burst { burst_at, .. } => assert_eq!(burst_at, vec![2, 5, 9]),
            other => panic!("wrong workload {other:?}"),
        }
    }
}
