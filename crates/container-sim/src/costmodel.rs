//! Central cost-model calibration.
//!
//! Every virtual duration the engine charges is derived from the constants in
//! this module. Each constant cites the paper observation it is calibrated
//! against; where the OCR of the paper garbles an absolute number we anchor
//! on the unambiguous *ratios* (see DESIGN.md §5) and record the resulting
//! absolute values in EXPERIMENTS.md.
//!
//! All base values are for the reference server profile (Dell PowerEdge
//! T430); [`crate::hardware::HardwareProfile`] scales them for edge devices.

use simclock::SimDuration;

/// Base cost of allocating kernel resources for a new container: cgroups,
/// namespaces (pid/mnt/uts/ipc), rootfs snapshot setup.
///
/// Calibration: §V-B measures that for the QR web app "the URL transition
/// only took around 60 ms while the majority of time was spent on the
/// resource allocation and container runtime setup"; total cold overhead for
/// a bridge-mode container lands around 700 ms (Fig. 9(a) latencies are close
/// to a second against a 60 ms hot path).
pub const RESOURCE_ALLOC: SimDuration = SimDuration::from_millis(420);

/// Cost of loading user code/function artifacts into a started container
/// (code download from the local store + handler wiring).
pub const CODE_LOAD: SimDuration = SimDuration::from_millis(60);

/// Cost of creating and bind-mounting one volume.
pub const VOLUME_MOUNT: SimDuration = SimDuration::from_millis(8);

/// Cost of wiping all files in a used volume (HotC Algorithm 2, step 1).
/// Scales with the number of files; this is the per-file component.
pub const VOLUME_WIPE_PER_FILE: SimDuration = SimDuration::from_micros(12);

/// Fixed cost of the wipe+remount cycle (Algorithm 2, step 2).
pub const VOLUME_REMOUNT: SimDuration = SimDuration::from_millis(10);

/// Cost of stopping a container (SIGTERM, cgroup teardown of the app).
pub const CONTAINER_STOP: SimDuration = SimDuration::from_millis(35);

/// Cost of removing a container entirely (rootfs + metadata delete).
pub const CONTAINER_REMOVE: SimDuration = SimDuration::from_millis(45);

/// Network setup baseline: the `none` mode (loopback only) on a single host.
///
/// Calibration: Fig. 4(c) — bridge and host "are close to that without
/// network setup (None) while the container mode networking is only half of
/// it"; multi-host overlay "takes up to 23× longer startup time" than host
/// mode.
pub const NET_NONE: SimDuration = SimDuration::from_millis(30);
/// Bridge mode: veth pair + bridge attach + iptables NAT rules.
pub const NET_BRIDGE: SimDuration = SimDuration::from_millis(32);
/// Host mode: no namespace, trivial setup.
pub const NET_HOST: SimDuration = SimDuration::from_millis(29);
/// Container mode: join an existing container's namespace — "cheaper startup
/// connecting to a proxy container instead of booting a new one" (≈ ½ none).
pub const NET_CONTAINER: SimDuration = SimDuration::from_millis(15);
/// Multi-host overlay (VXLAN + key-value registration): up to 23× host mode.
pub const NET_OVERLAY: SimDuration = SimDuration::from_millis(667);
/// Multi-host routing (BGP-style route programming): between host and overlay.
pub const NET_ROUTING: SimDuration = SimDuration::from_millis(435);

/// Registry pull bandwidth (bytes of compressed layer per virtual second) on
/// the server's gigabit link. Pull cost only applies when an image layer is
/// not in the local store; the paper stores images locally, so the default
/// experiments never pay it — it exists for the image-distribution ablation.
pub const PULL_BYTES_PER_SEC: u64 = 110 * 1024 * 1024;

/// Layer decompression throughput (bytes of compressed layer per second).
pub const UNPACK_BYTES_PER_SEC: u64 = 180 * 1024 * 1024;

/// Idle memory footprint of one live (paused/idle) container.
///
/// Calibration: Fig. 15(a) — "the memory usage increased by 0.7 MB for each
/// individual live container"; §IV-B — an idle alpine container "only takes
/// hundreds of KB".
pub const LIVE_CONTAINER_MEM_BYTES: u64 = 700 * 1024;

/// Idle CPU overhead of one live container, as a fraction of one core.
///
/// Calibration: Fig. 15(a) — "CPU usage increased by less than 1 % (ten live
/// containers)" ⇒ <0.1 % per container.
pub const LIVE_CONTAINER_CPU_FRACTION: f64 = 0.0008;

/// TLB/page-cache warmup penalty applied to the *first* execution in a fresh
/// container, as a multiplicative factor on app compute time. §IV-A: reusing
/// a runtime "can also offer hot cache and less TLB flushing".
pub const COLD_CACHE_PENALTY: f64 = 1.03;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_ratios_match_paper() {
        // Fig 4(c): bridge/host ≈ none; container ≈ half of none.
        let none = NET_NONE.as_millis() as f64;
        assert!((NET_BRIDGE.as_millis() as f64 / none - 1.0).abs() < 0.15);
        assert!((NET_HOST.as_millis() as f64 / none - 1.0).abs() < 0.15);
        assert!((NET_CONTAINER.as_millis() as f64 / none - 0.5).abs() < 0.05);
        // Overlay up to 23× host mode.
        let ratio = NET_OVERLAY.as_millis() as f64 / NET_HOST.as_millis() as f64;
        assert!((22.0..24.0).contains(&ratio), "overlay/host = {ratio}");
        // Routing sits between host and overlay.
        assert!(NET_ROUTING > NET_HOST && NET_ROUTING < NET_OVERLAY);
    }

    #[test]
    fn live_container_overhead_is_negligible() {
        // 10 live containers < 1% CPU, per Fig 15(a). (Computed through a
        // runtime value so the calibration claim is an actual test.)
        let pool = std::hint::black_box(10.0);
        assert!(pool * LIVE_CONTAINER_CPU_FRACTION < 0.01);
        // 500 live containers (HotC's max pool) ≈ 350 MB — small next to 64 GB.
        let pool_bytes = std::hint::black_box(500) * LIVE_CONTAINER_MEM_BYTES;
        assert!(pool_bytes < 64 * 1024 * 1024 * 1024 / 100);
    }

    #[test]
    fn wipe_cost_scales_with_files() {
        let few = VOLUME_WIPE_PER_FILE * 10 + VOLUME_REMOUNT;
        let many = VOLUME_WIPE_PER_FILE * 10_000 + VOLUME_REMOUNT;
        assert!(many > few);
        // Even a large wipe stays far below a cold start.
        assert!(many < RESOURCE_ALLOC);
    }
}
