//! End-to-end request-path benchmarks: the real CPU cost of serving one
//! request through gateway + watchdog + engine, warm vs cold, per provider.

use containersim::{ContainerEngine, HardwareProfile};
use faas::policy::{ColdStartAlways, FixedKeepAlive};
use faas::{AppProfile, Gateway};
use hotc::HotC;
use hotc_bench::Harness;
use simclock::{SimDuration, SimTime};
use std::hint::black_box;

fn hotc_gateway() -> Gateway<HotC> {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut gw = Gateway::new(engine, HotC::with_defaults());
    gw.register_app(AppProfile::random_number());
    gw
}

fn bench_warm_request(h: &mut Harness) {
    {
        let mut gw = hotc_gateway();
        gw.handle("random-number", SimTime::ZERO).unwrap(); // prime
        let mut now = SimTime::from_secs(1);
        h.bench("warm_request/hotc", || {
            now += SimDuration::from_millis(100);
            black_box(gw.handle("random-number", now).unwrap())
        });
    }
    {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
        gw.register_app(AppProfile::random_number());
        gw.handle("random-number", SimTime::ZERO).unwrap();
        let mut now = SimTime::from_secs(1);
        h.bench("warm_request/fixed-keepalive", || {
            now += SimDuration::from_millis(100);
            black_box(gw.handle("random-number", now).unwrap())
        });
    }
}

fn bench_cold_request(h: &mut Harness) {
    // Cold path: every iteration creates and destroys a container.
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut gw = Gateway::new(engine, ColdStartAlways::new());
    gw.register_app(AppProfile::random_number());
    let mut now = SimTime::ZERO;
    h.bench("cold_request_cycle", || {
        now += SimDuration::from_secs(1);
        black_box(gw.handle("random-number", now).unwrap())
    });
}

fn bench_tick_with_large_pool(h: &mut Harness) {
    // Controller tick cost with a big, diverse pool (the per-interval
    // maintenance the paper's Algorithm 3 adds).
    h.bench_with_setup(
        "hotc_tick_100_types",
        || {
            let mut gw = hotc_gateway();
            for i in 0..100 {
                let app = AppProfile::random_number();
                let mut config = app.default_config();
                config.exec.env.insert("T".into(), i.to_string());
                gw.register(
                    faas::FunctionSpec::from_app(app)
                        .named(format!("fn-{i}"))
                        .with_config(config),
                );
            }
            for i in 0..100 {
                gw.handle(&format!("fn-{i}"), SimTime::from_millis(i))
                    .unwrap();
            }
            gw
        },
        |mut gw| {
            for k in 1..=10u64 {
                gw.tick(SimTime::from_secs(30 * k)).unwrap();
            }
            black_box(gw.engine().live_count());
            // Returned so the harness tears the gateway down outside the
            // timed span — the bench measures tick cost, not Drop.
            gw
        },
    );
}

fn main() {
    let mut h = Harness::new("pipeline");
    bench_warm_request(&mut h);
    bench_cold_request(&mut h);
    bench_tick_with_large_pool(&mut h);
    h.finish();
}
