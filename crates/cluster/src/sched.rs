//! Cluster scheduling over per-node HotC gateways.
//!
//! Placement state lives in two incremental indexes — a
//! [`WarmIndex`](crate::warm_index::WarmIndex) of believed warm availability
//! per (function key, host) and a [`LoadIndex`](crate::load::LoadIndex) of
//! in-flight counts — so a scheduling decision costs O(1) amortized instead
//! of the old O(hosts × functions) snapshot rebuild plus O(hosts) scan.
//! The function registry is cluster-level: one spec table shared by all
//! nodes, handed to the serving node at placement time
//! ([`Gateway::begin_with`]), instead of a clone per (function, node).

use faas::gateway::{Gateway, GatewayError, InFlight};
use faas::{FunctionSpec, RequestTrace};
use hotc::{HotC, KeyId, KeyInterner};
use simclock::{SimDuration, SimRng, SimTime};
use stdshim::{FastMap, FastSet};

use crate::load::LoadIndex;
use crate::warm_index::WarmIndex;

/// How the cluster places requests on nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Rotate through nodes.
    RoundRobin,
    /// Fewer in-flight requests first, by power-of-two-choices.
    LeastLoaded,
    /// Prefer nodes with an available warm runtime of the request's type;
    /// fall back to least-loaded, with an overload spill guard.
    ReuseAffinity,
    /// Estimate each node's completion time — cold-start cost (zero when a
    /// warm runtime is available) plus the node's execution speed — and pick
    /// the minimum. The right policy for *heterogeneous* (cloudlet) clusters,
    /// where naive warm affinity can pin heavy work to a slow edge node.
    CostAware,
}

impl SchedulePolicy {
    /// Policy name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::RoundRobin => "round-robin",
            SchedulePolicy::LeastLoaded => "least-loaded",
            SchedulePolicy::ReuseAffinity => "reuse-affinity",
            SchedulePolicy::CostAware => "cost-aware",
        }
    }
}

/// Cluster errors.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster has no nodes.
    NoNodes,
    /// A node's gateway failed.
    Gateway(GatewayError),
    /// The ticket was already finished, or was not issued by this cluster.
    StaleTicket,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "cluster has no nodes"),
            ClusterError::Gateway(e) => write!(f, "gateway error: {e}"),
            ClusterError::StaleTicket => {
                write!(f, "ticket already finished or not issued by this cluster")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<GatewayError> for ClusterError {
    fn from(e: GatewayError) -> Self {
        ClusterError::Gateway(e)
    }
}

struct Node {
    name: String,
    gateway: Gateway<HotC>,
}

/// A registered function: its spec plus its cluster-interned runtime key.
struct FnEntry {
    spec: FunctionSpec,
    key: KeyId,
}

/// A single-use ticket for an in-flight clustered request.
///
/// The `token` is private: a ticket can only be obtained from
/// [`Cluster::begin`] and only redeemed once by [`Cluster::finish`] —
/// duplicating one (the node and [`InFlight`] are readable and `InFlight`
/// is `Clone`) yields [`ClusterError::StaleTicket`] instead of silently
/// skewing the load index.
#[derive(Debug)]
pub struct ClusterInFlight {
    /// Index of the node serving the request.
    pub node: usize,
    /// The node-local in-flight handle.
    pub inner: InFlight,
    token: u64,
}

/// Point-in-time view of one node, for reports and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// Node name.
    pub name: String,
    /// Live containers on the node.
    pub live_containers: usize,
    /// Requests currently executing on the node.
    pub inflight: usize,
    /// Requests the node has completed.
    pub requests: u64,
    /// Cold starts the node has paid.
    pub cold_starts: u64,
}

/// Aggregate cluster counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Requests completed across all nodes.
    pub requests: u64,
    /// Cold starts across all nodes.
    pub cold_starts: u64,
    /// Live containers across all nodes.
    pub live_containers: usize,
}

/// Default seed for the power-of-two-choices sampler; override with
/// [`Cluster::set_placement_seed`].
const PLACEMENT_SEED: u64 = 0x0b5e_55ed;

/// A multi-host HotC deployment.
///
/// ```
/// use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
/// use faas::{AppProfile, FunctionSpec, Gateway};
/// use hotc::HotC;
/// use hotc_cluster::{Cluster, SchedulePolicy};
/// use simclock::SimTime;
///
/// let gateways = (0..3)
///     .map(|i| {
///         let engine = ContainerEngine::with_local_images(HardwareProfile::server());
///         (format!("node-{i}"), Gateway::new(engine, HotC::with_defaults()))
///     })
///     .collect();
/// let mut cluster = Cluster::new(SchedulePolicy::ReuseAffinity, gateways);
/// cluster.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
///     LanguageRuntime::Python,
/// )));
///
/// let (node_a, t1) = cluster.handle("qr-code", SimTime::ZERO).unwrap();
/// let (node_b, t2) = cluster.handle("qr-code", t1.t6_gateway_out).unwrap();
/// assert_eq!(node_a, node_b, "affinity returns to the warm node");
/// assert!(t1.cold && !t2.cold);
/// ```
pub struct Cluster {
    nodes: Vec<Node>,
    policy: SchedulePolicy,
    next_rr: usize,
    /// Function name → index into `specs`. The single cluster-wide registry.
    functions: FastMap<String, u32>,
    specs: Vec<FnEntry>,
    /// Cluster-wide key interner; rows of `warm` are indexed by its ids.
    interner: KeyInterner,
    warm: WarmIndex,
    load: LoadIndex,
    rng: SimRng,
    /// Warm-view sync interval; zero means the event-maintained oracle.
    staleness: SimDuration,
    last_sync: Option<SimTime>,
    next_token: u64,
    outstanding: FastSet<u64>,
}

impl Cluster {
    /// Spill threshold for reuse affinity: if the warm node's in-flight load
    /// exceeds `mean × OVERLOAD_FACTOR + 1`, the request goes to a
    /// power-of-two-choices pick instead.
    pub const OVERLOAD_FACTOR: f64 = 2.0;

    /// Builds a cluster from named per-node gateways.
    pub fn new(policy: SchedulePolicy, gateways: Vec<(String, Gateway<HotC>)>) -> Self {
        // The cluster interner must agree with the node pools on which
        // configurations collapse to one key; heterogeneous key policies
        // across nodes are not supported.
        let key_policy = gateways
            .first()
            .map(|(_, g)| g.provider().pool().policy())
            .unwrap_or_default();
        let nodes: Vec<Node> = gateways
            .into_iter()
            .map(|(name, gateway)| Node { name, gateway })
            .collect();
        let mut warm = WarmIndex::new();
        warm.ensure_nodes(nodes.len());
        let load = LoadIndex::new(nodes.len());
        Cluster {
            nodes,
            policy,
            next_rr: 0,
            functions: FastMap::default(),
            specs: Vec::new(),
            interner: KeyInterner::new(key_policy),
            warm,
            load,
            rng: SimRng::seeded(PLACEMENT_SEED),
            staleness: SimDuration::ZERO,
            last_sync: None,
            next_token: 0,
            outstanding: FastSet::default(),
        }
    }

    /// Makes warm-reading policies (reuse affinity, cost-aware) see
    /// availability through a view that is only synchronized every
    /// `staleness` (0 = the event-maintained oracle). Models the §VII
    /// distributed-registry deployment.
    pub fn set_warm_view_staleness(&mut self, staleness: SimDuration) {
        self.staleness = staleness;
        self.last_sync = None;
        if staleness.is_zero() {
            // Entering oracle mode: restore believed == live right away.
            for i in 0..self.nodes.len() {
                let pool = self.nodes[i].gateway.provider().pool().sharded();
                self.warm.resync_node(i, pool, &self.interner);
            }
        }
    }

    /// Reseeds the power-of-two-choices sampler (deterministic placement
    /// replay for tests and experiments).
    pub fn set_placement_seed(&mut self, seed: u64) {
        self.rng = SimRng::seeded(seed);
    }

    /// The scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a function cluster-wide (functions are deployable
    /// anywhere; placement is per-request). The spec is stored once — the
    /// serving node receives it at placement time — so registration cost is
    /// independent of cluster size.
    pub fn register_everywhere(&mut self, spec: FunctionSpec) {
        let key = self.interner.intern(&spec.config);
        self.warm.ensure_rows(self.interner.len());
        match self.functions.get(spec.name.as_str()) {
            Some(&idx) => self.specs[idx as usize] = FnEntry { spec, key },
            None => {
                let idx = self.specs.len() as u32;
                self.functions.insert(spec.name.clone(), idx);
                self.specs.push(FnEntry { spec, key });
            }
        }
    }

    /// Believed warm-available count for `function` on `node`, as the
    /// scheduler sees it — through the staleness model, not the live pool.
    /// Every warm-reading policy (reuse affinity *and* cost-aware) consults
    /// exactly this view.
    pub fn believed_warm(&self, function: &str, node: usize) -> usize {
        self.functions
            .get(function)
            .map(|&f| self.warm.believed(self.specs[f as usize].key, node) as usize)
            .unwrap_or(0)
    }

    /// Resynchronizes every node's believed warm set if the sync window has
    /// elapsed (stale mode only; the oracle is maintained by per-event
    /// touches instead).
    fn sync_if_due(&mut self, now: SimTime) {
        if self.staleness.is_zero() {
            return;
        }
        let due = match self.last_sync {
            None => true,
            Some(last) => now.duration_since(last) >= self.staleness,
        };
        if !due {
            return;
        }
        self.last_sync = Some(now);
        for i in 0..self.nodes.len() {
            let pool = self.nodes[i].gateway.provider().pool().sharded();
            self.warm.resync_node(i, pool, &self.interner);
        }
    }

    /// Estimated completion time of function `f` on node `i`: cold-start
    /// cost (zero if the *believed* view holds a warm runtime) plus the
    /// app's execution time at the node's speed, plus a small queueing
    /// penalty per in-flight request.
    fn completion_estimate(&self, i: usize, f: u32) -> Option<SimDuration> {
        let entry = &self.specs[f as usize];
        let engine = self.nodes[i].gateway.engine();
        let cold = if self.warm.believed(entry.key, i) > 0 {
            SimDuration::ZERO
        } else {
            engine.estimate_cold_start(&entry.spec.config).ok()?
        };
        let hw = engine.host().hardware();
        let exec = hw.compute(entry.spec.app.work.compute + entry.spec.app.app_init);
        let queue = SimDuration::from_millis(20) * self.load.load(i) as u64;
        Some(cold + exec + queue)
    }

    fn cheapest_node(&mut self, f: u32) -> usize {
        let best = (0..self.nodes.len())
            .filter_map(|i| self.completion_estimate(i, f).map(|c| (c, i)))
            .min_by_key(|&(c, i)| (c, i))
            .map(|(_, i)| i);
        match best {
            Some(i) => i,
            // No estimate anywhere (engine errors): fall back to load.
            None => self.load.pick_p2c(&mut self.rng),
        }
    }

    /// Picks a node for `function`, returning `(function index, node)`.
    fn place(&mut self, function: &str, now: SimTime) -> Result<(u32, usize), ClusterError> {
        if self.nodes.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        let Some(&f) = self.functions.get(function) else {
            return Err(ClusterError::Gateway(GatewayError::UnknownFunction(
                function.to_string(),
            )));
        };
        let node = match self.policy {
            SchedulePolicy::RoundRobin => {
                let i = self.next_rr % self.nodes.len();
                self.next_rr += 1;
                i
            }
            SchedulePolicy::LeastLoaded => self.load.pick_p2c(&mut self.rng),
            SchedulePolicy::ReuseAffinity => {
                self.sync_if_due(now);
                match self.warm.best_warm(self.specs[f as usize].key, &self.load) {
                    Some(candidate) => {
                        // Overload guard: spill when the warm node is far
                        // hotter than the average.
                        let limit = self.load.mean() * Self::OVERLOAD_FACTOR + 1.0;
                        if (self.load.load(candidate) as f64) > limit {
                            self.load.pick_p2c(&mut self.rng)
                        } else {
                            candidate
                        }
                    }
                    None => self.load.pick_p2c(&mut self.rng),
                }
            }
            SchedulePolicy::CostAware => {
                self.sync_if_due(now);
                self.cheapest_node(f)
            }
        };
        Ok((f, node))
    }

    /// Starts a request: picks a node, begins execution there. Complete it
    /// with [`Self::finish`] once the clock reaches `inner.t4_func_end`.
    pub fn begin(&mut self, function: &str, now: SimTime) -> Result<ClusterInFlight, ClusterError> {
        let (f, node) = self.place(function, now)?;
        let inner = self.nodes[node]
            .gateway
            .begin_with(&self.specs[f as usize].spec, now)?;
        let entry = &self.specs[f as usize];
        let pool = self.nodes[node].gateway.provider().pool().sharded();
        self.warm
            .ensure_mapping(entry.key, node, pool, &entry.spec.config);
        if self.staleness.is_zero() {
            if inner.cold {
                // A cold start may have evicted other keys on the node
                // (capacity limits); refresh its whole warm set.
                self.warm.resync_node(node, pool, &self.interner);
            } else {
                self.warm.touch_true(entry.key, node, pool);
            }
        } else {
            // The stale-view placement debit: consume the believed slot now
            // so a burst within one sync window spreads across warm
            // capacity instead of stampeding a single "1 warm" node.
            self.warm.debit(entry.key, node);
        }
        self.load.inc(node);
        let token = self.next_token;
        self.next_token += 1;
        self.outstanding.insert(token);
        Ok(ClusterInFlight { node, inner, token })
    }

    /// Completes a clustered request. Tickets are single-use: a duplicate
    /// (or foreign) ticket returns [`ClusterError::StaleTicket`] without
    /// touching any node.
    pub fn finish(&mut self, ticket: ClusterInFlight) -> Result<RequestTrace, ClusterError> {
        let ClusterInFlight { node, inner, token } = ticket;
        if !self.outstanding.remove(&token) {
            return Err(ClusterError::StaleTicket);
        }
        let f = self.functions.get(inner.function.as_str()).copied();
        let trace = self.nodes[node].gateway.finish(inner)?;
        self.load.dec(node);
        if self.staleness.is_zero() {
            if let Some(f) = f {
                let key = self.specs[f as usize].key;
                let pool = self.nodes[node].gateway.provider().pool().sharded();
                self.warm.touch_true(key, node, pool);
            }
        }
        Ok(trace)
    }

    /// Serves one request start-to-finish (non-overlapping workloads).
    pub fn handle(
        &mut self,
        function: &str,
        now: SimTime,
    ) -> Result<(usize, RequestTrace), ClusterError> {
        let ticket = self.begin(function, now)?;
        let node = ticket.node;
        Ok((node, self.finish(ticket)?))
    }

    /// Runs provider maintenance on every node. In oracle mode, nodes whose
    /// pool `mutation_epoch` drifted since their last resync (the tick's
    /// controller may have prewarmed or retired runtimes) are resynced —
    /// idle nodes cost one atomic load, keeping the warm-index part of the
    /// tick O(changed nodes).
    pub fn tick(&mut self, now: SimTime) -> Result<(), ClusterError> {
        for node in &mut self.nodes {
            node.gateway.tick(now)?;
        }
        if self.staleness.is_zero() {
            for i in 0..self.nodes.len() {
                let pool = self.nodes[i].gateway.provider().pool().sharded();
                if pool.mutation_epoch() != self.warm.node_epoch(i) {
                    self.warm.resync_node(i, pool, &self.interner);
                }
            }
        }
        Ok(())
    }

    /// Per-node snapshots.
    pub fn snapshots(&self) -> Vec<NodeSnapshot> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeSnapshot {
                name: n.name.clone(),
                live_containers: n.gateway.engine().live_count(),
                inflight: self.load.load(i) as usize,
                requests: n.gateway.stats().requests,
                cold_starts: n.gateway.stats().cold_starts,
            })
            .collect()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ClusterStats {
        let mut stats = ClusterStats::default();
        for n in &self.nodes {
            stats.requests += n.gateway.stats().requests;
            stats.cold_starts += n.gateway.stats().cold_starts;
            stats.live_containers += n.gateway.engine().live_count();
        }
        stats
    }

    /// Load imbalance: max over mean of per-node completed requests
    /// (1.0 = perfectly balanced).
    pub fn request_imbalance(&self) -> f64 {
        let counts: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| n.gateway.stats().requests as f64)
            .collect();
        let mean = counts.iter().sum::<f64>() / counts.len().max(1) as f64;
        if mean == 0.0 {
            return 1.0;
        }
        counts.iter().cloned().fold(0.0, f64::max) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
    use faas::AppProfile;
    use simclock::SimDuration;

    fn cluster(policy: SchedulePolicy, nodes: usize) -> Cluster {
        let gateways = (0..nodes)
            .map(|i| {
                let engine = ContainerEngine::with_local_images(HardwareProfile::server());
                (
                    format!("node-{i}"),
                    Gateway::new(engine, HotC::with_defaults()),
                )
            })
            .collect();
        let mut cluster = Cluster::new(policy, gateways);
        cluster.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
            LanguageRuntime::Python,
        )));
        cluster
    }

    #[test]
    fn round_robin_rotates() {
        let mut c = cluster(SchedulePolicy::RoundRobin, 3);
        let mut nodes = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..6 {
            let (node, trace) = c.handle("qr-code", now).unwrap();
            nodes.push(node);
            now = trace.t6_gateway_out + SimDuration::from_secs(1);
        }
        assert_eq!(nodes, vec![0, 1, 2, 0, 1, 2]);
        // Every node cold-started its own runtime.
        assert_eq!(c.stats().cold_starts, 3);
        assert_eq!(c.stats().live_containers, 3);
    }

    #[test]
    fn reuse_affinity_sticks_to_the_warm_node() {
        let mut c = cluster(SchedulePolicy::ReuseAffinity, 3);
        let mut now = SimTime::ZERO;
        let mut nodes = Vec::new();
        for _ in 0..6 {
            let (node, trace) = c.handle("qr-code", now).unwrap();
            nodes.push(node);
            now = trace.t6_gateway_out + SimDuration::from_secs(1);
        }
        // After the first (cold) placement, everything reuses that node.
        assert!(nodes[1..].iter().all(|&n| n == nodes[0]));
        assert_eq!(c.stats().cold_starts, 1);
        assert_eq!(c.stats().live_containers, 1);
    }

    #[test]
    fn least_loaded_spreads_overlapping_requests() {
        let mut c = cluster(SchedulePolicy::LeastLoaded, 3);
        // 30 overlapping requests: power-of-two-choices with load feedback
        // keeps the spread tight even though individual picks are sampled.
        let mut tickets = Vec::new();
        for i in 0..30u64 {
            let t = c
                .begin("qr-code", SimTime::ZERO + SimDuration::from_millis(i))
                .unwrap();
            tickets.push(t);
        }
        for snap in c.snapshots() {
            assert!((5..=15).contains(&snap.inflight), "{snap:?}");
        }
        for t in tickets {
            c.finish(t).unwrap();
        }
        assert!(c.snapshots().iter().all(|s| s.inflight == 0));
    }

    #[test]
    fn affinity_spills_when_warm_node_is_overloaded() {
        let mut c = cluster(SchedulePolicy::ReuseAffinity, 2);
        // Warm node 0 with a serving + release cycle.
        let (first, trace) = c.handle("qr-code", SimTime::ZERO).unwrap();
        let mut now = trace.t6_gateway_out + SimDuration::from_secs(1);

        // Pile 4 overlapping requests; the first reuses node `first`'s warm
        // runtime, then the rest must not all queue behind it.
        let mut tickets = Vec::new();
        let mut nodes_hit = Vec::new();
        for _ in 0..4 {
            let t = c.begin("qr-code", now).unwrap();
            nodes_hit.push(t.node);
            tickets.push(t);
            now += SimDuration::from_millis(1);
        }
        assert_eq!(nodes_hit[0], first);
        assert!(
            nodes_hit.iter().any(|&n| n != first),
            "overload must spill off the warm node: {nodes_hit:?}"
        );
        for t in tickets {
            c.finish(t).unwrap();
        }
    }

    #[test]
    fn empty_cluster_errors() {
        let mut c = Cluster::new(SchedulePolicy::RoundRobin, Vec::new());
        assert!(matches!(
            c.begin("qr-code", SimTime::ZERO),
            Err(ClusterError::NoNodes)
        ));
        assert!(c.is_empty());
    }

    #[test]
    fn unknown_function_surfaces_gateway_error() {
        let mut c = cluster(SchedulePolicy::RoundRobin, 2);
        assert!(matches!(
            c.handle("nope", SimTime::ZERO),
            Err(ClusterError::Gateway(GatewayError::UnknownFunction(_)))
        ));
    }

    #[test]
    fn snapshots_and_stats_agree() {
        let mut c = cluster(SchedulePolicy::RoundRobin, 2);
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            let (_, trace) = c.handle("qr-code", now).unwrap();
            now = trace.t6_gateway_out + SimDuration::from_secs(1);
        }
        let snaps = c.snapshots();
        let stats = c.stats();
        assert_eq!(
            snaps.iter().map(|s| s.requests).sum::<u64>(),
            stats.requests
        );
        assert_eq!(
            snaps.iter().map(|s| s.cold_starts).sum::<u64>(),
            stats.cold_starts
        );
        assert_eq!(stats.requests, 4);
        // Round robin on 2 nodes × 4 requests: perfectly balanced.
        assert!((c.request_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn double_finish_is_rejected() {
        let mut c = cluster(SchedulePolicy::LeastLoaded, 2);
        let t = c.begin("qr-code", SimTime::ZERO).unwrap();
        // `InFlight` is `Clone` and both readable fields are public, so a
        // duplicate ticket is constructible (here, with module access to
        // the token). Before the fix, finishing it a second time silently
        // drove the node's in-flight count negative-in-spirit
        // (`saturating_sub`), skewing least-loaded placement for the rest
        // of the run.
        let forged = ClusterInFlight {
            node: t.node,
            inner: t.inner.clone(),
            token: t.token,
        };
        c.finish(t).unwrap();
        assert!(matches!(c.finish(forged), Err(ClusterError::StaleTicket)));
        assert!(c.snapshots().iter().all(|s| s.inflight == 0));
        assert_eq!(c.stats().requests, 1);
    }
}

#[cfg(test)]
mod staleness_tests {
    use super::*;
    use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
    use faas::AppProfile;
    use simclock::SimDuration;

    fn cluster_with_staleness(staleness: SimDuration) -> Cluster {
        let gateways = (0..3)
            .map(|i| {
                let engine = ContainerEngine::with_local_images(HardwareProfile::server());
                (
                    format!("node-{i}"),
                    Gateway::new(engine, HotC::with_defaults()),
                )
            })
            .collect();
        let mut c = Cluster::new(SchedulePolicy::ReuseAffinity, gateways);
        c.set_warm_view_staleness(staleness);
        c.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
            LanguageRuntime::Python,
        )));
        c
    }

    #[test]
    fn fresh_view_behaves_like_oracle() {
        let mut c = cluster_with_staleness(SimDuration::ZERO);
        let mut now = SimTime::ZERO;
        let mut nodes = Vec::new();
        for _ in 0..5 {
            let (node, trace) = c.handle("qr-code", now).unwrap();
            nodes.push(node);
            now = trace.t6_gateway_out + SimDuration::from_secs(1);
        }
        assert!(nodes[1..].iter().all(|&n| n == nodes[0]));
        assert_eq!(c.stats().cold_starts, 1);
    }

    #[test]
    fn stale_view_misses_recent_warm_containers() {
        // 60 s staleness: the view synced at t=0 (no warm runtimes anywhere),
        // so requests shortly after the first one still see "nothing warm"
        // and fall back to the load sampler — landing on a cold node (the
        // seed fixes which one the sampler draws).
        let mut c = cluster_with_staleness(SimDuration::from_secs(60));
        c.set_placement_seed(7);
        let (first, trace) = c.handle("qr-code", SimTime::ZERO).unwrap();
        // Well within the stale window: the scheduler doesn't know node
        // `first` has a warm runtime now.
        let next_at = trace.t6_gateway_out + SimDuration::from_secs(5);
        let (second, _) = c.handle("qr-code", next_at).unwrap();
        assert_ne!(
            second, first,
            "stale view must not see the just-warmed node"
        );
        assert_eq!(c.stats().cold_starts, 2);

        // After the view refreshes, affinity works again.
        let (third, _) = c.handle("qr-code", SimTime::from_secs(120)).unwrap();
        let warm_nodes = [first, second];
        assert!(warm_nodes.contains(&third));
        assert_eq!(c.stats().cold_starts, 2);
    }

    #[test]
    fn staleness_degrades_cold_rate_monotonically() {
        // A round-robin-over-time single-tenant flow: every request arrives
        // 10 s after the previous finished. Fresh views give 1 cold start;
        // staler views give more.
        let run = |staleness_s: u64| {
            let mut c = cluster_with_staleness(SimDuration::from_secs(staleness_s));
            let mut now = SimTime::ZERO;
            for _ in 0..20 {
                let (_, trace) = c.handle("qr-code", now).unwrap();
                now = trace.t6_gateway_out + SimDuration::from_secs(10);
            }
            c.stats().cold_starts
        };
        let fresh = run(0);
        let mild = run(30);
        let heavy = run(600);
        assert_eq!(fresh, 1);
        assert!(mild >= fresh);
        assert!(heavy >= mild);
        assert!(
            heavy >= 3,
            "heavy staleness causes repeated cold routing: {heavy}"
        );
    }

    #[test]
    fn stale_burst_spreads_across_believed_warm_nodes() {
        // The stampede regression: before the placement debit, a burst
        // within one sync window chased the same "1 warm" snapshot entry —
        // one warm hit, then cold starts queueing on that node while the
        // other nodes' warm runtimes idled.
        let mut c = cluster_with_staleness(SimDuration::from_secs(60));
        // Warm one runtime on every node, behind the scheduler's back.
        let spec = FunctionSpec::from_app(AppProfile::qr_code(LanguageRuntime::Python));
        let mut now = SimTime::ZERO;
        for i in 0..3 {
            let inner = c.nodes[i].gateway.begin_with(&spec, now).unwrap();
            now = inner.t4_func_end + SimDuration::from_millis(1);
            c.nodes[i].gateway.finish(inner).unwrap();
        }
        // The first cluster placement syncs the view (1 warm per node);
        // the debit must then spread the overlapping burst.
        let mut tickets = Vec::new();
        for i in 0..3u64 {
            let t = c
                .begin("qr-code", now + SimDuration::from_millis(i))
                .unwrap();
            assert!(!t.inner.cold, "burst request {i} must hit a warm runtime");
            tickets.push(t);
        }
        let nodes: std::collections::BTreeSet<_> = tickets.iter().map(|t| t.node).collect();
        assert_eq!(nodes.len(), 3, "debited view spreads the burst");
        assert_eq!(
            c.stats().cold_starts,
            3,
            "only the priming cold starts, none from the burst"
        );
        for t in tickets {
            c.finish(t).unwrap();
        }
    }

    #[test]
    fn cost_aware_reads_the_same_stale_view_as_affinity() {
        // The oracle-leak regression: `completion_estimate()` used to call
        // the live pool directly, so cost-aware placement saw perfect warm
        // state even under staleness while reuse affinity saw the synced
        // view. Both must read the same believed counts.
        let gateways = (0..2)
            .map(|i| {
                let engine = ContainerEngine::with_local_images(HardwareProfile::server());
                (
                    format!("node-{i}"),
                    Gateway::new(engine, HotC::with_defaults()),
                )
            })
            .collect();
        let mut c = Cluster::new(SchedulePolicy::CostAware, gateways);
        c.set_warm_view_staleness(SimDuration::from_secs(600));
        let qr = FunctionSpec::from_app(AppProfile::qr_code(LanguageRuntime::Python));
        c.register_everywhere(qr.clone());
        c.register_everywhere(
            FunctionSpec::from_app(AppProfile::qr_code(LanguageRuntime::Go)).named("qr-go"),
        );

        // t=0: the view syncs empty; cold estimates tie → node 0; cold.
        let (first, trace) = c.handle("qr-code", SimTime::ZERO).unwrap();
        assert_eq!(first, 0);
        // Node 0 now holds a live warm qr-code runtime…
        let live = {
            let pool = c.nodes[0].gateway.provider().pool();
            pool.num_avail(&pool.key_of(&qr.config))
        };
        assert_eq!(live, 1);
        // …that the stale view cannot see — for *any* policy.
        assert_eq!(c.believed_warm("qr-code", 0), 0);

        // Load node 0 with a different function (cold estimates tie → 0).
        let now = trace.t6_gateway_out + SimDuration::from_secs(1);
        let blocker = c.begin("qr-go", now).unwrap();
        assert_eq!(blocker.node, 0);

        // The leaky estimator saw node 0's live warm runtime (cold cost 0)
        // and sent the request back to the loaded node; reading the view,
        // both nodes look cold and the queue penalty tips it to node 1.
        let t = c
            .begin("qr-code", now + SimDuration::from_millis(1))
            .unwrap();
        assert_eq!(
            t.node, 1,
            "stale cost-aware must not exploit live warm state"
        );
        assert!(t.inner.cold);
        c.finish(t).unwrap();
        c.finish(blocker).unwrap();
    }
}

#[cfg(test)]
mod cloudlet_tests {
    use super::*;
    use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
    use faas::AppProfile;
    use simclock::SimDuration;

    /// One cloud server plus two Raspberry Pis (a cloudlet).
    fn heterogeneous(policy: SchedulePolicy) -> Cluster {
        let mut gateways = vec![(
            "server".to_string(),
            Gateway::new(
                ContainerEngine::with_local_images(HardwareProfile::server()),
                HotC::with_defaults(),
            ),
        )];
        for i in 0..2 {
            gateways.push((
                format!("pi-{i}"),
                Gateway::new(
                    ContainerEngine::with_local_images(HardwareProfile::raspberry_pi3()),
                    HotC::with_defaults(),
                ),
            ));
        }
        let mut c = Cluster::new(policy, gateways);
        c.register_everywhere(FunctionSpec::from_app(AppProfile::v3_app()));
        c.register_everywhere(FunctionSpec::from_app(AppProfile::qr_code(
            LanguageRuntime::Go,
        )));
        c
    }

    #[test]
    fn cost_aware_sends_heavy_work_to_the_server() {
        let mut c = heterogeneous(SchedulePolicy::CostAware);
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            let (node, trace) = c.handle("v3-app", now).unwrap();
            assert_eq!(node, 0, "heavy inference belongs on the server");
            now = trace.t6_gateway_out + SimDuration::from_secs(5);
        }
    }

    #[test]
    fn cost_aware_prefers_a_warm_pi_for_light_work() {
        let mut c = heterogeneous(SchedulePolicy::CostAware);
        // Cold everywhere: the server's fast cold start wins the first one.
        let (first, trace) = c.handle("qr-code", SimTime::ZERO).unwrap();
        assert_eq!(first, 0);
        // Occupy the server with heavy work so its warm runtime is the only
        // thing that differentiates; still prefers the warm server.
        let (second, _) = c
            .handle("qr-code", trace.t6_gateway_out + SimDuration::from_secs(1))
            .unwrap();
        assert_eq!(second, 0, "warm server beats cold pi for light work");
    }

    #[test]
    fn affinity_can_pin_heavy_work_to_a_slow_node() {
        // The §VII hazard cost-aware fixes: seed the v3 runtime on a Pi, and
        // warm affinity keeps sending 30×-slower inferences there.
        let mut c = heterogeneous(SchedulePolicy::ReuseAffinity);
        // Warm the v3 runtime on pi-0 (node 1) behind the scheduler's back…
        let spec = FunctionSpec::from_app(AppProfile::v3_app());
        let inner = c.nodes[1].gateway.begin_with(&spec, SimTime::ZERO).unwrap();
        let end = inner.t4_func_end;
        c.nodes[1].gateway.finish(inner).unwrap();
        // …and let the next maintenance tick resync the oracle view (the
        // node's pool epoch drifted, so the tick picks it up).
        c.tick(end + SimDuration::from_secs(1)).unwrap();

        // With the cluster idle, affinity pins the heavy work to the Pi.
        let (pinned, trace) = c.handle("v3-app", end + SimDuration::from_secs(2)).unwrap();
        assert_eq!(pinned, 1, "warm affinity returns to the slow node");
        assert!(!trace.cold);
        // Cost-aware in the same state would pay a cold start on the server
        // instead — and still finish far sooner than the Pi's execution.
        let pi_exec = trace.total();
        assert!(pi_exec > SimDuration::from_secs(20), "{pi_exec}");
    }
}
