//! Facade crate for the HotC reproduction workspace.
//!
//! Re-exports the subsystem crates under one roof so the examples and
//! integration tests read naturally. Library users should depend on the
//! individual crates (`hotc-core`, `faas`, `containersim`, …) directly.

pub use containersim;
pub use faas;
pub use hotc;
pub use metrics_lite;
pub use predictor;
pub use simclock;
pub use workloads;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use containersim::{
        ContainerConfig, ContainerEngine, HardwareProfile, ImageId, LanguageRuntime, NetworkMode,
    };
    pub use faas::{AppProfile, FixedKeepAlive, Gateway, PeriodicWarmup, RuntimeProvider};
    pub use hotc::{
        ConcurrentGateway, HotC, HotCConfig, KeyPolicy, PoolLimits, ShardedGateway, ShardedPool,
    };
    pub use metrics_lite::{LatencyRecorder, Table};
    pub use simclock::{SimDuration, SimTime};
}
