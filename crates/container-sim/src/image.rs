//! Image registry, layers, and the local image store.
//!
//! §III-B (Alibaba practice): "containerized applications have to be
//! downloaded from the warehouse and decompressed from the images before they
//! are used" — so the model charges a pull cost (download, bandwidth bound)
//! plus an unpack cost (decompression, CPU/disk bound) for every layer that
//! is not already in the host's local store. Layers are content-addressed and
//! shared between images, so pulling `python:3.8` after `ubuntu:16.04` only
//! fetches the python layers — this layer sharing is what makes the paper's
//! Fig. 2 observation (a few base images dominate) matter for reuse.
//!
//! The paper's own experiments store images locally (§V-A), so the default
//! experiment setup pre-pulls everything and never pays pull cost; the
//! image-distribution ablation exercises the cold-pull path.

use crate::costmodel;
use crate::hardware::HardwareProfile;
use crate::runtime::LanguageRuntime;
use simclock::SimDuration;
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of an image: `name:tag`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageId {
    /// Repository name, e.g. `python`.
    pub name: String,
    /// Tag, e.g. `3.8-alpine`.
    pub tag: String,
}

impl ImageId {
    /// Builds an id from name and tag.
    pub fn new(name: impl Into<String>, tag: impl Into<String>) -> Self {
        ImageId {
            name: name.into(),
            tag: tag.into(),
        }
    }

    /// Parses `name[:tag]`, defaulting the tag to `latest`.
    pub fn parse(s: &str) -> Self {
        match s.split_once(':') {
            Some((n, t)) => ImageId::new(n, t),
            None => ImageId::new(s, "latest"),
        }
    }
}

impl std::fmt::Display for ImageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.name, self.tag)
    }
}

/// A content-addressed layer: digest plus compressed size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    /// Content digest (synthetic but unique per distinct content).
    pub digest: String,
    /// Compressed size in bytes (what the wire transfer costs).
    pub compressed_bytes: u64,
}

impl Layer {
    /// Creates a layer with a synthetic digest derived from a label.
    pub fn new(label: &str, compressed_bytes: u64) -> Self {
        Layer {
            digest: format!("sha256:{label}"),
            compressed_bytes,
        }
    }
}

/// Full description of an image in the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageSpec {
    /// The image identifier.
    pub id: ImageId,
    /// Ordered layer stack, base first. Shared layers carry equal digests.
    pub layers: Vec<Layer>,
    /// The language runtime the image ships (drives cold-init cost).
    pub runtime: LanguageRuntime,
    /// Base OS family, for the Fig. 2(b) configuration survey.
    pub os_family: String,
}

impl ImageSpec {
    /// Total compressed size across layers.
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.compressed_bytes).sum()
    }
}

/// The remote registry: the source of truth for image specs.
#[derive(Debug, Clone, Default)]
pub struct ImageRegistry {
    images: BTreeMap<ImageId, ImageSpec>,
}

impl ImageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated with the image catalogue the Fig. 2 survey
    /// found dominant: a few OS bases, language runtimes layered on them, and
    /// common applications.
    pub fn with_default_catalogue() -> Self {
        let mut reg = ImageRegistry::new();
        let mb = |m: u64| m * 1024 * 1024;

        // OS base layers — shared by everything built on them.
        let alpine = Layer::new("alpine-3.12", mb(3));
        let ubuntu = Layer::new("ubuntu-16.04", mb(44));
        let debian = Layer::new("debian-buster-slim", mb(27));

        let mut add = |name: &str,
                       tag: &str,
                       base: &Layer,
                       extra: Vec<Layer>,
                       runtime: LanguageRuntime,
                       os: &str| {
            let mut layers = vec![base.clone()];
            layers.extend(extra);
            reg.publish(ImageSpec {
                id: ImageId::new(name, tag),
                layers,
                runtime,
                os_family: os.to_string(),
            });
        };

        add(
            "alpine",
            "3.12",
            &alpine,
            vec![],
            LanguageRuntime::Native,
            "alpine",
        );
        add(
            "ubuntu",
            "16.04",
            &ubuntu,
            vec![],
            LanguageRuntime::Native,
            "ubuntu",
        );
        add(
            "debian",
            "buster-slim",
            &debian,
            vec![],
            LanguageRuntime::Native,
            "debian",
        );
        add(
            "python",
            "3.8-alpine",
            &alpine,
            vec![Layer::new("python-3.8", mb(42))],
            LanguageRuntime::Python,
            "alpine",
        );
        add(
            "python",
            "3.8",
            &debian,
            vec![Layer::new("python-3.8-full", mb(330))],
            LanguageRuntime::Python,
            "debian",
        );
        add(
            "node",
            "12-alpine",
            &alpine,
            vec![Layer::new("node-12", mb(36))],
            LanguageRuntime::NodeJs,
            "alpine",
        );
        add(
            "golang",
            "1.13",
            &debian,
            vec![Layer::new("golang-1.13", mb(120))],
            LanguageRuntime::Go,
            "debian",
        );
        add(
            "openjdk",
            "8-jre",
            &debian,
            vec![Layer::new("openjdk-8-jre", mb(85))],
            LanguageRuntime::Java,
            "debian",
        );
        add(
            "ruby",
            "2.6",
            &debian,
            vec![Layer::new("ruby-2.6", mb(95))],
            LanguageRuntime::Ruby,
            "debian",
        );
        add(
            "nginx",
            "1.17",
            &debian,
            vec![Layer::new("nginx-1.17", mb(22))],
            LanguageRuntime::Native,
            "debian",
        );
        add(
            "redis",
            "5.0",
            &debian,
            vec![Layer::new("redis-5.0", mb(12))],
            LanguageRuntime::Native,
            "debian",
        );
        add(
            "tensorflow",
            "1.13-py3",
            &ubuntu,
            vec![
                Layer::new("python-3.6", mb(140)),
                Layer::new("tensorflow-1.13", mb(410)),
            ],
            LanguageRuntime::Python,
            "ubuntu",
        );
        add(
            "cassandra",
            "3.11",
            &debian,
            vec![
                Layer::new("openjdk-8-jre", mb(85)),
                Layer::new("cassandra-3.11", mb(130)),
            ],
            LanguageRuntime::Java,
            "debian",
        );
        reg
    }

    /// Publishes (or replaces) an image spec.
    pub fn publish(&mut self, spec: ImageSpec) {
        self.images.insert(spec.id.clone(), spec);
    }

    /// Looks up an image.
    pub fn get(&self, id: &ImageId) -> Option<&ImageSpec> {
        self.images.get(id)
    }

    /// Iterates over all images.
    pub fn iter(&self) -> impl Iterator<Item = &ImageSpec> {
        self.images.values()
    }

    /// Number of published images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// How image layers are fetched when missing from the local store.
///
/// §III-B (Alibaba practices): to mitigate cold start at scale they proposed
/// "a new image format that does not need to fully download", an efficient
/// compression algorithm, and "a P2P network for data and image
/// distribution" to relieve registry congestion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PullStrategy {
    /// Fetch every missing byte from the central registry.
    #[default]
    Registry,
    /// Peer-to-peer distribution: `peers` nearby hosts also serve chunks,
    /// multiplying effective download bandwidth (diminishing past 8 peers,
    /// where the local NIC saturates).
    P2p {
        /// Number of peer hosts seeding the layers.
        peers: u32,
    },
    /// Lazy/streaming image format ("does not need to fully download"):
    /// only the fraction of bytes needed to boot is pulled eagerly; the
    /// rest streams in the background off the critical path.
    Lazy {
        /// Eager fraction in percent (e.g. 15 ⇒ boot after 15 % of bytes).
        eager_pct: u8,
    },
}

impl PullStrategy {
    /// Effective critical-path bytes and bandwidth multiplier for a transfer
    /// of `bytes`.
    fn critical_path(self, bytes: u64) -> (u64, f64) {
        match self {
            PullStrategy::Registry => (bytes, 1.0),
            PullStrategy::P2p { peers } => {
                let speedup = 1.0 + (peers.min(8) as f64) * 0.75;
                (bytes, speedup)
            }
            PullStrategy::Lazy { eager_pct } => {
                let pct = u64::from(eager_pct.clamp(1, 100));
                (bytes * pct / 100, 1.0)
            }
        }
    }
}

/// Cost of one image pull, split into its two phases.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PullCost {
    /// Transferring missing layer bytes (bandwidth-bound).
    pub download: SimDuration,
    /// Decompressing/unpacking them (CPU/disk-bound).
    pub unpack: SimDuration,
}

/// Per-host cache of unpacked layers and image metadata.
#[derive(Debug, Clone, Default)]
pub struct LocalImageStore {
    cached_layers: BTreeSet<String>,
    cached_images: BTreeSet<ImageId>,
    strategy: PullStrategy,
}

impl LocalImageStore {
    /// An empty local store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the image (all layers + metadata) is fully cached.
    pub fn has_image(&self, id: &ImageId) -> bool {
        self.cached_images.contains(id)
    }

    /// Bytes that would need to be transferred to pull `spec` right now
    /// (uncached layers only — layer sharing in action).
    pub fn missing_bytes(&self, spec: &ImageSpec) -> u64 {
        spec.layers
            .iter()
            .filter(|l| !self.cached_layers.contains(&l.digest))
            .map(|l| l.compressed_bytes)
            .sum()
    }

    /// Sets the distribution strategy for future pulls.
    pub fn set_strategy(&mut self, strategy: PullStrategy) {
        self.strategy = strategy;
    }

    /// The active pull strategy.
    pub fn strategy(&self) -> PullStrategy {
        self.strategy
    }

    /// Pulls an image: returns the virtual *critical-path* cost (download at
    /// the strategy's effective bandwidth + decompress) and marks its layers
    /// cached. Pulling a cached image is free.
    pub fn pull(&mut self, spec: &ImageSpec, hw: &HardwareProfile) -> SimDuration {
        let cost = self.pull_split(spec, hw);
        cost.download + cost.unpack
    }

    /// Like [`Self::pull`], but reports the download (bandwidth-bound) and
    /// unpack (decompression-bound) phases separately, for per-stage
    /// telemetry.
    pub fn pull_split(&mut self, spec: &ImageSpec, hw: &HardwareProfile) -> PullCost {
        if self.has_image(&spec.id) {
            return PullCost::default();
        }
        let missing = self.missing_bytes(spec);
        let (critical_bytes, speedup) = self.strategy.critical_path(missing);
        let download = SimDuration::from_secs_f64(
            critical_bytes as f64 / (costmodel::PULL_BYTES_PER_SEC as f64 * speedup),
        );
        let unpack = SimDuration::from_secs_f64(
            critical_bytes as f64 / costmodel::UNPACK_BYTES_PER_SEC as f64,
        );
        for layer in &spec.layers {
            self.cached_layers.insert(layer.digest.clone());
        }
        self.cached_images.insert(spec.id.clone());
        PullCost {
            download: hw.io(download),
            unpack: hw.io(unpack),
        }
    }

    /// Pre-pulls every image in a registry (the paper's "images were stored
    /// locally" setup). Returns total virtual cost.
    pub fn prefetch_all(&mut self, registry: &ImageRegistry, hw: &HardwareProfile) -> SimDuration {
        registry.iter().map(|spec| self.pull(spec, hw)).sum()
    }

    /// Number of distinct cached layers.
    pub fn cached_layer_count(&self) -> usize {
        self.cached_layers.len()
    }

    /// Evicts an image's metadata (layers stay, as Docker does on `rmi` with
    /// shared layers referenced elsewhere — simplified: layers always stay).
    pub fn evict_image(&mut self, id: &ImageId) {
        self.cached_images.remove(id);
    }
}

impl stdshim::ToJson for ImageId {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::Str(self.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ImageRegistry {
        ImageRegistry::with_default_catalogue()
    }

    #[test]
    fn catalogue_has_core_images() {
        let r = reg();
        for name in [
            "alpine:3.12",
            "python:3.8-alpine",
            "golang:1.13",
            "openjdk:8-jre",
            "tensorflow:1.13-py3",
            "cassandra:3.11",
        ] {
            assert!(r.get(&ImageId::parse(name)).is_some(), "missing {name}");
        }
    }

    #[test]
    fn parse_defaults_tag_to_latest() {
        assert_eq!(ImageId::parse("nginx"), ImageId::new("nginx", "latest"));
        assert_eq!(ImageId::parse("python:3.8"), ImageId::new("python", "3.8"));
    }

    #[test]
    fn pull_charges_once() {
        let r = reg();
        let hw = HardwareProfile::server();
        let mut store = LocalImageStore::new();
        let spec = r.get(&ImageId::parse("python:3.8-alpine")).unwrap();
        let first = store.pull(spec, &hw);
        assert!(!first.is_zero());
        let second = store.pull(spec, &hw);
        assert!(second.is_zero());
        assert!(store.has_image(&spec.id));
    }

    #[test]
    fn shared_layers_reduce_pull_cost() {
        let r = reg();
        let hw = HardwareProfile::server();

        // Pull node:12-alpine first; python:3.8-alpine shares the alpine base.
        let mut warm = LocalImageStore::new();
        warm.pull(r.get(&ImageId::parse("node:12-alpine")).unwrap(), &hw);
        let py = r.get(&ImageId::parse("python:3.8-alpine")).unwrap();
        let shared_cost = warm.pull(py, &hw);

        let mut cold = LocalImageStore::new();
        let cold_cost = cold.pull(py, &hw);

        assert!(shared_cost < cold_cost, "{shared_cost} !< {cold_cost}");
    }

    #[test]
    fn pull_cost_proportional_to_bytes() {
        let r = reg();
        let hw = HardwareProfile::server();
        let tf = r.get(&ImageId::parse("tensorflow:1.13-py3")).unwrap();
        let alp = r.get(&ImageId::parse("alpine:3.12")).unwrap();
        let mut s1 = LocalImageStore::new();
        let mut s2 = LocalImageStore::new();
        let big = s1.pull(tf, &hw);
        let small = s2.pull(alp, &hw);
        let byte_ratio = tf.total_bytes() as f64 / alp.total_bytes() as f64;
        let cost_ratio = big.as_secs_f64() / small.as_secs_f64();
        assert!((cost_ratio / byte_ratio - 1.0).abs() < 0.05);
    }

    #[test]
    fn prefetch_then_all_pulls_free() {
        let r = reg();
        let hw = HardwareProfile::server();
        let mut store = LocalImageStore::new();
        let cost = store.prefetch_all(&r, &hw);
        assert!(!cost.is_zero());
        for spec in r.iter() {
            assert!(store.pull(spec, &hw).is_zero());
        }
    }

    #[test]
    fn edge_pull_slower() {
        let r = reg();
        let pi = HardwareProfile::raspberry_pi3();
        let server = HardwareProfile::server();
        let spec = r.get(&ImageId::parse("python:3.8")).unwrap();
        let mut a = LocalImageStore::new();
        let mut b = LocalImageStore::new();
        assert!(a.pull(spec, &pi) > b.pull(spec, &server));
    }

    #[test]
    fn p2p_accelerates_and_lazy_shortens_critical_path() {
        let r = reg();
        let hw = HardwareProfile::server();
        let spec = r.get(&ImageId::parse("tensorflow:1.13-py3")).unwrap();

        let mut registry_store = LocalImageStore::new();
        let direct = registry_store.pull(spec, &hw);

        let mut p2p_store = LocalImageStore::new();
        p2p_store.set_strategy(PullStrategy::P2p { peers: 4 });
        let p2p = p2p_store.pull(spec, &hw);

        let mut lazy_store = LocalImageStore::new();
        lazy_store.set_strategy(PullStrategy::Lazy { eager_pct: 15 });
        let lazy = lazy_store.pull(spec, &hw);

        assert!(p2p < direct, "p2p {p2p} !< direct {direct}");
        assert!(lazy < p2p, "lazy {lazy} !< p2p {p2p}");
        // Lazy boots after ~15 % of the bytes.
        let ratio = lazy.as_secs_f64() / direct.as_secs_f64();
        assert!((0.10..0.20).contains(&ratio), "lazy/direct = {ratio}");
    }

    #[test]
    fn p2p_speedup_saturates() {
        let few = PullStrategy::P2p { peers: 2 };
        let many = PullStrategy::P2p { peers: 100 };
        let cap = PullStrategy::P2p { peers: 8 };
        let bytes = 100 * 1024 * 1024;
        let t = |s: PullStrategy| {
            let (b, speed) = (s.critical_path(bytes).0, s.critical_path(bytes).1);
            b as f64 / speed
        };
        assert!(t(few) > t(cap));
        assert!(
            (t(many) - t(cap)).abs() < 1e-9,
            "past 8 peers the NIC saturates"
        );
    }

    #[test]
    fn evict_image_forces_repull_metadata() {
        let r = reg();
        let hw = HardwareProfile::server();
        let mut store = LocalImageStore::new();
        let spec = r.get(&ImageId::parse("redis:5.0")).unwrap();
        store.pull(spec, &hw);
        store.evict_image(&spec.id);
        assert!(!store.has_image(&spec.id));
        // Layers are still cached, so the re-pull transfers nothing.
        assert_eq!(store.missing_bytes(spec), 0);
    }
}
