//! The paper's combined predictor: exponential smoothing + Markov chain.
//!
//! §IV-C: the Markov chain "predicts the results through the transition
//! probability between states and can better compensate for limitations in
//! the prediction process of exponential smoothing", while "the exponential
//! smoothing method can fit the available container data to find out its
//! changing trend, which can rectify the limitations of the Markov chain
//! prediction process".
//!
//! [`EsMarkov`] implements that division of labour directly:
//!
//! 1. A region partition is maintained over a sliding window of the demand
//!    series, and an Eq. 2 Markov chain is trained on the region sequence.
//! 2. At prediction time the chain picks the most probable *next region*
//!    from the current one; Eq. 1 exponential smoothing provides the trend
//!    value, which is **clamped into the predicted region's bounds** — the
//!    region supplies robustness to volatility, the trend supplies precision
//!    within the region (the paper's "predicted value is the midpoint" is
//!    the special case where the trend lies outside the region entirely;
//!    clamping to the nearer bound tightens it without changing the region
//!    decision).
//! 3. When the chain has never been observed leaving the current region
//!    (first-time regime shift), there is no evidence to correct with and
//!    the predictor falls back to pure exponential smoothing.
//!
//! On recurring patterns (the situation of Fig. 10(a), where the demand for
//! a runtime type jumps 8 → 19 and the chain has seen such transitions), the
//! correction pulls the lagging smoother into the right region, reproducing
//! the reported relative-error drop from ≈29 % to ≈10 %.

use crate::markov::{MarkovChain, RegionPartition};
use crate::smoothing::{ExponentialSmoothing, InitialValue};
use crate::Predictor;

use std::collections::{BTreeMap, VecDeque};
use stdshim::{JsonValue, ToJson};

/// Maps an `f64` to a `u64` whose unsigned order matches IEEE-754 total
/// order, so a `BTreeMap` keyed on it acts as an ordered multiset of raw
/// samples (min/max in O(log n), exact under duplicate values).
fn total_order_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`total_order_bits`].
fn from_total_order_bits(k: u64) -> f64 {
    f64::from_bits(if k >> 63 == 1 { k & !(1 << 63) } else { !k })
}

/// Exponential smoothing with a Markov-chain region correction.
///
/// ```
/// use predictor::{EsMarkov, Predictor};
///
/// let mut p = EsMarkov::paper_default(); // α = 0.8
/// for demand in [8.0, 8.0, 9.0, 8.0, 8.0, 8.0] {
///     p.observe(demand);
/// }
/// let next = p.predict();
/// assert!((7.0..9.5).contains(&next), "{next}");
/// ```
#[derive(Debug, Clone)]
pub struct EsMarkov {
    es: ExponentialSmoothing,
    /// Sliding window of raw observations used to (re)build the partition.
    window: VecDeque<f64>,
    /// Window capacity.
    window_cap: usize,
    /// Number of demand regions.
    regions: usize,
    /// Chain over the windowed demand regions, maintained incrementally and
    /// rebuilt only when the window's value range drifts.
    chain: MarkovChain,
    /// Ordered multiset of the windowed values; its ends are the exact
    /// min/max, which decide whether the partition (and thus every region
    /// assignment) is still valid after an eviction. Built lazily when the
    /// window first saturates: while it is still growing nothing is ever
    /// evicted, so a running min/max tracks the span without tree upkeep.
    values: BTreeMap<u64, u32>,
    /// The `(min, max)` the current partition was built from.
    span: Option<(f64, f64)>,
    observations: usize,
}

impl EsMarkov {
    /// Creates the combined predictor with the given smoothing coefficient,
    /// a 6-region partition, and a 256-sample window.
    pub fn new(alpha: f64) -> Self {
        Self::with_params(alpha, InitialValue::default(), 6, 256)
    }

    /// Full-control constructor (used by the sensitivity experiments).
    pub fn with_params(alpha: f64, init: InitialValue, regions: usize, window_cap: usize) -> Self {
        assert!(regions >= 1, "need at least one region");
        assert!(window_cap >= 2, "window must hold at least two samples");
        EsMarkov {
            es: ExponentialSmoothing::with_init(alpha, init),
            // The window grows on demand past a small initial capacity: a
            // controller builds one predictor per runtime key, and most keys
            // never fill a 256-sample window, so preallocating `window_cap`
            // would waste ~2 KB per key. Starting at 16 keeps the first
            // doublings (the common lifetime of a short-lived key) out of
            // the controller's steady-state ticks.
            window: VecDeque::with_capacity(window_cap.min(16)),
            window_cap,
            regions,
            chain: MarkovChain::new(RegionPartition::new(0.0, 1.0, regions)),
            values: BTreeMap::new(),
            span: None,
            observations: 0,
        }
    }

    /// Creates the combined predictor with an explicit seeding strategy.
    pub fn with_init(alpha: f64, init: InitialValue) -> Self {
        Self::with_params(alpha, init, 6, 256)
    }

    /// The paper's configuration (α = 0.8).
    pub fn paper_default() -> Self {
        Self::new(0.8)
    }

    /// The underlying smoother (for the Fig. 10 strategy comparison).
    pub fn smoother(&self) -> &ExponentialSmoothing {
        &self.es
    }

    /// The demand-region chain (for diagnostics).
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Rebuilds the chain from the current window. Only reached when the
    /// window's min/max actually moved — a partition shift reassigns regions
    /// wholesale, so there is nothing to update incrementally. Steady demand
    /// series revisit the same range, making this the rare path;
    /// [`Predictor::observe`] handles the common case in O(log window).
    fn rebuild_chain(&mut self) {
        let (head, tail) = self.window.as_slices();
        self.chain.refit(head, tail, self.regions);
    }

    /// Exact `(min, max)` of the windowed values via the ordered multiset.
    fn window_span(&self) -> Option<(f64, f64)> {
        let (&lo, _) = self.values.first_key_value()?;
        let (&hi, _) = self.values.last_key_value()?;
        Some((from_total_order_bits(lo), from_total_order_bits(hi)))
    }
}

impl Predictor for EsMarkov {
    fn observe(&mut self, value: f64) {
        self.observations += 1;
        self.es.observe(value);
        let evicted = if self.window.len() == self.window_cap {
            self.window.pop_front()
        } else {
            None
        };
        self.window.push_back(value);
        let span = if let Some(old) = evicted {
            let bits = total_order_bits(old);
            if let Some(count) = self.values.get_mut(&bits) {
                *count -= 1;
                if *count == 0 {
                    self.values.remove(&bits);
                }
            }
            *self.values.entry(total_order_bits(value)).or_insert(0) += 1;
            self.window_span()
        } else if self.window.len() == self.window_cap {
            // The window just saturated: evictions start with the next
            // observation, so materialise the multiset once here.
            for &x in &self.window {
                *self.values.entry(total_order_bits(x)).or_insert(0) += 1;
            }
            self.window_span()
        } else {
            // Growing window: nothing is ever evicted, so the span only
            // extends. Running min/max in IEEE total order matches the
            // multiset's ends exactly, without any tree upkeep.
            let bits = total_order_bits(value);
            Some(match self.span {
                None => (value, value),
                Some((lo, hi)) => (
                    if bits < total_order_bits(lo) {
                        value
                    } else {
                        lo
                    },
                    if bits > total_order_bits(hi) {
                        value
                    } else {
                        hi
                    },
                ),
            })
        };
        // NaN spans compare unequal to themselves, which safely forces the
        // rebuild path until the offending sample leaves the window.
        if span != self.span {
            self.span = span;
            self.rebuild_chain();
            return;
        }
        // Range unchanged ⇒ the partition is byte-identical to what a batch
        // fit over this window would build, and every retained sample keeps
        // its region. Retract the evicted head's outgoing transition, then
        // append the new observation — counts now equal a full refit. The
        // evicted sample's region (and the new head's) is recomputed from
        // the unchanged partition in O(1) rather than stored alongside it.
        if let Some(old) = evicted {
            let partition = self.chain.partition();
            let from = partition.state_of(old);
            if let Some(&head) = self.window.front() {
                self.chain.forget_oldest(from, partition.state_of(head));
            }
        }
        self.chain.observe(value);
    }

    fn predict(&self) -> f64 {
        let trend = self.es.predict();
        let Some(cur) = self.chain.current_state() else {
            return trend.max(0.0);
        };
        if !self.chain.has_outgoing(cur) {
            // No evidence of where demand goes from here: trust the trend.
            return trend.max(0.0);
        }
        // `current_state` exists (checked above), so `predict_state` does
        // too — but degrade to the bare trend rather than panicking.
        let Some(next) = self.chain.predict_state() else {
            return trend.max(0.0);
        };
        let (lo, hi) = self.chain.partition().bounds(next);
        trend.clamp(lo, hi).max(0.0)
    }

    fn name(&self) -> &'static str {
        "es+markov"
    }

    fn observations(&self) -> usize {
        self.observations
    }
}

impl ToJson for EsMarkov {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("alpha", self.es.alpha().to_json()),
            ("regions", self.regions.to_json()),
            ("window", self.window_cap.to_json()),
            ("observations", self.observations().to_json()),
            ("prediction", self.predict().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::mape;
    use crate::one_step_ahead;

    /// The paper's Fig. 10(a) scenario: stable demand around 8, then a jump
    /// to 19 with mild jitter.
    fn fig10_series() -> Vec<f64> {
        let mut s = Vec::new();
        for i in 0..12 {
            s.push(8.0 + (i % 3) as f64 - 1.0); // 7..9
        }
        for i in 0..12 {
            s.push(19.0 + (i % 3) as f64 - 1.0); // 18..20
        }
        s
    }

    #[test]
    fn constant_series_exact() {
        let mut p = EsMarkov::paper_default();
        for _ in 0..30 {
            p.observe(5.0);
        }
        assert!((p.predict() - 5.0).abs() < 0.5);
    }

    #[test]
    fn combined_beats_es_on_volatile_series() {
        // A sawtooth the smoother chronically lags on; the chain learns the
        // alternation exactly.
        let series: Vec<f64> = (0..60)
            .map(|i| if i % 2 == 0 { 4.0 } else { 16.0 })
            .collect();
        let mut es = ExponentialSmoothing::paper_default();
        let mut combo = EsMarkov::paper_default();
        let es_preds = one_step_ahead(&mut es, &series);
        let combo_preds = one_step_ahead(&mut combo, &series);
        let actual = &series[1..];
        let es_err = mape(&es_preds, actual);
        let combo_err = mape(&combo_preds, actual);
        assert!(
            combo_err < es_err * 0.7,
            "combined {combo_err:.3} should clearly beat ES {es_err:.3}"
        );
    }

    #[test]
    fn combined_no_worse_on_fig10_jump() {
        let series = fig10_series();
        let mut es = ExponentialSmoothing::paper_default();
        let mut combo = EsMarkov::paper_default();
        let es_preds = one_step_ahead(&mut es, &series);
        let combo_preds = one_step_ahead(&mut combo, &series);
        let actual = &series[1..];
        let es_err = mape(&es_preds, actual);
        let combo_err = mape(&combo_preds, actual);
        assert!(
            combo_err <= es_err * 1.05,
            "combined {combo_err:.3} vs ES {es_err:.3}"
        );
    }

    #[test]
    fn recurring_jump_is_anticipated() {
        // Two full cycles of the 8 → 19 pattern; during the second cycle the
        // chain has seen the regime transitions and corrects the lag.
        let mut series = fig10_series();
        series.extend(fig10_series());
        let mut es = ExponentialSmoothing::paper_default();
        let mut combo = EsMarkov::paper_default();
        let es_preds = one_step_ahead(&mut es, &series);
        let combo_preds = one_step_ahead(&mut combo, &series);
        // Evaluate only the second cycle.
        let half = series.len() / 2;
        let es_err = mape(&es_preds[half..], &series[half + 1..]);
        let combo_err = mape(&combo_preds[half..], &series[half + 1..]);
        assert!(
            combo_err <= es_err,
            "on recurring patterns combined {combo_err:.3} should not trail ES {es_err:.3}"
        );
    }

    #[test]
    fn never_predicts_negative() {
        let mut p = EsMarkov::paper_default();
        for x in [10.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0] {
            p.observe(x);
            assert!(p.predict() >= 0.0);
        }
    }

    #[test]
    fn before_observations_predicts_zero() {
        let p = EsMarkov::paper_default();
        assert_eq!(p.predict(), 0.0);
    }

    #[test]
    fn tracks_observation_count() {
        let mut p = EsMarkov::paper_default();
        for i in 0..7 {
            p.observe(i as f64);
        }
        assert_eq!(p.observations(), 7);
    }

    #[test]
    fn window_caps_history() {
        let mut p = EsMarkov::with_params(0.8, InitialValue::FirstObservation, 4, 8);
        for i in 0..100 {
            p.observe(i as f64);
        }
        // Partition spans only the window (92..99), not the full history.
        let (lo, _) = p.chain().partition().bounds(0);
        assert!(lo >= 92.0 - 1e-9, "partition lo = {lo}");
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn zero_regions_rejected() {
        let _ = EsMarkov::with_params(0.5, InitialValue::FirstObservation, 0, 16);
    }

    /// The incremental chain (subtract-on-evict + online counts) must equal
    /// a batch `MarkovChain::fit` over the same sliding window after every
    /// observation, including window wraparound and duplicate values.
    #[test]
    fn prop_incremental_matches_batch_fit() {
        testkit::check(64, |g| {
            let cap = g.usize_in(2..16);
            let regions = g.usize_in(1..8);
            let len = g.usize_in(1..64);
            let mut p = EsMarkov::with_params(0.8, InitialValue::FirstObservation, regions, cap);
            let mut history: Vec<f64> = Vec::new();
            for _ in 0..len {
                // Mostly revisit a few discrete levels (duplicate values,
                // stable span ⇒ the O(1) path), sometimes a fresh value
                // (span drift ⇒ the rebuild path).
                let value = if g.u8_in(0..4) == 0 {
                    g.f64_in(0.0..40.0)
                } else {
                    g.usize_in(0..5) as f64 * 7.0
                };
                p.observe(value);
                history.push(value);
                let start = history.len().saturating_sub(cap);
                let batch = MarkovChain::fit(&history[start..], regions);
                assert_eq!(p.chain().partition(), batch.partition());
                assert_eq!(p.chain().current_state(), batch.current_state());
                assert_eq!(p.chain().transition_counts(), batch.transition_counts());
                assert_eq!(p.chain().observations(), batch.observations());
            }
        });
    }

    /// Saturated-window regression: a long constant tail after a level shift
    /// keeps evicting duplicates of the old level; counts must track the
    /// batch fit exactly as the old level drains out of the window.
    #[test]
    fn incremental_eviction_drains_old_level() {
        let cap = 8;
        let mut p = EsMarkov::with_params(0.8, InitialValue::FirstObservation, 3, cap);
        let mut history = Vec::new();
        for i in 0..40 {
            let value = if i < 10 { 4.0 } else { 16.0 };
            p.observe(value);
            history.push(value);
            let start = history.len().saturating_sub(cap);
            let batch = MarkovChain::fit(&history[start..], 3);
            assert_eq!(p.chain().partition(), batch.partition());
            assert_eq!(p.chain().transition_counts(), batch.transition_counts());
        }
    }
}
