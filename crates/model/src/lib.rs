#![warn(missing_docs)]

//! `hotc-model` — bounded interleaving model checking for HotC's lock-free
//! slot protocol.
//!
//! The checker itself lives in [`stdshim::model`] (so the `stdshim` facade
//! can route protocol atomics through it without a dependency cycle); this
//! crate re-exports the API and hosts the test suites:
//!
//! * `tests/litmus.rs` — self-tests of the checker against classic
//!   weak-memory litmus shapes (message passing, store buffering, lost
//!   updates, once-publication). Always compiled; part of the normal
//!   workspace test run.
//! * `tests/slot_protocol.rs` — the real `SlotBitmap`/`KeySlots` protocol
//!   under the checker. Requires the instrumented build:
//!   `RUSTFLAGS='--cfg hotc_model' cargo test -p hotc-model`.
//! * `tests/mutation.rs` — the teeth-proof: weakens the cold-publish
//!   release store to `Relaxed` and asserts the checker produces a
//!   replayable violating schedule. Instrumented build only.
//!
//! Budget knob: `HOTC_MODEL_BUDGET` caps explored schedules per check
//! (default 20 000); CI sets it explicitly so run time stays bounded.

pub use stdshim::model::{
    spawn, Checker, JoinHandle, ModelAtomicU64, ModelAtomicUsize, ModelOnceLock, Report, VClock,
    Violation,
};
