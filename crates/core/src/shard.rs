//! The sharded concurrent runtime pool (§IV-B at production scale).
//!
//! The paper's key-value pool shards naturally along the runtime key: a
//! key's slot never interacts with another key's slot except during global
//! eviction. [`ShardedPool`] interns each configuration into a dense
//! [`KeyId`] and places it on one of N shards round-robin, each shard
//! guarding its slots with its own [`stdshim::sync::Mutex`], so warm
//! acquisitions for different runtime types proceed in parallel instead of
//! serializing on one pool-wide lock.
//!
//! Lock discipline (see DESIGN.md §"Sharded pool" and §8):
//!
//! * a thread holds **at most one lock** at a time on the request path — the
//!   interner's read-mostly `pool/interner` lock, a `pool/shard` lock, and
//!   the engine lock are acquired strictly in sequence, never nested —
//!   engine calls (container creation, cleanup, teardown) always happen
//!   after the shard lock is released, so cold starts on different keys
//!   overlap;
//! * global eviction is a **two-phase scan**: collect candidates shard by
//!   shard, pick the oldest via the engine, then re-lock the owning shard and
//!   claim the victim (retrying if a racing acquire took it first) — no
//!   operation ever takes all shard locks at once.
//!
//! The pool's bookkeeping invariants (enforced by the property tests):
//!
//! * `total_live() == engine.live_count()` at quiescence;
//! * a container is in `available` or `in_use` of exactly one slot, never
//!   both, never two requests' hands at once;
//! * a slot exists only while a container of its type exists or existed
//!   within the last [`ShardedPool::gc_intervals`] demand snapshots — failed
//!   creates never materialize slots, and long-dead slots are garbage
//!   collected together with their controller state.

use crate::key::{needs_reconfig, KeyId, KeyInterner, KeyPolicy, RuntimeKey, FUZZY_RECONFIG_COST};
use containersim::{ContainerConfig, ContainerEngine, ContainerId, CostBreakdown, EngineError};
use faas::Acquisition;
use simclock::{SimDuration, SimTime};
use std::collections::VecDeque;
use stdshim::sync::Mutex;
use stdshim::FastMap;

/// Default shard count — enough to spread a handful of worker threads'
/// runtime types without measurable cost for single-threaded use.
pub const DEFAULT_SHARDS: usize = 8;

/// Default number of consecutive zero-demand snapshots after which an empty
/// slot is garbage collected.
pub const DEFAULT_GC_INTERVALS: u32 = 3;

/// Scoped access to the container engine. The pool never holds a shard lock
/// across an engine call, so the engine guard's scope is chosen per call:
/// concurrent frontends implement this over a `Mutex<ContainerEngine>`,
/// single-threaded callers wrap their exclusive `&mut` in [`ExclusiveEngine`].
pub trait EngineRef {
    /// Runs `f` with exclusive access to the engine.
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R;
}

impl EngineRef for Mutex<ContainerEngine> {
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R {
        f(&mut self.lock())
    }
}

/// [`EngineRef`] over an exclusive borrow, for single-threaded callers
/// (`ContainerPool`, the HotC provider) that already own `&mut` access.
pub struct ExclusiveEngine<'a> {
    inner: std::cell::RefCell<&'a mut ContainerEngine>,
}

impl<'a> ExclusiveEngine<'a> {
    /// Wraps an exclusive engine borrow.
    pub fn new(engine: &'a mut ContainerEngine) -> Self {
        ExclusiveEngine {
            inner: std::cell::RefCell::new(engine),
        }
    }
}

impl EngineRef for ExclusiveEngine<'_> {
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

/// One runtime type's containers (Fig. 7 value list), plus the bookkeeping
/// the adaptive controller feeds on.
#[derive(Debug)]
struct Slot {
    /// Existing-Available containers, FIFO ("the client just reuses the
    /// first available container"). The flag records whether the container
    /// has ever executed (false for pre-warmed, true once released after a
    /// request) so acquires can report `first_exec` without an engine call.
    available: VecDeque<(ContainerId, bool)>,
    /// Existing-Not-Available containers, by id — membership is what makes
    /// a `release` legal, so a double release (or a release of a container
    /// the pool never handed out) is detected instead of double-pooling.
    in_use: Vec<ContainerId>,
    /// Peak concurrent in-use count since the last demand snapshot — the
    /// `history[k][t]` series the adaptive controller feeds the predictor.
    watermark: usize,
    /// Whether this key is on the shard's active list (touched since the
    /// last snapshot, or still holding containers). The flag keeps the list
    /// duplicate-free without a per-touch hash probe.
    active: bool,
    /// The snapshot sequence number at which this slot went empty with zero
    /// demand, if it is currently cold; the slot is GC'd once it stays cold
    /// for the pool's GC threshold. Any touch clears it.
    cold_since: Option<u64>,
    /// A representative configuration for this key, kept so the controller
    /// can pre-warm by key alone.
    config: ContainerConfig,
}

impl Slot {
    fn new(config: ContainerConfig) -> Self {
        Slot {
            available: VecDeque::new(),
            in_use: Vec::new(),
            watermark: 0,
            active: false,
            cold_since: None,
            config,
        }
    }

    fn note_in_use(&mut self, container: ContainerId) {
        self.in_use.push(container);
        self.watermark = self.watermark.max(self.in_use.len());
    }
}

#[derive(Debug, Default)]
struct ShardState {
    /// Keyed by interned id with [`FastMap`] — the id is an internal dense
    /// integer, so the default hasher's DoS resistance buys nothing on this
    /// per-request lookup.
    slots: FastMap<KeyId, Slot>,
    /// Keys the next control snapshot must visit: touched since the last
    /// snapshot or holding containers. Duplicate-free (see [`Slot::active`]).
    active: Vec<KeyId>,
    /// Cold slots awaiting GC, queued as `(key, went_cold_at_seq)` in
    /// nondecreasing sequence order — the dirty snapshot's "idle sweep" pops
    /// exactly the entries whose deadline arrived. Entries are lazily
    /// invalidated by re-touches (the slot's `cold_since` moves on).
    cold: VecDeque<(KeyId, u64)>,
    /// Snapshot sequence number (one per demand snapshot of this shard).
    seq: u64,
    /// Containers currently tracked by this shard (available + in use),
    /// maintained at every pool entry/exit so [`ShardedPool::total_live`]
    /// is O(shards) instead of a scan of every slot. The full-sweep
    /// snapshot cross-checks it against the slots in debug builds.
    live: usize,
}

impl ShardState {
    /// Flags `id` as touched this control interval (O(1) when already
    /// active) and cancels any pending cold-GC countdown.
    fn mark_active(&mut self, id: KeyId) {
        if let Some(slot) = self.slots.get_mut(&id) {
            slot.cold_since = None;
            if !slot.active {
                slot.active = true;
                self.active.push(id);
            }
        }
    }
}

/// One key's demand sample within a [`ShardSnapshot`]. Carries the slot's
/// live population as seen while the shard lock was already held, so the
/// controller can size the key without re-locking the shard per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyDemand {
    /// The runtime key.
    pub id: KeyId,
    /// Peak concurrent use over the interval (`history[k][t]`).
    pub demand: usize,
    /// Available containers at snapshot time.
    pub avail: usize,
    /// In-use containers at snapshot time.
    pub in_use: usize,
}

impl KeyDemand {
    /// Total live containers (available + in use) at snapshot time.
    pub fn live(&self) -> usize {
        self.avail + self.in_use
    }
}

/// One shard's demand snapshot: per-key demand for the controller, plus the
/// keys whose empty slots were garbage collected in this snapshot (the
/// controller drops their predictors).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// `history[k][t]` entries for the interval, sorted by key id.
    pub demands: Vec<KeyDemand>,
    /// Keys GC'd by this snapshot, sorted.
    pub retired: Vec<KeyId>,
}

/// An acquisition with the pool-side detail the sharded gateway needs to
/// keep the warm path off the engine lock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolAcquisition {
    /// The container to run in.
    pub container: ContainerId,
    /// Virtual time spent obtaining it.
    pub cost: SimDuration,
    /// Whether a new container had to be created.
    pub cold: bool,
    /// Whether this container has never executed before (fresh or
    /// pre-warmed) — exactly `engine.exec_count(container) == Some(0)`, but
    /// known from pool bookkeeping alone.
    pub first_exec: bool,
    /// Per-stage decomposition of a cold start (`None` on reuse).
    pub breakdown: Option<CostBreakdown>,
    /// Reconfiguration cost of a fuzzy-matched reuse (zero otherwise).
    pub reconfig: SimDuration,
}

impl From<PoolAcquisition> for Acquisition {
    fn from(a: PoolAcquisition) -> Acquisition {
        Acquisition {
            container: a.container,
            cost: a.cost,
            cold: a.cold,
            breakdown: a.breakdown,
            reconfig: a.reconfig,
        }
    }
}

/// The sharded HotC container pool (Algorithms 1–2 per shard).
///
/// All methods take `&self`; the per-shard mutexes serialize only the
/// bookkeeping of keys that hash to the same shard. Engine work happens
/// outside any shard lock via [`EngineRef`].
#[derive(Debug)]
pub struct ShardedPool {
    policy: KeyPolicy,
    shards: Box<[Mutex<ShardState>]>,
    /// Interns configurations into dense [`KeyId`]s; the shard maps, the
    /// controller, and the gateway all key on the id, so the canonical key
    /// string is formatted once per distinct configuration.
    interner: KeyInterner,
    gc_intervals: u32,
}

impl ShardedPool {
    /// Creates a pool with [`DEFAULT_SHARDS`] shards.
    pub fn new(policy: KeyPolicy) -> Self {
        Self::with_shards(policy, DEFAULT_SHARDS)
    }

    /// Creates a pool with an explicit shard count (at least 1).
    pub fn with_shards(policy: KeyPolicy, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedPool {
            policy,
            shards: (0..shards)
                .map(|_| Mutex::labeled(ShardState::default(), "pool/shard"))
                .collect(),
            interner: KeyInterner::new(policy),
            gc_intervals: DEFAULT_GC_INTERVALS,
        }
    }

    /// The key policy in force.
    pub fn policy(&self) -> KeyPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Consecutive zero-demand snapshots before an empty slot is GC'd.
    pub fn gc_intervals(&self) -> u32 {
        self.gc_intervals
    }

    /// Overrides the empty-slot GC threshold (setup only).
    pub fn set_gc_intervals(&mut self, intervals: u32) {
        self.gc_intervals = intervals.max(1);
    }

    /// The runtime key for a configuration under this pool's policy.
    pub fn key_of(&self, config: &ContainerConfig) -> RuntimeKey {
        RuntimeKey::from_config(config, self.policy)
    }

    /// Interns a configuration, returning its stable [`KeyId`] under this
    /// pool's policy. Steady-state calls hash only the key-relevant config
    /// fields — no string is formatted, nothing is allocated.
    pub fn intern_config(&self, config: &ContainerConfig) -> KeyId {
        self.interner.intern(config)
    }

    /// The id of an already-interned canonical key, if the pool has seen a
    /// configuration with that key.
    pub fn id_of(&self, key: &RuntimeKey) -> Option<KeyId> {
        self.interner.lookup(key)
    }

    /// The canonical key string behind an id issued by this pool.
    pub fn resolve_key(&self, id: KeyId) -> Option<RuntimeKey> {
        self.interner.resolve(id)
    }

    /// The shard a key lives on. Ids are dense, so round-robin by index
    /// gives a perfect spread without hashing.
    pub fn shard_of(&self, id: KeyId) -> usize {
        id.index() % self.shards.len()
    }

    fn shard(&self, id: KeyId) -> &Mutex<ShardState> {
        &self.shards[self.shard_of(id)]
    }

    /// Algorithm 1: obtain a runtime for `config`. Reuses the first
    /// available container of the same type if one exists, otherwise starts
    /// a new container — with the creation outside the shard lock, so cold
    /// starts of different types overlap.
    pub fn acquire(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        self.acquire_detailed(engine, config, now).map(Into::into)
    }

    /// [`Self::acquire`] with the extra pool-side detail ([`PoolAcquisition`])
    /// the concurrent frontend uses to avoid engine round trips.
    pub fn acquire_detailed(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<PoolAcquisition, EngineError> {
        let id = self.interner.intern(config);
        self.acquire_id(engine, id, config, now)
    }

    /// [`Self::acquire_detailed`] with a pre-interned key id: callers that
    /// serve the same function repeatedly (the sharded gateway) intern the
    /// key once at registration instead of even fingerprinting the
    /// configuration per request. `id` must be `self.intern_config(config)`.
    pub fn acquire_id(
        &self,
        engine: &impl EngineRef,
        id: KeyId,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<PoolAcquisition, EngineError> {
        debug_assert_eq!(id, self.intern_config(config));
        // DESIGN.md §5: the acquire path takes its locks (shard, engine)
        // strictly one at a time; the sanitizer enforces it in debug builds.
        let _scope = stdshim::request_path_scope();
        let shard = self.shard(id);
        let reused = {
            let mut guard = shard.lock();
            let state = &mut *guard;
            state.slots.get_mut(&id).and_then(|slot| {
                let (container, execed) = slot.available.pop_front()?;
                slot.note_in_use(container);
                slot.cold_since = None;
                if !slot.active {
                    slot.active = true;
                    state.active.push(id);
                }
                Some((container, execed))
            })
        };
        if let Some((container, execed)) = reused {
            // An exact key pins every config field, so only fuzzy keys can
            // hand back a container that needs reconfiguration.
            let cost = if self.policy == KeyPolicy::Fuzzy {
                engine.with_engine(|e| match e.config(container) {
                    Some(existing) if needs_reconfig(existing, config) => FUZZY_RECONFIG_COST,
                    _ => SimDuration::ZERO,
                })
            } else {
                SimDuration::ZERO
            };
            return Ok(PoolAcquisition {
                container,
                cost,
                cold: false,
                first_exec: !execed,
                breakdown: None,
                reconfig: cost,
            });
        }
        // Not existing, or existing but not available: start a new one. The
        // slot is recorded only once the container exists, so a failed
        // create leaves no phantom slot behind for the controller to track.
        let (container, breakdown) =
            engine.with_engine(|e| e.create_container(config.clone(), now))?;
        {
            let mut guard = shard.lock();
            let state = &mut *guard;
            let slot = state
                .slots
                .entry(id)
                .or_insert_with(|| Slot::new(config.clone()));
            slot.note_in_use(container);
            slot.cold_since = None;
            if !slot.active {
                slot.active = true;
                state.active.push(id);
            }
            state.live += 1;
        }
        Ok(PoolAcquisition {
            container,
            cost: breakdown.total(),
            cold: true,
            first_exec: true,
            breakdown: Some(breakdown),
            reconfig: SimDuration::ZERO,
        })
    }

    /// Algorithm 2: clean the used container and add it back to the pool.
    /// A crashed (Stopped) container cannot be reused: it is disposed of
    /// instead. Releasing a container that was never acquired from this pool
    /// — or releasing the same container twice — is an
    /// [`EngineError::InvalidState`]: the duplicate must not be pooled, or
    /// one container could serve two requests at once.
    pub fn release(
        &self,
        engine: &impl EngineRef,
        container: ContainerId,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        // DESIGN.md §5: engine and shard locks are taken one at a time.
        let _scope = stdshim::request_path_scope();
        let (config, state_now, crashed) = engine.with_engine(|e| {
            let config = e
                .config(container)
                .cloned()
                .ok_or(EngineError::UnknownContainer(container))?;
            let state = e.state(container);
            Ok::<_, EngineError>((
                config,
                state,
                state == containersim::ContainerState::Stopped,
            ))
        })?;
        // The container came from an acquire, so its config is already
        // interned — this is the fingerprint fast path, no string work.
        let id = self.interner.intern(&config);
        let shard = self.shard(id);
        {
            let mut shard_state = shard.lock();
            let claimed = shard_state.slots.get_mut(&id).and_then(|slot| {
                let at = slot.in_use.iter().position(|&c| c == container)?;
                Some(slot.in_use.swap_remove(at))
            });
            if claimed.is_none() {
                return Err(EngineError::InvalidState {
                    id: container,
                    state: state_now,
                    needed: "a container acquired from this pool",
                });
            }
            shard_state.live -= 1;
        }
        let cost = match engine.with_engine(|e| {
            if crashed {
                e.stop_and_remove(container, now)
            } else {
                e.cleanup(container, now)
            }
        }) {
            Ok(cost) => cost,
            Err(err) => {
                // The engine rejected the cleanup (e.g. released while still
                // Running): hand the claim back so bookkeeping stays honest.
                let mut guard = shard.lock();
                let state = &mut *guard;
                if let Some(slot) = state.slots.get_mut(&id) {
                    slot.in_use.push(container);
                    state.live += 1;
                }
                guard.mark_active(id);
                return Err(err);
            }
        };
        {
            let mut guard = shard.lock();
            let state = &mut *guard;
            if !crashed {
                if let Some(slot) = state.slots.get_mut(&id) {
                    slot.available.push_back((container, true));
                    state.live += 1;
                }
            }
            // A release (even of a crashed container) is a touch: the
            // controller must see this key's interval even if demand fell
            // to zero, so retire/GC decisions keep firing.
            guard.mark_active(id);
        }
        Ok(cost)
    }

    /// The concurrent frontend's combined end-of-request path: claims the
    /// container from `key`'s in-use list, then ends the execution and
    /// cleans (or, if `crashed`, disposes of) the container in a **single**
    /// engine critical section. Returns `Ok(None)` without touching the
    /// engine when the container is not in-use under `key` — e.g. the
    /// function was re-registered with a different configuration mid-flight —
    /// so the caller can fall back to the engine-derived [`Self::release`].
    pub fn try_finish_release(
        &self,
        engine: &impl EngineRef,
        id: KeyId,
        container: ContainerId,
        now: SimTime,
        crashed: bool,
    ) -> Result<Option<SimDuration>, EngineError> {
        // DESIGN.md §5: shard claim, engine critical section, and pool
        // hand-back are three disjoint lock regions, never nested.
        let _scope = stdshim::request_path_scope();
        let shard = self.shard(id);
        let claimed = {
            let mut state = shard.lock();
            let claimed = state.slots.get_mut(&id).and_then(|slot| {
                let at = slot.in_use.iter().position(|&c| c == container)?;
                Some(slot.in_use.swap_remove(at))
            });
            if claimed.is_some() {
                state.live -= 1;
            }
            claimed
        };
        if claimed.is_none() {
            return Ok(None);
        }
        let cost = match engine.with_engine(|e| {
            e.end_exec(container, now)?;
            if crashed {
                e.stop_and_remove(container, now)
            } else {
                e.cleanup(container, now)
            }
        }) {
            Ok(cost) => cost,
            Err(err) => {
                // The engine rejected the hand-back; restore the claim so
                // bookkeeping stays honest.
                let mut guard = shard.lock();
                let state = &mut *guard;
                if let Some(slot) = state.slots.get_mut(&id) {
                    slot.in_use.push(container);
                    state.live += 1;
                }
                guard.mark_active(id);
                return Err(err);
            }
        };
        {
            let mut guard = shard.lock();
            let state = &mut *guard;
            if !crashed {
                if let Some(slot) = state.slots.get_mut(&id) {
                    slot.available.push_back((container, true));
                    state.live += 1;
                }
            }
            guard.mark_active(id);
        }
        Ok(Some(cost))
    }

    /// Pre-warms one container of the given configuration (adaptive
    /// controller's scale-up action). The container boots straight into the
    /// Existing-Available state. Returns the cold-start cost (background).
    pub fn prewarm(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        let id = self.interner.intern(config);
        let (container, breakdown) =
            engine.with_engine(|e| e.create_container(config.clone(), now))?;
        let mut guard = self.shard(id).lock();
        guard
            .slots
            .entry(id)
            .or_insert_with(|| Slot::new(config.clone()))
            .available
            .push_back((container, false));
        guard.live += 1;
        guard.mark_active(id);
        Ok(breakdown.total())
    }

    /// Pre-warms one container for a key the pool already tracks, using the
    /// slot's representative configuration. Returns `Ok(None)` if the key is
    /// unknown (e.g. its slot was GC'd since the snapshot).
    pub fn prewarm_key_id(
        &self,
        engine: &impl EngineRef,
        id: KeyId,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        let config = self
            .shard(id)
            .lock()
            .slots
            .get(&id)
            .map(|s| s.config.clone());
        match config {
            Some(config) => self.prewarm(engine, &config, now).map(Some),
            None => Ok(None),
        }
    }

    /// [`Self::prewarm_key_id`] by canonical key (compatibility path).
    pub fn prewarm_key(
        &self,
        engine: &impl EngineRef,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        match self.id_of(key) {
            Some(id) => self.prewarm_key_id(engine, id, now),
            None => Ok(None),
        }
    }

    /// Retires one available container of the given type (adaptive
    /// controller's scale-down action). Returns the teardown cost, or `None`
    /// if none was available.
    pub fn retire_one_id(
        &self,
        engine: &impl EngineRef,
        id: KeyId,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        let popped = {
            let mut guard = self.shard(id).lock();
            let popped = guard
                .slots
                .get_mut(&id)
                .and_then(|slot| slot.available.pop_front());
            if popped.is_some() {
                guard.live -= 1;
                guard.mark_active(id);
            }
            popped
        };
        match popped {
            Some((container, _)) => engine
                .with_engine(|e| e.stop_and_remove(container, now))
                .map(Some),
            None => Ok(None),
        }
    }

    /// [`Self::retire_one_id`] by canonical key (compatibility path).
    pub fn retire_one(
        &self,
        engine: &impl EngineRef,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        match self.id_of(key) {
            Some(id) => self.retire_one_id(engine, id, now),
            None => Ok(None),
        }
    }

    /// Forcibly terminates the *oldest* available live container across all
    /// types (§IV-B's response to too many containers / memory pressure).
    ///
    /// Two-phase: (1) scan shard by shard (one lock at a time) collecting
    /// available candidates, pick the globally oldest via the engine;
    /// (2) re-lock the owning shard and claim the victim — if a racing
    /// acquire took it in between, rescan. Returns the teardown cost, or
    /// `None` if the pool holds no available container.
    pub fn evict_oldest(
        &self,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        // Bounded retries: each retry means a racing acquire claimed our
        // candidate, which is progress for the system as a whole.
        for _ in 0..8 {
            let mut candidates: Vec<(KeyId, ContainerId)> = Vec::new();
            for shard in self.shards.iter() {
                let state = shard.lock();
                for (&key, slot) in &state.slots {
                    for &(id, _) in &slot.available {
                        candidates.push((key, id));
                    }
                }
            }
            if candidates.is_empty() {
                return Ok(None);
            }
            // Oldest first, ids as a deterministic tie-break. A candidate
            // retired by a racing thread simply drops out (no created_at).
            let oldest = engine.with_engine(|e| {
                candidates
                    .into_iter()
                    .filter_map(|(key, id)| e.created_at(id).map(|t| (t, id, key)))
                    .min_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)))
            });
            let Some((_, id, key)) = oldest else {
                continue;
            };
            let claimed = {
                let mut guard = self.shard(key).lock();
                let claimed = guard.slots.get_mut(&key).is_some_and(|slot| {
                    let before = slot.available.len();
                    slot.available.retain(|&(c, _)| c != id);
                    slot.available.len() != before
                });
                if claimed {
                    guard.live -= 1;
                    // An eviction is a touch: the controller must re-examine
                    // this key at the next interval.
                    guard.mark_active(key);
                }
                claimed
            };
            if claimed {
                return engine.with_engine(|e| e.stop_and_remove(id, now)).map(Some);
            }
        }
        Ok(None)
    }

    /// `num_avail[key]`: available containers of the given type.
    pub fn num_avail_id(&self, id: KeyId) -> usize {
        self.shard(id)
            .lock()
            .slots
            .get(&id)
            .map_or(0, |s| s.available.len())
    }

    /// In-use containers of the given type.
    pub fn num_in_use_id(&self, id: KeyId) -> usize {
        self.shard(id)
            .lock()
            .slots
            .get(&id)
            .map_or(0, |s| s.in_use.len())
    }

    /// `(available, in_use)` for a key id in one lock acquisition — the
    /// controller's per-key sizing read.
    pub fn live_of_id(&self, id: KeyId) -> (usize, usize) {
        self.shard(id)
            .lock()
            .slots
            .get(&id)
            .map_or((0, 0), |s| (s.available.len(), s.in_use.len()))
    }

    /// [`Self::num_avail_id`] by canonical key (compatibility path).
    pub fn num_avail(&self, key: &RuntimeKey) -> usize {
        self.id_of(key).map_or(0, |id| self.num_avail_id(id))
    }

    /// [`Self::num_in_use_id`] by canonical key (compatibility path).
    pub fn num_in_use(&self, key: &RuntimeKey) -> usize {
        self.id_of(key).map_or(0, |id| self.num_in_use_id(id))
    }

    /// Total live containers tracked by the pool (available + in use).
    /// Reads the per-shard counters — O(shards), not O(tracked keys), so
    /// the limit check the controller runs every tick stays independent of
    /// fleet size.
    pub fn total_live(&self) -> usize {
        self.shards.iter().map(|shard| shard.lock().live).sum()
    }

    /// Per-shard `(available, in_use)` container counts, indexed by shard —
    /// the telemetry layer exports these as per-shard pool-size gauges.
    pub fn shard_sizes(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.lock();
                state.slots.values().fold((0, 0), |(a, u), s| {
                    (a + s.available.len(), u + s.in_use.len())
                })
            })
            .collect()
    }

    /// Total available containers across all types.
    pub fn total_available(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.lock();
                state
                    .slots
                    .values()
                    .map(|s| s.available.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// The Fig. 7 pool-view code for a container: 1 Existing-Available, 0
    /// Existing-Not-Available, -1 Not-Existing.
    pub fn pool_code(&self, engine: &ContainerEngine, container: ContainerId) -> i8 {
        let pooled = self.shards.iter().any(|shard| {
            shard
                .lock()
                .slots
                .values()
                .any(|s| s.available.iter().any(|&(c, _)| c == container))
        });
        if pooled {
            1
        } else if engine.config(container).is_some() {
            0
        } else {
            -1
        }
    }

    /// Takes one shard's **full-sweep** demand snapshot (`history[k][t]`):
    /// visits every slot, resets watermarks for the next control interval,
    /// and garbage-collects slots that have been empty for
    /// [`Self::gc_intervals`] consecutive zero-demand snapshots. Keys with
    /// live containers are always reported, including zero-demand intervals.
    ///
    /// This is the O(tracked keys) reference path; the controller's default
    /// is [`Self::take_shard_snapshot_dirty`], which visits only the active
    /// list and produces the same GC timing (asserted by a property test in
    /// `controller.rs`).
    pub fn take_shard_snapshot(&self, shard: usize) -> ShardSnapshot {
        let mut demands = Vec::new();
        let mut retired = Vec::new();
        let gc_after = u64::from(self.gc_intervals);
        {
            let mut guard = self.shards[shard].lock();
            guard.seq += 1;
            let seq = guard.seq;
            let ShardState {
                slots,
                active,
                cold,
                live,
                ..
            } = &mut *guard;
            slots.retain(|&id, slot| {
                let in_use = slot.in_use.len();
                let avail = slot.available.len();
                let demand = slot.watermark.max(in_use);
                slot.watermark = in_use;
                if demand == 0 && in_use == 0 && avail == 0 {
                    let since = match slot.cold_since {
                        Some(since) => since,
                        None => {
                            // First zero-demand interval: leave the active
                            // list and start the GC countdown.
                            slot.cold_since = Some(seq);
                            slot.active = false;
                            queue_cold(cold, id, seq, gc_after);
                            seq
                        }
                    };
                    if seq - since + 1 >= gc_after {
                        retired.push(id);
                        return false;
                    }
                } else {
                    slot.cold_since = None;
                    if !slot.active {
                        slot.active = true;
                        active.push(id);
                    }
                }
                demands.push(KeyDemand {
                    id,
                    demand,
                    avail,
                    in_use,
                });
                true
            });
            // The full sweep visits every slot anyway: cross-check the
            // shard's live counter against the ground truth it summarises.
            debug_assert_eq!(
                *live,
                slots
                    .values()
                    .map(|s| s.available.len() + s.in_use.len())
                    .sum::<usize>(),
                "shard live counter diverged from slot contents"
            );
            // Heal the active list: GC'd and newly-cold keys drop out.
            active.retain(|id| slots.get(id).is_some_and(|s| s.active));
            // The retain above already GC'd everything due, so this only
            // discards stale queue entries; it keeps the queue bounded when
            // full sweeps and dirty snapshots interleave.
            drain_due_cold(slots, cold, &mut retired, seq, gc_after);
        }
        demands.sort_unstable_by_key(|d| d.id);
        retired.sort_unstable();
        ShardSnapshot { demands, retired }
    }

    /// Takes one shard's **dirty-set** demand snapshot: visits only the keys
    /// touched since the last snapshot or still holding containers, plus the
    /// cold queue's due GC deadlines (the "idle sweep" that guarantees
    /// zero-demand GC fires within [`Self::gc_intervals`] snapshots of a key
    /// going cold — identical timing to the full sweep).
    ///
    /// Work is O(active keys + due GCs), independent of how many keys the
    /// shard tracks. Cold keys are reported once (their final zero-demand
    /// interval) and then skipped until GC'd or re-touched; the controller
    /// backfills the skipped zero observations from the snapshot sequence
    /// gap, so predictor state matches the full sweep exactly.
    pub fn take_shard_snapshot_dirty(&self, shard: usize) -> ShardSnapshot {
        let mut demands = Vec::new();
        let mut retired = Vec::new();
        let gc_after = u64::from(self.gc_intervals);
        {
            let mut guard = self.shards[shard].lock();
            guard.seq += 1;
            let seq = guard.seq;
            let ShardState {
                slots,
                active,
                cold,
                ..
            } = &mut *guard;
            for id in std::mem::take(active) {
                let Some(slot) = slots.get_mut(&id) else {
                    continue;
                };
                let in_use = slot.in_use.len();
                let avail = slot.available.len();
                let demand = slot.watermark.max(in_use);
                slot.watermark = in_use;
                if demand == 0 && in_use == 0 && avail == 0 {
                    // Final zero-demand report; the slot then waits on the
                    // cold queue for GC (or a re-touch).
                    slot.active = false;
                    slot.cold_since = Some(seq);
                    if gc_after <= 1 {
                        // The full sweep GCs a just-cold slot in this same
                        // snapshot without reporting it; match that.
                        slots.remove(&id);
                        retired.push(id);
                        continue;
                    }
                    cold.push_back((id, seq));
                } else {
                    // Keys holding containers stay on the active list: the
                    // controller sizes them every interval, exactly like
                    // the full sweep.
                    slot.active = true;
                    active.push(id);
                }
                demands.push(KeyDemand {
                    id,
                    demand,
                    avail,
                    in_use,
                });
            }
            drain_due_cold(slots, cold, &mut retired, seq, gc_after);
        }
        demands.sort_unstable_by_key(|d| d.id);
        retired.sort_unstable();
        ShardSnapshot { demands, retired }
    }

    /// Takes the demand snapshot across every shard (full sweep, GC
    /// included), merged and sorted — the single-threaded controller path.
    pub fn take_demand_snapshot(&self) -> Vec<(RuntimeKey, usize)> {
        let mut ids = Vec::new();
        for shard in 0..self.num_shards() {
            ids.extend(self.take_shard_snapshot(shard).demands);
        }
        let mut out: Vec<(RuntimeKey, usize)> = ids
            .into_iter()
            .filter_map(|d| Some((self.resolve_key(d.id)?, d.demand)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The keys the pool currently tracks, sorted.
    pub fn keys(&self) -> Vec<RuntimeKey> {
        let ids: Vec<KeyId> = self
            .shards
            .iter()
            .flat_map(|shard| shard.lock().slots.keys().copied().collect::<Vec<_>>())
            .collect();
        let mut keys: Vec<RuntimeKey> = ids
            .into_iter()
            .filter_map(|id| self.resolve_key(id))
            .collect();
        keys.sort();
        keys
    }
}

/// Queues a newly-cold key for the idle sweep, unless it is due immediately
/// (the caller GCs it in the same snapshot).
fn queue_cold(cold: &mut VecDeque<(KeyId, u64)>, id: KeyId, seq: u64, gc_after: u64) {
    if gc_after > 1 {
        cold.push_back((id, seq));
    }
}

/// Pops every cold-queue entry whose GC deadline arrived at `seq` and
/// retires the slots that are still cold since then. Entries invalidated by
/// a re-touch (the slot's `cold_since` moved or cleared) or by an earlier GC
/// are discarded. The queue is in nondecreasing `since` order, so this stops
/// at the first not-yet-due entry.
fn drain_due_cold(
    slots: &mut FastMap<KeyId, Slot>,
    cold: &mut VecDeque<(KeyId, u64)>,
    retired: &mut Vec<KeyId>,
    seq: u64,
    gc_after: u64,
) {
    while let Some(&(id, since)) = cold.front() {
        if seq.saturating_sub(since) + 1 < gc_after {
            break;
        }
        cold.pop_front();
        if slots.get(&id).is_some_and(|s| s.cold_since == Some(since)) {
            slots.remove(&id);
            retired.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::engine::ExecWork;
    use containersim::{HardwareProfile, ImageId};

    fn engine() -> Mutex<ContainerEngine> {
        Mutex::labeled(
            ContainerEngine::with_local_images(HardwareProfile::server()),
            "core/engine",
        )
    }

    fn cfg(image: &str) -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse(image))
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        for image in ["alpine:3.12", "python:3.8-alpine", "golang:1.13"] {
            let id = pool.intern_config(&cfg(image));
            let s = pool.shard_of(id);
            assert!(s < 4);
            assert_eq!(s, pool.shard_of(id), "placement must be stable");
            assert_eq!(id, pool.intern_config(&cfg(image)), "ids must be stable");
        }
    }

    #[test]
    fn acquire_release_round_trip_through_shards() {
        let e = engine();
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        let c = cfg("alpine:3.12");
        let a = pool.acquire(&e, &c, SimTime::ZERO).unwrap();
        assert!(a.cold);
        e.with_engine(|e| {
            let out = e
                .begin_exec(
                    a.container,
                    ExecWork::light(SimDuration::from_millis(1)),
                    SimTime::ZERO,
                )
                .unwrap();
            e.end_exec(a.container, SimTime::ZERO + out.latency)
                .unwrap();
        });
        pool.release(&e, a.container, SimTime::from_secs(1))
            .unwrap();
        let b = pool.acquire(&e, &c, SimTime::from_secs(2)).unwrap();
        assert!(!b.cold);
        assert_eq!(b.container, a.container);
    }

    #[test]
    fn parallel_warm_acquires_on_distinct_keys_do_not_serialize_on_one_lock() {
        // Smoke-level check that distinct keys land on distinct shards often
        // enough that 8 keys use >1 shard.
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 8);
        let shards: std::collections::HashSet<usize> = (0..8)
            .map(|i| {
                let mut c = cfg("alpine:3.12");
                c.exec.env.insert("K".into(), i.to_string());
                pool.shard_of(pool.intern_config(&c))
            })
            .collect();
        assert!(shards.len() > 1, "8 keys should spread across shards");
    }

    #[test]
    fn dirty_snapshot_skips_cold_keys_but_gcs_them_on_schedule() {
        let e = engine();
        let mut pool = ShardedPool::with_shards(KeyPolicy::Exact, 1);
        pool.set_gc_intervals(2);
        let a = cfg("alpine:3.12");
        let b = cfg("python:3.8-alpine");
        pool.prewarm(&e, &a, SimTime::ZERO).unwrap();
        pool.prewarm(&e, &b, SimTime::ZERO).unwrap();
        let ida = pool.intern_config(&a);
        let idb = pool.intern_config(&b);
        // Both warm: both visited every interval even without touches.
        let visited = |s: &ShardSnapshot| -> Vec<(KeyId, usize)> {
            s.demands.iter().map(|d| (d.id, d.demand)).collect()
        };
        let s1 = pool.take_shard_snapshot_dirty(0);
        assert_eq!(visited(&s1), vec![(ida, 0), (idb, 0)]);
        // The snapshot carries each slot's live population (one prewarmed
        // container apiece), so the controller needs no second lookup.
        assert!(s1.demands.iter().all(|d| d.avail == 1 && d.in_use == 0));
        // Drain A to empty; the retire is a touch, so the next snapshot
        // reports its final zero-demand interval and starts the countdown.
        pool.retire_one_id(&e, ida, SimTime::from_secs(1)).unwrap();
        let s2 = pool.take_shard_snapshot_dirty(0);
        assert_eq!(visited(&s2), vec![(ida, 0), (idb, 0)]);
        assert!(s2.retired.is_empty());
        // Cold now: skipped from the demand scan, GC'd by the idle sweep
        // exactly gc_intervals snapshots after going cold.
        let s3 = pool.take_shard_snapshot_dirty(0);
        assert_eq!(visited(&s3), vec![(idb, 0)]);
        assert_eq!(s3.retired, vec![ida]);
        assert_eq!(pool.keys(), vec![pool.key_of(&b)]);
        // A re-touch after going cold cancels the countdown.
        pool.prewarm(&e, &a, SimTime::from_secs(2)).unwrap();
        pool.retire_one_id(&e, pool.intern_config(&a), SimTime::from_secs(3))
            .unwrap();
        let _ = pool.take_shard_snapshot_dirty(0); // goes cold again
        pool.prewarm(&e, &a, SimTime::from_secs(4)).unwrap(); // re-touched
        let s5 = pool.take_shard_snapshot_dirty(0);
        assert!(s5.retired.is_empty(), "re-touched key must not be GC'd");
        assert!(s5.demands.iter().any(|d| d.id == pool.intern_config(&a)));
    }

    #[test]
    fn full_and_dirty_snapshots_agree_on_gc_timing() {
        for gc in [1u32, 2, 3] {
            let (ef, ed) = (engine(), engine());
            let mut full = ShardedPool::with_shards(KeyPolicy::Exact, 1);
            let mut dirty = ShardedPool::with_shards(KeyPolicy::Exact, 1);
            full.set_gc_intervals(gc);
            dirty.set_gc_intervals(gc);
            let c = cfg("alpine:3.12");
            full.prewarm(&ef, &c, SimTime::ZERO).unwrap();
            dirty.prewarm(&ed, &c, SimTime::ZERO).unwrap();
            full.retire_one(&ef, &full.key_of(&c), SimTime::ZERO)
                .unwrap();
            dirty
                .retire_one(&ed, &dirty.key_of(&c), SimTime::ZERO)
                .unwrap();
            // The slot is empty; both modes must GC it at the same snapshot.
            for step in 1..=gc + 1 {
                let f = full.take_shard_snapshot(0);
                let d = dirty.take_shard_snapshot_dirty(0);
                assert_eq!(
                    f.retired, d.retired,
                    "gc={gc} step={step}: retire timing diverged"
                );
                assert_eq!(
                    full.keys().is_empty(),
                    dirty.keys().is_empty(),
                    "gc={gc} step={step}"
                );
            }
        }
    }

    #[test]
    fn evict_oldest_scans_across_shards() {
        let e = engine();
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        // Three types, staggered creation: the oldest must go first even
        // though the types live on different shards.
        let configs = [
            cfg("alpine:3.12"),
            cfg("python:3.8-alpine"),
            cfg("golang:1.13"),
        ];
        for (i, c) in configs.iter().enumerate() {
            pool.prewarm(&e, c, SimTime::from_secs(i as u64)).unwrap();
        }
        let oldest = e.with_engine(|e| e.live_ids_oldest_first()[0]);
        pool.evict_oldest(&e, SimTime::from_secs(10)).unwrap();
        assert_eq!(
            e.with_engine(|e| e.state(oldest)),
            containersim::ContainerState::Removed
        );
        assert_eq!(pool.total_available(), 2);
    }
}
