//! Streaming statistics via Welford's online algorithm.

use stdshim::{JsonValue, ToJson};

/// Single-pass mean/variance/min/max accumulator.
///
/// Numerically stable (Welford) and mergeable, so per-thread accumulators
/// from the contention benches can be combined without keeping samples.
#[derive(Debug, Clone, Copy)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl ToJson for StreamingStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("count", self.count().to_json()),
            ("mean", self.mean().to_json()),
            ("variance", self.variance().to_json()),
            ("min", self.min().to_json()),
            ("max", self.max().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_is_neutral() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = StreamingStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        b.push(1.0);
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        let empty = StreamingStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn prop_merge_equals_concat() {
        testkit::check(64, |g| {
            let xs = g.vec(0..100, |g| g.f64_in(-1000.0..1000.0));
            let ys = g.vec(0..100, |g| g.f64_in(-1000.0..1000.0));
            let mut a = StreamingStats::new();
            for &x in &xs {
                a.push(x);
            }
            let mut b = StreamingStats::new();
            for &y in &ys {
                b.push(y);
            }
            a.merge(&b);

            let mut all = StreamingStats::new();
            for &x in xs.iter().chain(&ys) {
                all.push(x);
            }

            assert_eq!(a.count(), all.count());
            if all.count() > 0 {
                assert!((a.mean() - all.mean()).abs() < 1e-6);
                assert!((a.variance() - all.variance()).abs() < 1e-5);
                assert_eq!(a.min(), all.min());
                assert_eq!(a.max(), all.max());
            }
        });
    }

    /// Mean is bounded by min/max.
    #[test]
    fn prop_mean_bounded() {
        testkit::check(64, |g| {
            let xs = g.vec(1..200, |g| g.f64_in(-1e6..1e6));
            let mut s = StreamingStats::new();
            for &x in &xs {
                s.push(x);
            }
            assert!(s.mean() >= s.min() - 1e-9);
            assert!(s.mean() <= s.max() + 1e-9);
        });
    }
}
