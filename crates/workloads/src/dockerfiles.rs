//! Synthetic GitHub Dockerfile survey (Fig. 2).
//!
//! §I: "We analyzed thousands of Dockerfiles from GitHub projects. … both the
//! top 100 popular and all surveyed projects are dominated by a few commonly
//! used images" (Fig. 2(a)), and the base images are dominated by a small set
//! of OS, language, and application configurations (Fig. 2(b)).
//!
//! The original crawl is not redistributable; this module carries a
//! representative catalogue of base-image kinds with Zipf-weighted
//! popularity and a deterministic sampler, which reproduces the figure's
//! *shape*: a handful of images covering most projects.

use simclock::SimRng;
use std::collections::BTreeMap;

/// Configuration category of a base image (the Fig. 2(b) grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConfigCategory {
    /// Bare OS images (ubuntu, alpine, debian, centos…).
    Os,
    /// Language runtime images (python, node, golang, openjdk…).
    Language,
    /// Application images (nginx, redis, mysql, httpd…).
    Application,
}

impl ConfigCategory {
    /// Category name for tables.
    pub fn name(self) -> &'static str {
        match self {
            ConfigCategory::Os => "os",
            ConfigCategory::Language => "language",
            ConfigCategory::Application => "application",
        }
    }
}

/// One surveyed project's base-image choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectConfig {
    /// Base image name, e.g. `ubuntu`.
    pub image: &'static str,
    /// Its configuration category.
    pub category: ConfigCategory,
}

/// The base-image catalogue in popularity order (rank 0 most popular),
/// mirroring the well-known head of Docker Hub usage.
pub const CATALOGUE: [ProjectConfig; 14] = [
    ProjectConfig {
        image: "ubuntu",
        category: ConfigCategory::Os,
    },
    ProjectConfig {
        image: "alpine",
        category: ConfigCategory::Os,
    },
    ProjectConfig {
        image: "node",
        category: ConfigCategory::Language,
    },
    ProjectConfig {
        image: "python",
        category: ConfigCategory::Language,
    },
    ProjectConfig {
        image: "nginx",
        category: ConfigCategory::Application,
    },
    ProjectConfig {
        image: "golang",
        category: ConfigCategory::Language,
    },
    ProjectConfig {
        image: "openjdk",
        category: ConfigCategory::Language,
    },
    ProjectConfig {
        image: "debian",
        category: ConfigCategory::Os,
    },
    ProjectConfig {
        image: "redis",
        category: ConfigCategory::Application,
    },
    ProjectConfig {
        image: "mysql",
        category: ConfigCategory::Application,
    },
    ProjectConfig {
        image: "centos",
        category: ConfigCategory::Os,
    },
    ProjectConfig {
        image: "php",
        category: ConfigCategory::Language,
    },
    ProjectConfig {
        image: "httpd",
        category: ConfigCategory::Application,
    },
    ProjectConfig {
        image: "ruby",
        category: ConfigCategory::Language,
    },
];

/// A sampled survey of `n` projects' base images.
#[derive(Debug, Clone)]
pub struct DockerfileSurvey {
    /// Count of projects per base image.
    counts: BTreeMap<&'static str, usize>,
    total: usize,
}

impl DockerfileSurvey {
    /// Samples a survey of `n` projects with Zipf popularity exponent `s`
    /// (≈1.0 reproduces the paper's "dominated by a few images" shape).
    pub fn sample(n: usize, zipf_exponent: f64, seed: u64) -> Self {
        assert!(n > 0, "survey needs at least one project");
        let mut rng = SimRng::seeded(seed);
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for _ in 0..n {
            let rank = rng.zipf(CATALOGUE.len(), zipf_exponent);
            *counts.entry(CATALOGUE[rank].image).or_default() += 1;
        }
        DockerfileSurvey { counts, total: n }
    }

    /// Number of surveyed projects.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `(image, count)` pairs, most popular first.
    pub fn ranked(&self) -> Vec<(&'static str, usize)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Fraction of projects covered by the `k` most popular images — the
    /// Fig. 2(a) dominance statistic.
    pub fn top_k_share(&self, k: usize) -> f64 {
        let ranked = self.ranked();
        let covered: usize = ranked.iter().take(k).map(|&(_, c)| c).sum();
        covered as f64 / self.total as f64
    }

    /// Share of projects per configuration category — Fig. 2(b).
    pub fn category_shares(&self) -> BTreeMap<ConfigCategory, f64> {
        let mut shares: BTreeMap<ConfigCategory, f64> = BTreeMap::new();
        for (&image, &count) in &self.counts {
            let category = CATALOGUE
                .iter()
                .find(|p| p.image == image)
                // lint:allow(unwrap, survey counts are keyed by catalogue profiles, so every image is in CATALOGUE)
                .expect("surveyed image must come from the catalogue")
                .category;
            *shares.entry(category).or_default() += count as f64;
        }
        for v in shares.values_mut() {
            *v /= self.total as f64;
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_images_dominate() {
        let survey = DockerfileSurvey::sample(5000, 1.0, 1);
        // Fig 2(a) shape: top 4 of 14 images cover well over half.
        assert!(survey.top_k_share(4) > 0.55, "{}", survey.top_k_share(4));
        assert!(survey.top_k_share(14) > 0.999);
        // Monotone in k.
        assert!(survey.top_k_share(2) <= survey.top_k_share(6));
    }

    #[test]
    fn most_popular_is_low_rank() {
        let survey = DockerfileSurvey::sample(5000, 1.0, 2);
        let top = survey.ranked()[0].0;
        assert!(
            ["ubuntu", "alpine", "node"].contains(&top),
            "unexpected most-popular image {top}"
        );
    }

    #[test]
    fn category_shares_sum_to_one() {
        let survey = DockerfileSurvey::sample(2000, 1.1, 3);
        let shares = survey.category_shares();
        let sum: f64 = shares.values().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // All three categories represented in a big sample.
        assert_eq!(shares.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DockerfileSurvey::sample(500, 1.0, 42).ranked();
        let b = DockerfileSurvey::sample(500, 1.0, 42).ranked();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one project")]
    fn empty_survey_rejected() {
        let _ = DockerfileSurvey::sample(0, 1.0, 0);
    }
}
