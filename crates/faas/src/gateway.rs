//! The gateway: entry point, function registry, and request driver.
//!
//! Mirrors the OpenFaaS pipeline of Fig. 5: gateway → watchdog → function
//! process → watchdog → gateway, stamping the six timestamps of §III-A along
//! the way. The gateway is generic over its [`RuntimeProvider`], so the same
//! driver code runs the cold-start baseline, the keep-alive baselines, and
//! HotC.
//!
//! The gateway's state is split into independently-lockable pieces so a
//! concurrent frontend can give each its own synchronization instead of one
//! lock over everything:
//! * [`Registry`] — the function table (read-mostly);
//! * [`SharedStats`] — request counters on atomics (lock-free);
//! * [`AppTracker`] — which app last ran in each container (small mutex).
//!
//! [`Gateway`] composes the three with exclusive engine access for
//! single-threaded drivers.
//!
//! Two driving styles:
//! * [`Gateway::handle`] — begin+finish in one call, for workloads whose
//!   requests do not overlap in virtual time;
//! * [`Gateway::begin`] / [`Gateway::finish`] — split-phase, for concurrent
//!   workloads where many containers are busy simultaneously (the
//!   parallel/burst experiments schedule `finish` at each request's `t4`).

use crate::apps::AppProfile;
use crate::pipeline::{RequestTrace, GATEWAY_HOP, WATCHDOG_HOP};
use crate::RuntimeProvider;
use containersim::{ContainerConfig, ContainerEngine, ContainerId, CostBreakdown, EngineError};
use metrics_lite::{MetricsRegistry, Stage, StageSample};
use simclock::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A deployed function: its application profile and runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// Function name (route).
    pub name: String,
    /// What it executes.
    pub app: AppProfile,
    /// The container runtime it requires.
    pub config: ContainerConfig,
}

impl FunctionSpec {
    /// A spec from an app profile with its default (bridge) configuration,
    /// named after the app.
    pub fn from_app(app: AppProfile) -> Self {
        let config = app.default_config();
        FunctionSpec {
            name: app.name.to_string(),
            app,
            config,
        }
    }

    /// Renames the function (builder style) — used when the same app is
    /// deployed under several configurations.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the runtime configuration (builder style).
    pub fn with_config(mut self, config: ContainerConfig) -> Self {
        self.config = config;
        self
    }
}

/// The function table: name → deployed spec.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    functions: BTreeMap<String, FunctionSpec>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or replaces) a function.
    pub fn insert(&mut self, spec: FunctionSpec) {
        self.functions.insert(spec.name.clone(), spec);
    }

    /// Looks up one function's spec.
    pub fn get(&self, name: &str) -> Option<&FunctionSpec> {
        self.functions.get(name)
    }

    /// All deployed functions, name-ordered.
    pub fn iter(&self) -> impl Iterator<Item = &FunctionSpec> {
        self.functions.values()
    }

    /// Number of deployed functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether no function is deployed.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// Aggregate request counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Requests completed.
    pub requests: u64,
    /// Requests that required a container cold start.
    pub cold_starts: u64,
}

/// Lock-free request counters: concurrent frontends bump these from any
/// thread without serializing on the gateway.
///
/// Both counters live in **one** atomic word (requests in the low 32 bits,
/// cold starts in the high 32), so a snapshot is a single load and the
/// invariant `cold_starts <= requests` holds in every observation. With two
/// separate atomics a reader racing concurrent `record(true)` calls could
/// observe more cold starts than requests.
#[derive(Debug, Default)]
pub struct SharedStats {
    packed: AtomicU64,
}

impl SharedStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SharedStats::default()
    }

    /// Records one completed request.
    pub fn record(&self, cold: bool) {
        self.packed
            .fetch_add(1 | ((cold as u64) << 32), Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters (a single atomic load, so the
    /// pair is internally consistent).
    pub fn snapshot(&self) -> GatewayStats {
        let v = self.packed.load(Ordering::Relaxed);
        GatewayStats {
            requests: v & 0xFFFF_FFFF,
            cold_starts: v >> 32,
        }
    }
}

/// Which app last executed in each container: HotC pools *runtimes*, so a
/// reused container serving a different app must re-pay that app's
/// initialization ("we load user code into that candidate container").
///
/// Entries are pruned when the provider disposes of containers
/// ([`AppTracker::prune`]) — without that, every container ever created
/// stays tracked forever and a long-running gateway leaks memory.
#[derive(Debug, Default)]
pub struct AppTracker {
    last_app: HashMap<ContainerId, &'static str>,
}

impl AppTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        AppTracker::default()
    }

    /// Whether dispatching `app` to `container` must pay app initialization
    /// (fresh runtime, or the runtime last ran a different app), recording
    /// the dispatch.
    pub fn needs_app_init(
        &mut self,
        container: ContainerId,
        app: &'static str,
        first_exec: bool,
    ) -> bool {
        let needs = first_exec || self.last_app.get(&container) != Some(&app);
        self.last_app.insert(container, app);
        needs
    }

    /// Drops entries for containers the engine no longer knows (retired,
    /// evicted, or crashed-and-removed).
    pub fn prune(&mut self, engine: &ContainerEngine) {
        self.last_app.retain(|&id, _| engine.config(id).is_some());
    }

    /// Drops entries for containers outside the given live set — for callers
    /// that snapshot the engine's live ids rather than holding the engine.
    pub fn prune_to(&mut self, live: &std::collections::HashSet<ContainerId>) {
        self.last_app.retain(|id, _| live.contains(id));
    }

    /// Number of containers currently tracked.
    pub fn tracked(&self) -> usize {
        self.last_app.len()
    }
}

/// Gateway errors.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayError {
    /// No function registered under that name.
    UnknownFunction(String),
    /// The container engine rejected an operation.
    Engine(EngineError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::UnknownFunction(name) => write!(f, "unknown function '{name}'"),
            GatewayError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<EngineError> for GatewayError {
    fn from(e: EngineError) -> Self {
        GatewayError::Engine(e)
    }
}

/// A request that has started executing; `finish` completes it at its `t4`.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// The function being served.
    pub function: String,
    /// The container executing it.
    pub container: ContainerId,
    /// When the function process will stop (schedule `finish` here).
    pub t4_func_end: SimTime,
    /// (1) request hits the gateway.
    pub t1: SimTime,
    /// (2) watchdog receives the forwarded request.
    pub t2: SimTime,
    /// (3) function process starts.
    pub t3: SimTime,
    /// Whether obtaining the runtime cold-started a container.
    pub cold: bool,
    /// Whether this is the runtime's first execution.
    pub first_exec: bool,
    /// Whether the function process will crash (fault injection).
    pub crashed: bool,
    /// Cold-start stage decomposition (`None` on reuse).
    pub breakdown: Option<CostBreakdown>,
    /// Reconfiguration cost of a fuzzy-matched reuse (zero otherwise).
    pub reconfig: SimDuration,
    /// Portion of the execution latency spent in app-level initialization.
    pub init_latency: SimDuration,
    /// Total execution latency (t4 − t3).
    pub exec_latency: SimDuration,
}

impl InFlight {
    /// Decomposes this request into per-stage durations. The stages always
    /// sum exactly to the trace's end-to-end `total()`: the four fixed hops,
    /// the acquisition cost (cold breakdown or reconfig), and the
    /// init/handler split of the execution segment.
    pub fn stage_sample(&self) -> StageSample {
        let mut s = StageSample::new();
        s.set(Stage::GatewayHop, GATEWAY_HOP + GATEWAY_HOP);
        s.set(Stage::WatchdogHop, WATCHDOG_HOP + WATCHDOG_HOP);
        if let Some(b) = &self.breakdown {
            s.set(Stage::QueueWait, b.daemon_queue);
            s.set(Stage::ImagePull, b.image_pull);
            s.set(Stage::ImageUnpack, b.image_unpack);
            s.set(Stage::ResourceAlloc, b.resource_alloc);
            s.set(Stage::NetworkSetup, b.network_setup);
            s.set(Stage::VolumeMount, b.volume_mount);
            s.set(Stage::RuntimeInit, b.runtime_init);
            s.set(Stage::CodeLoad, b.code_load);
        }
        s.set(Stage::Reconfig, self.reconfig);
        s.set(Stage::AppInit, self.init_latency);
        s.set(Stage::Exec, self.exec_latency - self.init_latency);
        s
    }

    /// Stamps the response-path timestamps (5)–(6) and produces the
    /// request's trace. Shared by every gateway frontend so the pipeline
    /// arithmetic lives in one place.
    pub fn complete(&self) -> RequestTrace {
        let t4 = self.t4_func_end;
        let t5 = t4 + WATCHDOG_HOP;
        let t6 = t5 + GATEWAY_HOP;
        let trace = RequestTrace {
            t1_gateway_in: self.t1,
            t2_watchdog_in: self.t2,
            t3_func_start: self.t3,
            t4_func_end: t4,
            t5_watchdog_out: t5,
            t6_gateway_out: t6,
            cold: self.cold,
            first_exec: self.first_exec,
            failed: self.crashed,
        };
        debug_assert!(trace.is_well_formed());
        trace
    }
}

/// The serverless gateway.
///
/// ```
/// use containersim::{ContainerEngine, HardwareProfile};
/// use faas::{AppProfile, FixedKeepAlive, Gateway};
/// use simclock::SimTime;
///
/// let engine = ContainerEngine::with_local_images(HardwareProfile::server());
/// let mut gateway = Gateway::new(engine, FixedKeepAlive::aws_default());
/// gateway.register_app(AppProfile::random_number());
///
/// let trace = gateway.handle("random-number", SimTime::ZERO).unwrap();
/// assert!(trace.cold);
/// // The §III-A decomposition: initiation dominates the cold request.
/// assert!(trace.initiation() > trace.execution());
/// ```
pub struct Gateway<P: RuntimeProvider> {
    engine: ContainerEngine,
    provider: P,
    functions: Registry,
    stats: SharedStats,
    tracker: AppTracker,
    metrics: Arc<MetricsRegistry>,
}

impl<P: RuntimeProvider> Gateway<P> {
    /// Creates a gateway over an engine and a runtime provider, with its own
    /// fresh metrics registry.
    pub fn new(engine: ContainerEngine, provider: P) -> Self {
        Self::with_metrics(engine, provider, Arc::new(MetricsRegistry::new()))
    }

    /// Creates a gateway recording into a shared metrics registry (so a
    /// driver can aggregate several gateways, or export after the run).
    pub fn with_metrics(
        engine: ContainerEngine,
        provider: P,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        // Requests land once in their `fn/` scope; the `all` scope and the
        // e2e histogram are synthesized from those at snapshot time.
        metrics.stage_union("all", "fn/");
        metrics.histogram_union("gateway/e2e", "fn/");
        Gateway {
            engine,
            provider,
            functions: Registry::new(),
            stats: SharedStats::new(),
            tracker: AppTracker::new(),
            metrics,
        }
    }

    /// The gateway's metrics registry. Mirrors the request/cold-start tally
    /// into the registry's counters so a subsequent snapshot is current.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        let stats = self.stats.snapshot();
        self.metrics
            .counter("gateway/requests")
            .store(stats.requests);
        self.metrics
            .counter("gateway/cold_starts")
            .store(stats.cold_starts);
        &self.metrics
    }

    /// Registers (or replaces) a function.
    pub fn register(&mut self, spec: FunctionSpec) {
        self.functions.insert(spec);
    }

    /// Convenience: registers an app under its own name with its default
    /// configuration.
    pub fn register_app(&mut self, app: AppProfile) {
        self.register(FunctionSpec::from_app(app));
    }

    /// The function registry.
    pub fn functions(&self) -> impl Iterator<Item = &FunctionSpec> {
        self.functions.iter()
    }

    /// Looks up one function's spec.
    pub fn function(&self, name: &str) -> Option<&FunctionSpec> {
        self.functions.get(name)
    }

    /// The underlying engine (resource inspection).
    pub fn engine(&self) -> &ContainerEngine {
        &self.engine
    }

    /// Mutable engine access (experiment setup).
    pub fn engine_mut(&mut self) -> &mut ContainerEngine {
        &mut self.engine
    }

    /// The runtime provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Mutable provider access.
    pub fn provider_mut(&mut self) -> &mut P {
        &mut self.provider
    }

    /// Aggregate counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats.snapshot()
    }

    /// Number of containers with a tracked last-app entry (bounded by the
    /// engine's live count thanks to pruning).
    pub fn tracked_containers(&self) -> usize {
        self.tracker.tracked()
    }

    /// Runs provider maintenance (keep-alive expiry, HotC pool control).
    pub fn tick(&mut self, now: SimTime) -> Result<(), GatewayError> {
        self.provider.tick(&mut self.engine, now)?;
        self.prune_tracker();
        Ok(())
    }

    /// Drops last-app entries for containers the provider disposed of —
    /// otherwise the map grows monotonically over a long run. Cheap guard:
    /// only scan when the map has outgrown the live set.
    fn prune_tracker(&mut self) {
        if self.tracker.tracked() > self.engine.live_count() {
            self.tracker.prune(&self.engine);
        }
    }

    /// Starts serving a request that arrived at the gateway at `now`.
    /// Timestamps (1)–(4) are computed; the caller must invoke
    /// [`Self::finish`] once the virtual clock reaches `t4_func_end`.
    pub fn begin(&mut self, function: &str, now: SimTime) -> Result<InFlight, GatewayError> {
        let spec = self
            .functions
            .get(function)
            .ok_or_else(|| GatewayError::UnknownFunction(function.to_string()))?
            .clone();
        self.begin_with(&spec, now)
    }

    /// [`Self::begin`] with a caller-held spec, bypassing this gateway's
    /// registry. A cluster scheduler keeps **one** function table for all
    /// nodes and hands each node the spec at placement time — registering
    /// 10k functions on each of 1k hosts would hold 10M spec clones.
    pub fn begin_with(
        &mut self,
        spec: &FunctionSpec,
        now: SimTime,
    ) -> Result<InFlight, GatewayError> {
        let t1 = now;
        let t2 = t1 + GATEWAY_HOP;
        let acq = self.provider.acquire(&mut self.engine, &spec.config, t2)?;
        let first_exec = self.engine.exec_count(acq.container) == Some(0);
        // App init is due on a fresh runtime AND when the pooled runtime
        // last ran a different app (fuzzy keys / shared runtime types).
        let needs_app_init = self
            .tracker
            .needs_app_init(acq.container, spec.app.name, first_exec);
        let work = spec.app.work_for(needs_app_init);
        // Function initiation: watchdog shim + obtaining the runtime.
        let t3 = t2 + WATCHDOG_HOP + acq.cost;
        let outcome = self.engine.begin_exec(acq.container, work, t3)?;
        let t4 = t3 + outcome.latency;
        Ok(InFlight {
            function: spec.name.clone(),
            container: acq.container,
            t4_func_end: t4,
            t1,
            t2,
            t3,
            cold: acq.cold,
            first_exec,
            crashed: outcome.crashed,
            breakdown: acq.breakdown,
            reconfig: acq.reconfig,
            init_latency: outcome.init_latency,
            exec_latency: outcome.latency,
        })
    }

    /// Completes an in-flight request: the function process has stopped at
    /// `t4`, the response flows back, and the container is returned to the
    /// provider (cleanup happens off the request path).
    pub fn finish(&mut self, inflight: InFlight) -> Result<RequestTrace, GatewayError> {
        let t4 = inflight.t4_func_end;
        self.engine.end_exec(inflight.container, t4)?;
        self.provider
            .release(&mut self.engine, inflight.container, t4)?;
        self.stats.record(inflight.cold);
        // The provider may have disposed of the container (crash) or evicted
        // others (limits): drop stale last-app entries.
        self.prune_tracker();
        let trace = inflight.complete();
        // One stage-set record per request: `all`, `gateway/e2e`, and the
        // counters are derived from the `fn/` scopes at snapshot time.
        self.metrics
            .stage_set(&format!("fn/{}", inflight.function))
            .record(&inflight.stage_sample());
        Ok(trace)
    }

    /// Serves one request start-to-finish (no overlap with other requests).
    pub fn handle(&mut self, function: &str, now: SimTime) -> Result<RequestTrace, GatewayError> {
        let inflight = self.begin(function, now)?;
        self.finish(inflight)
    }

    /// Serves a request with platform-side retries: if the function process
    /// crashes, the gateway immediately re-dispatches (on a fresh runtime —
    /// the crashed one was disposed of) up to `max_retries` more times, as
    /// managed FaaS platforms do. Returns the traces of every attempt, last
    /// one first-class: `attempts.last()` is the final outcome.
    pub fn handle_with_retries(
        &mut self,
        function: &str,
        now: SimTime,
        max_retries: usize,
    ) -> Result<Vec<RequestTrace>, GatewayError> {
        let mut attempts = Vec::with_capacity(1 + max_retries);
        let mut at = now;
        loop {
            let trace = self.handle(function, at)?;
            let failed = trace.failed;
            let done_at = trace.t6_gateway_out;
            attempts.push(trace);
            if !failed || attempts.len() > max_retries {
                return Ok(attempts);
            }
            // Re-dispatch as soon as the error response is seen.
            at = done_at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ColdStartAlways, FixedKeepAlive};
    use containersim::HardwareProfile;
    use simclock::SimDuration;

    fn gateway<P: RuntimeProvider>(provider: P) -> Gateway<P> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, provider);
        gw.register_app(AppProfile::random_number());
        gw
    }

    #[test]
    fn unknown_function_rejected() {
        let mut gw = gateway(ColdStartAlways::new());
        let err = gw.handle("nope", SimTime::ZERO).unwrap_err();
        assert_eq!(err, GatewayError::UnknownFunction("nope".to_string()));
    }

    #[test]
    fn cold_request_initiation_dominates() {
        // The §III-A finding: for a trivial function served cold, the 2→3
        // initiation segment dwarfs execution and forwarding.
        let mut gw = gateway(ColdStartAlways::new());
        let trace = gw.handle("random-number", SimTime::ZERO).unwrap();
        assert!(trace.cold);
        assert!(trace.is_well_formed());
        assert!(trace.initiation() > trace.execution() * 5);
        assert!(trace.initiation() > trace.forwarding() * 50);
    }

    #[test]
    fn warm_request_is_much_faster() {
        let mut gw = gateway(FixedKeepAlive::aws_default());
        let cold = gw.handle("random-number", SimTime::ZERO).unwrap();
        let warm = gw.handle("random-number", SimTime::from_secs(10)).unwrap();
        assert!(cold.cold && !warm.cold);
        assert!(!warm.first_exec);
        assert!(cold.total() > warm.total() * 10);
        assert_eq!(gw.stats().requests, 2);
        assert_eq!(gw.stats().cold_starts, 1);
    }

    #[test]
    fn split_phase_supports_overlap() {
        let mut gw = gateway(FixedKeepAlive::aws_default());
        // Two requests arriving together must occupy two containers.
        let a = gw.begin("random-number", SimTime::ZERO).unwrap();
        let b = gw.begin("random-number", SimTime::ZERO).unwrap();
        assert_ne!(a.container, b.container);
        assert_eq!(gw.engine().live_count(), 2);
        let ta = gw.finish(a).unwrap();
        let tb = gw.finish(b).unwrap();
        assert!(ta.is_well_formed() && tb.is_well_formed());
        // After release both are warm; the next two reuse them.
        let c = gw.begin("random-number", SimTime::from_secs(5)).unwrap();
        let d = gw.begin("random-number", SimTime::from_secs(5)).unwrap();
        assert!(!c.cold && !d.cold);
        gw.finish(c).unwrap();
        gw.finish(d).unwrap();
    }

    #[test]
    fn first_exec_charges_app_init() {
        let mut gw = gateway(FixedKeepAlive::aws_default());
        let first = gw.handle("random-number", SimTime::ZERO).unwrap();
        let second = gw.handle("random-number", SimTime::from_secs(1)).unwrap();
        assert!(first.first_exec && !second.first_exec);
        // First execution includes the app init (20 ms vs 5 ms base).
        assert!(first.execution() > second.execution() * 2);
    }

    #[test]
    fn multiple_functions_coexist() {
        let mut gw = gateway(FixedKeepAlive::aws_default());
        gw.register_app(AppProfile::qr_code(containersim::LanguageRuntime::Go));
        let a = gw.handle("random-number", SimTime::ZERO).unwrap();
        let b = gw.handle("qr-code", SimTime::from_secs(1)).unwrap();
        assert!(a.cold && b.cold, "different configs don't share runtimes");
        let b2 = gw.handle("qr-code", SimTime::from_secs(2)).unwrap();
        assert!(!b2.cold);
    }

    /// The tentpole invariant: a request's per-stage decomposition sums to
    /// its e2e latency exactly, cold and warm alike, and the always-on
    /// registry sees every request.
    #[test]
    fn stage_sample_reconciles_with_trace_total() {
        let mut gw = gateway(FixedKeepAlive::aws_default());
        let cold = gw.begin("random-number", SimTime::ZERO).unwrap();
        let cold_sample = cold.stage_sample();
        let cold_trace = gw.finish(cold).unwrap();
        assert_eq!(cold_sample.total(), cold_trace.total());
        assert!(!cold_sample.get(Stage::ImagePull).is_zero() || cold_trace.cold);
        assert!(!cold_sample.get(Stage::RuntimeInit).is_zero());
        assert!(!cold_sample.get(Stage::AppInit).is_zero(), "first exec");

        let warm = gw.begin("random-number", SimTime::from_secs(10)).unwrap();
        let warm_sample = warm.stage_sample();
        let warm_trace = gw.finish(warm).unwrap();
        assert_eq!(warm_sample.total(), warm_trace.total());
        assert!(
            warm_sample.get(Stage::RuntimeInit).is_zero(),
            "no cold stages"
        );
        assert!(warm_sample.get(Stage::AppInit).is_zero(), "no re-init");

        let snap = gw.metrics().snapshot();
        assert_eq!(snap.counter("gateway/requests"), Some(2));
        assert_eq!(snap.counter("gateway/cold_starts"), Some(1));
        assert_eq!(snap.stage_count("all", Stage::Exec), 2);
        assert_eq!(snap.stage_count("fn/random-number", Stage::Exec), 2);
        assert_eq!(snap.stage_count("all", Stage::RuntimeInit), 1);
        assert_eq!(
            snap.scope_total_ns("all"),
            (cold_trace.total() + warm_trace.total()).as_nanos()
        );
    }

    /// Property: over random traffic (mixed apps, random gaps — cold, warm,
    /// and app-switch reuse all occur), every request's stage decomposition
    /// sums to its trace total, and the registry's aggregate stage sums
    /// reconcile exactly with the sum of e2e totals.
    #[test]
    fn prop_stage_sums_reconcile_with_trace_totals() {
        testkit::check(16, |g| {
            let mut gw = gateway(FixedKeepAlive::aws_default());
            gw.register_app(AppProfile::qr_code(containersim::LanguageRuntime::Go));
            let names = ["random-number", "qr-code"];
            let mut now = SimTime::ZERO;
            let mut expected_total = 0u64;
            let n = 3 + g.u64_in(0..20);
            for _ in 0..n {
                let function = names[g.u64_in(0..names.len() as u64) as usize];
                let inflight = gw.begin(function, now).unwrap();
                let sample = inflight.stage_sample();
                let trace = gw.finish(inflight).unwrap();
                assert_eq!(sample.total(), trace.total(), "per-request split");
                expected_total += trace.total().as_nanos();
                now = trace.t6_gateway_out + SimDuration::from_millis(g.u64_in(0..120_000));
            }
            let snap = gw.metrics().snapshot();
            assert_eq!(snap.counter("gateway/requests"), Some(n));
            assert_eq!(snap.scope_total_ns("all"), expected_total);
            let per_fn: u64 = names
                .iter()
                .map(|f| snap.scope_total_ns(&format!("fn/{f}")))
                .sum();
            assert_eq!(per_fn, expected_total);
        });
    }

    #[test]
    fn handle_equals_begin_finish() {
        let mut gw1 = gateway(ColdStartAlways::new());
        let mut gw2 = gateway(ColdStartAlways::new());
        let t1 = gw1.handle("random-number", SimTime::from_secs(3)).unwrap();
        let inflight = gw2.begin("random-number", SimTime::from_secs(3)).unwrap();
        let t2 = gw2.finish(inflight).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn tick_delegates_to_provider() {
        let mut gw = gateway(FixedKeepAlive::new(SimDuration::from_secs(60)));
        gw.handle("random-number", SimTime::ZERO).unwrap();
        assert_eq!(gw.engine().live_count(), 1);
        gw.tick(SimTime::from_secs(300)).unwrap();
        assert_eq!(gw.engine().live_count(), 0, "expired container reclaimed");
    }

    /// Regression (last-app leak): entries for containers the provider has
    /// disposed of must be dropped — before the fix, `last_app` kept every
    /// container ever created, growing without bound in long runs.
    #[test]
    fn disposed_containers_are_dropped_from_app_tracking() {
        let mut gw = gateway(FixedKeepAlive::new(SimDuration::from_secs(60)));
        gw.handle("random-number", SimTime::ZERO).unwrap();
        assert_eq!(gw.tracked_containers(), 1);
        // Keep-alive expiry disposes of the container on tick.
        gw.tick(SimTime::from_secs(300)).unwrap();
        assert_eq!(gw.engine().live_count(), 0);
        assert_eq!(
            gw.tracked_containers(),
            0,
            "tracking must not outlive the container"
        );
    }

    /// Same leak via the crash path: a crashed container is disposed of by
    /// the provider inside `finish`, and its entry goes with it.
    #[test]
    fn tracking_stays_bounded_across_crash_heavy_traffic() {
        let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
        engine.set_fault_injection(1.0, 7); // every execution crashes
        let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
        gw.register_app(AppProfile::random_number());
        for i in 0..30u64 {
            let trace = gw.handle("random-number", SimTime::from_secs(i)).unwrap();
            assert!(trace.failed);
        }
        assert!(
            gw.tracked_containers() <= gw.engine().live_count(),
            "tracked {} > live {}",
            gw.tracked_containers(),
            gw.engine().live_count()
        );
    }
}

#[cfg(test)]
mod component_tests {
    use super::*;
    use containersim::HardwareProfile;

    #[test]
    fn shared_stats_count_from_many_threads() {
        let stats = SharedStats::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let stats = &stats;
                s.spawn(move || {
                    for i in 0..100 {
                        stats.record((i + t) % 4 == 0);
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 400);
        assert_eq!(snap.cold_starts, 100);
    }

    /// Regression (torn snapshot): with `requests` and `cold_starts` in two
    /// separate atomics, a reader could load `requests`, lose the race to a
    /// burst of `record(true)` calls, then load `cold_starts` — and observe
    /// more cold starts than requests. Packing both counts into one atomic
    /// makes every snapshot internally consistent; before the fix this test
    /// fails within a few thousand iterations.
    #[test]
    fn snapshot_never_shows_more_cold_starts_than_requests() {
        let stats = SharedStats::new();
        std::thread::scope(|s| {
            let mut writers = Vec::new();
            for _ in 0..4 {
                let stats = &stats;
                writers.push(s.spawn(move || {
                    for _ in 0..200_000 {
                        stats.record(true);
                    }
                }));
            }
            let stats = &stats;
            let reader = s.spawn(move || {
                let mut worst: Option<GatewayStats> = None;
                for _ in 0..200_000 {
                    let snap = stats.snapshot();
                    if snap.cold_starts > snap.requests {
                        worst = Some(snap);
                        break;
                    }
                }
                worst
            });
            for w in writers {
                w.join().unwrap();
            }
            if let Some(snap) = reader.join().unwrap() {
                panic!(
                    "torn snapshot: cold_starts {} > requests {}",
                    snap.cold_starts, snap.requests
                );
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 800_000);
        assert_eq!(snap.cold_starts, 800_000);
    }

    #[test]
    fn registry_replaces_by_name() {
        let mut reg = Registry::new();
        reg.insert(FunctionSpec::from_app(AppProfile::random_number()));
        assert_eq!(reg.len(), 1);
        let replacement = FunctionSpec::from_app(AppProfile::random_number());
        reg.insert(replacement.clone());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("random-number"), Some(&replacement));
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn app_tracker_detects_app_switches_and_prunes() {
        let mut e = ContainerEngine::with_local_images(HardwareProfile::server());
        let (id, _) = e
            .create_container(
                ContainerConfig::bridge(containersim::ImageId::parse("alpine:3.12")),
                SimTime::ZERO,
            )
            .unwrap();
        let mut tracker = AppTracker::new();
        assert!(tracker.needs_app_init(id, "alpha", true), "fresh runtime");
        assert!(!tracker.needs_app_init(id, "alpha", false), "same app");
        assert!(tracker.needs_app_init(id, "beta", false), "app switch");
        assert_eq!(tracker.tracked(), 1);

        e.stop_and_remove(id, SimTime::from_secs(1)).unwrap();
        tracker.prune(&e);
        assert_eq!(tracker.tracked(), 0);
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use crate::policy::FixedKeepAlive;
    use containersim::HardwareProfile;

    #[test]
    fn retries_until_success() {
        let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
        // Seed chosen so the first attempts crash and a later one succeeds.
        engine.set_fault_injection(0.7, 3);
        let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
        gw.register_app(AppProfile::random_number());

        let attempts = gw
            .handle_with_retries("random-number", SimTime::ZERO, 10)
            .unwrap();
        assert!(!attempts.is_empty());
        let last = attempts.last().unwrap();
        assert!(!last.failed, "should eventually succeed");
        assert!(attempts[..attempts.len() - 1].iter().all(|t| t.failed));
        // Attempts are sequential in time.
        for w in attempts.windows(2) {
            assert!(w[1].t1_gateway_in >= w[0].t6_gateway_out);
        }
    }

    #[test]
    fn gives_up_after_budget() {
        let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
        engine.set_fault_injection(1.0, 1); // always crash
        let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
        gw.register_app(AppProfile::random_number());

        let attempts = gw
            .handle_with_retries("random-number", SimTime::ZERO, 2)
            .unwrap();
        assert_eq!(attempts.len(), 3, "1 try + 2 retries");
        assert!(attempts.iter().all(|t| t.failed));
    }

    #[test]
    fn no_failure_means_single_attempt() {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
        gw.register_app(AppProfile::random_number());
        let attempts = gw
            .handle_with_retries("random-number", SimTime::ZERO, 5)
            .unwrap();
        assert_eq!(attempts.len(), 1);
    }
}

#[cfg(test)]
mod shared_runtime_tests {
    use super::*;
    use crate::policy::FixedKeepAlive;
    use containersim::engine::ExecWork;
    use containersim::HardwareProfile;
    use simclock::SimDuration;

    /// Two apps with identical runtime configurations (same image, network,
    /// env) — the pool treats them as one runtime type.
    fn two_apps_one_runtime() -> Gateway<FixedKeepAlive> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, FixedKeepAlive::aws_default());
        let base = AppProfile {
            name: "alpha",
            image: containersim::ImageId::parse("python:3.8-alpine"),
            app_init: SimDuration::from_millis(500),
            work: ExecWork::light(SimDuration::from_millis(50)),
        };
        let mut beta = base.clone();
        beta.name = "beta";
        gw.register_app(base);
        gw.register_app(beta);
        gw
    }

    #[test]
    fn switching_apps_repays_app_init() {
        let mut gw = two_apps_one_runtime();
        let a1 = gw.handle("alpha", SimTime::ZERO).unwrap();
        assert!(a1.cold);
        // Beta reuses alpha's runtime (same type) but must load its own code
        // and state: app init is charged even though the container is warm.
        let b1 = gw.handle("beta", SimTime::from_secs(10)).unwrap();
        assert!(!b1.cold, "same runtime type is reused");
        assert!(
            b1.execution() > SimDuration::from_millis(500),
            "beta's init must be paid: {:?}",
            b1.execution()
        );
        // Running beta again in the same runtime is now warm all the way.
        let b2 = gw.handle("beta", SimTime::from_secs(20)).unwrap();
        assert!(b2.execution() < SimDuration::from_millis(100));
        // And switching back to alpha re-pays alpha's init.
        let a2 = gw.handle("alpha", SimTime::from_secs(30)).unwrap();
        assert!(a2.execution() > SimDuration::from_millis(500));
    }

    #[test]
    fn same_app_repeat_does_not_repay_init() {
        let mut gw = two_apps_one_runtime();
        gw.handle("alpha", SimTime::ZERO).unwrap();
        let second = gw.handle("alpha", SimTime::from_secs(5)).unwrap();
        assert!(second.execution() < SimDuration::from_millis(100));
    }
}
