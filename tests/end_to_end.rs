//! Cross-crate end-to-end tests: full gateway runs across all providers,
//! with resource-accounting invariants checked after the dust settles.

use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
use faas::{AppProfile, FixedKeepAlive, Gateway, PeriodicWarmup, RuntimeProvider};
use hotc::{HotC, HotCConfig, KeyPolicy, PoolLimits};
use hotc_bench::run_workload;
use simclock::{SimDuration, SimTime};
use workloads::patterns;

fn mixed_gateway<P: RuntimeProvider>(provider: P) -> Gateway<P> {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let mut gw = Gateway::new(engine, provider);
    for (i, lang) in [
        LanguageRuntime::Python,
        LanguageRuntime::Go,
        LanguageRuntime::NodeJs,
    ]
    .iter()
    .enumerate()
    {
        gw.register(
            faas::FunctionSpec::from_app(AppProfile::qr_code(*lang)).named(format!("fn-{i}")),
        );
    }
    gw
}

fn mixed_workload(seed: u64) -> Vec<workloads::Arrival> {
    patterns::poisson(2.0, SimDuration::from_secs(600), 3, 1.1, seed)
}

#[test]
fn all_providers_serve_the_same_workload() {
    let workload = mixed_workload(5);
    let route = |id: usize| format!("fn-{id}");
    let tick = SimDuration::from_secs(30);

    let cold = run_workload(
        mixed_gateway(faas::ColdStartAlways::new()),
        &workload,
        route,
        tick,
    );
    let keepalive = run_workload(
        mixed_gateway(FixedKeepAlive::aws_default()),
        &workload,
        route,
        tick,
    );
    let warmup = run_workload(
        mixed_gateway(PeriodicWarmup::new(SimDuration::from_mins(5))),
        &workload,
        route,
        tick,
    );
    let hotc = run_workload(mixed_gateway(HotC::with_defaults()), &workload, route, tick);

    fn check<P: RuntimeProvider>(out: &hotc_bench::RunOutcome<P>, n: usize) {
        assert_eq!(out.traces.len(), n);
        assert!(out.traces.iter().all(|t| t.is_well_formed()));
    }
    check(&cold, workload.len());
    check(&keepalive, workload.len());
    check(&warmup, workload.len());
    check(&hotc, workload.len());

    // Ordering: cold-start is strictly worst; the warm strategies are close.
    assert!(hotc.mean_latency() < cold.mean_latency() / 3);
    assert!(keepalive.mean_latency() < cold.mean_latency() / 3);
    assert!((cold.cold_fraction() - 1.0).abs() < 1e-9);
    assert!(hotc.cold_fraction() < 0.1);

    // Cold-start-always leaves nothing behind; pooled strategies keep warm
    // runtimes bounded by peak concurrency, not request count.
    assert_eq!(cold.gateway.engine().live_count(), 0);
    assert!(hotc.gateway.engine().live_count() < 40);
}

#[test]
fn hotc_pool_view_is_consistent_after_traffic() {
    let workload = mixed_workload(9);
    let out = run_workload(
        mixed_gateway(HotC::with_defaults()),
        &workload,
        |id| format!("fn-{id}"),
        SimDuration::from_secs(30),
    );
    let gw = &out.gateway;
    // Pool bookkeeping matches the engine exactly.
    assert_eq!(gw.provider().pool().total_live(), gw.engine().live_count());
    assert_eq!(
        gw.provider().pool().total_available(),
        gw.engine().live_count(),
        "all containers idle (no in-flight request remains)"
    );
    // No zombie volumes: exactly one per live container.
    assert_eq!(gw.engine().volumes().len(), gw.engine().live_count());
}

#[test]
fn tight_limits_hold_under_pressure() {
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());
    let provider = HotC::new(HotCConfig {
        limits: PoolLimits::new(4, 0.99),
        ..Default::default()
    });
    let mut gw = Gateway::new(engine, provider);
    gw.register_app(AppProfile::random_number());

    // A big burst of simultaneous requests: live count spikes to the burst
    // size (in-flight containers cannot be evicted) …
    let burst = patterns::burst(20, 1, &[], 1, SimDuration::from_secs(30), 0);
    let out = run_workload(
        gw,
        &burst,
        |_| "random-number".to_string(),
        SimDuration::from_secs(30),
    );
    // … but once requests drain and ticks run, the pool respects max_live.
    assert!(
        out.gateway.engine().live_count() <= 4,
        "live={}",
        out.gateway.engine().live_count()
    );
}

#[test]
fn fuzzy_keys_reuse_across_env_differences() {
    // Two functions with the same image/network but different env vars.
    let build = |policy: KeyPolicy| {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let provider = HotC::new(HotCConfig {
            key_policy: policy,
            ..Default::default()
        });
        let mut gw = Gateway::new(engine, provider);
        let app = AppProfile::qr_code(LanguageRuntime::Python);
        let mut config_a = app.default_config();
        config_a.exec.env.insert("TENANT".into(), "a".into());
        let mut config_b = app.default_config();
        config_b.exec.env.insert("TENANT".into(), "b".into());
        gw.register(
            faas::FunctionSpec::from_app(app.clone())
                .named("fn-a")
                .with_config(config_a),
        );
        gw.register(
            faas::FunctionSpec::from_app(app)
                .named("fn-b")
                .with_config(config_b),
        );
        gw
    };

    // Exact keys: the second function cold-starts its own runtime.
    let mut exact = build(KeyPolicy::Exact);
    exact.handle("fn-a", SimTime::ZERO).unwrap();
    let b_exact = exact.handle("fn-b", SimTime::from_secs(1)).unwrap();
    assert!(b_exact.cold);

    // Fuzzy keys (the paper's future-work §VII): reuse with a reconfig cost.
    let mut fuzzy = build(KeyPolicy::Fuzzy);
    fuzzy.handle("fn-a", SimTime::ZERO).unwrap();
    let b_fuzzy = fuzzy.handle("fn-b", SimTime::from_secs(1)).unwrap();
    assert!(!b_fuzzy.cold);
    assert!(b_fuzzy.total() < b_exact.total() / 5);
}

#[test]
fn keepalive_expiry_vs_hotc_retention() {
    // Requests 20 minutes apart: a 15-minute keep-alive expires between
    // them, HotC's adaptive pool (with no memory pressure) retains.
    let mut workload = Vec::new();
    for i in 0..6u64 {
        workload.push(workloads::Arrival {
            at: SimTime::from_secs(i * 20 * 60),
            config_id: 0,
        });
    }
    let route = |_| "fn-0".to_string();
    let ka = run_workload(
        mixed_gateway(FixedKeepAlive::aws_default()),
        &workload,
        route,
        SimDuration::from_secs(60),
    );
    let hc = run_workload(
        mixed_gateway(HotC::with_defaults()),
        &workload,
        route,
        SimDuration::from_secs(60),
    );
    // Keep-alive: every request is cold (gap > TTL).
    assert!((ka.cold_fraction() - 1.0).abs() < 1e-9);
    // HotC: only the first (demand floor keeps one runtime warm).
    assert!(hc.cold_fraction() <= 0.34, "{}", hc.cold_fraction());
}
