//! Exponential smoothing (paper Eq. 1).
//!
//! `e_t = α·history[t] + (1-α)·e_{t-1}` with α ∈ (0, 1). The prediction for
//! the next interval is the current smoothed value. §IV-C-2 discusses the
//! parameter: α between 0.1 and 0.3 for stable series, larger for volatile
//! ones (the paper uses 0.8), and for short series (< 20 samples) the initial
//! value should be the mean of the first five observations rather than the
//! raw first sample.

use crate::Predictor;

use stdshim::{JsonValue, ToJson};
/// Strategy for seeding `e_0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialValue {
    /// Use the first observation directly (fine for long series).
    FirstObservation,
    /// Use the mean of the first `N` observations; predictions before `N`
    /// samples use the running mean so far. The paper's choice with N = 5.
    #[default]
    MeanOfFirst5,
}

/// The exponential smoothing predictor of Eq. 1.
#[derive(Debug, Clone)]
pub struct ExponentialSmoothing {
    alpha: f64,
    init: InitialValue,
    /// Smoothed value `e_t`, once seeded.
    smoothed: Option<f64>,
    /// Inline buffer of early observations while seeding with MeanOfFirst5
    /// (`warmup_len` entries are live); a controller builds one smoother per
    /// runtime key, so seeding must not allocate.
    warmup: [f64; 5],
    warmup_len: u8,
    observations: usize,
}

impl ExponentialSmoothing {
    /// Creates a predictor with the given smoothing coefficient.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1` (the paper's stated valid range).
    pub fn new(alpha: f64) -> Self {
        Self::with_init(alpha, InitialValue::default())
    }

    /// Creates a predictor with an explicit initial-value strategy.
    pub fn with_init(alpha: f64, init: InitialValue) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        ExponentialSmoothing {
            alpha,
            init,
            smoothed: None,
            warmup: [0.0; 5],
            warmup_len: 0,
            observations: 0,
        }
    }

    /// The paper's configuration: α = 0.8, mean-of-first-five seeding.
    pub fn paper_default() -> Self {
        Self::new(0.8)
    }

    /// The smoothing coefficient.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current smoothed value, if seeded.
    pub fn smoothed(&self) -> Option<f64> {
        self.smoothed
    }
}

impl Predictor for ExponentialSmoothing {
    fn observe(&mut self, value: f64) {
        self.observations += 1;
        match (self.smoothed, self.init) {
            (Some(prev), _) => {
                self.smoothed = Some(self.alpha * value + (1.0 - self.alpha) * prev);
            }
            (None, InitialValue::FirstObservation) => {
                self.smoothed = Some(value);
            }
            (None, InitialValue::MeanOfFirst5) => {
                self.warmup[usize::from(self.warmup_len)] = value;
                self.warmup_len += 1;
                if usize::from(self.warmup_len) == self.warmup.len() {
                    let mean = self.warmup.iter().sum::<f64>() / self.warmup.len() as f64;
                    self.smoothed = Some(mean);
                    self.warmup_len = 0;
                }
            }
        }
    }

    fn predict(&self) -> f64 {
        match self.smoothed {
            Some(e) => e,
            // Still warming up: running mean of what we have, else 0.
            None if self.warmup_len > 0 => {
                let n = usize::from(self.warmup_len);
                self.warmup[..n].iter().sum::<f64>() / n as f64
            }
            None => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        "exp-smoothing"
    }

    fn observations(&self) -> usize {
        self.observations
    }
}

impl ToJson for InitialValue {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(
            match self {
                InitialValue::FirstObservation => "first-observation",
                InitialValue::MeanOfFirst5 => "mean-of-first-5",
            }
            .to_string(),
        )
    }
}

impl ToJson for ExponentialSmoothing {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("alpha", self.alpha().to_json()),
            ("init", self.init.to_json()),
            ("observations", self.observations().to_json()),
            ("prediction", self.predict().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_predicts_constant() {
        let mut es = ExponentialSmoothing::paper_default();
        for _ in 0..30 {
            es.observe(7.0);
        }
        assert!((es.predict() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn recurrence_matches_eq1() {
        let mut es = ExponentialSmoothing::with_init(0.8, InitialValue::FirstObservation);
        es.observe(10.0); // e0 = 10
        es.observe(20.0); // e1 = 0.8*20 + 0.2*10 = 18
        assert!((es.predict() - 18.0).abs() < 1e-12);
        es.observe(15.0); // e2 = 0.8*15 + 0.2*18 = 15.6
        assert!((es.predict() - 15.6).abs() < 1e-12);
    }

    #[test]
    fn high_alpha_tracks_jumps_faster() {
        let series: Vec<f64> = std::iter::repeat_n(5.0, 10)
            .chain(std::iter::repeat_n(20.0, 3))
            .collect();
        let run = |alpha: f64| {
            let mut es = ExponentialSmoothing::with_init(alpha, InitialValue::FirstObservation);
            for &x in &series {
                es.observe(x);
            }
            es.predict()
        };
        let fast = run(0.8);
        let slow = run(0.2);
        // After the jump to 20, the α=0.8 model is much closer to 20.
        assert!((20.0 - fast).abs() < (20.0 - slow).abs());
        assert!(fast > 18.0, "fast={fast}");
        assert!(slow < 15.0, "slow={slow}");
    }

    #[test]
    fn mean_of_first5_seeding() {
        let mut es = ExponentialSmoothing::paper_default();
        for x in [2.0, 4.0, 6.0, 8.0, 10.0] {
            es.observe(x);
        }
        // e0 = mean of first five = 6.
        assert!((es.predict() - 6.0).abs() < 1e-12);
        es.observe(6.0);
        assert!((es.predict() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_predicts_running_mean() {
        let mut es = ExponentialSmoothing::paper_default();
        assert_eq!(es.predict(), 0.0);
        es.observe(4.0);
        assert!((es.predict() - 4.0).abs() < 1e-12);
        es.observe(8.0);
        assert!((es.predict() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn alpha_one_rejected() {
        let _ = ExponentialSmoothing::new(1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn alpha_zero_rejected() {
        let _ = ExponentialSmoothing::new(0.0);
    }

    /// The smoothed value is always within the observed range: it is a
    /// convex combination of observations (geometric weights summing to 1).
    #[test]
    fn prop_prediction_within_range() {
        testkit::check(64, |g| {
            let alpha = g.f64_in(0.01..0.99);
            let series = g.vec(1..100, |g| g.f64_in(0.0..1000.0));
            let mut es = ExponentialSmoothing::with_init(alpha, InitialValue::FirstObservation);
            for &x in &series {
                es.observe(x);
            }
            let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let p = es.predict();
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "p={p} not in [{lo},{hi}]");
        });
    }

    /// Shifting the whole series shifts the prediction by the same amount
    /// (linearity in the input level).
    #[test]
    fn prop_shift_equivariance() {
        testkit::check(64, |g| {
            let shift = g.f64_in(-100.0..100.0);
            let series = g.vec(6..50, |g| g.f64_in(0.0..100.0));
            let mut a = ExponentialSmoothing::paper_default();
            let mut b = ExponentialSmoothing::paper_default();
            for &x in &series {
                a.observe(x);
                b.observe(x + shift);
            }
            assert!((b.predict() - a.predict() - shift).abs() < 1e-6);
        });
    }
}
