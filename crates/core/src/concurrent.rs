//! Thread-safe gateway frontends for the parallel-request experiments.
//!
//! Fig. 12(b) drives the backend from ten client threads at once; the
//! contention benchmarks push further. Two frontends:
//!
//! * [`ConcurrentGateway`] — the global-lock baseline: wraps a
//!   [`faas::Gateway`] in one [`stdshim::sync::Mutex`] and splits each
//!   request into `begin`/`finish` phases so the lock is **not** held across
//!   a request's virtual execution. All pool, engine, stats, and tracker
//!   bookkeeping still serializes on that one lock.
//! * [`ShardedGateway`] — the scalable frontend: the runtime pool is a
//!   [`ShardedPool`] (per-shard locks), request counters are atomics
//!   ([`faas::SharedStats`]), the function table is behind a read-mostly
//!   [`stdshim::sync::RwLock`], and only the simulated container daemon
//!   itself remains a single mutex. Warm requests for runtime types on
//!   different shards share **no** lock except the engine's short
//!   `begin_exec`/`end_exec` critical sections, and container creation
//!   happens outside every shard lock, so cold starts on different keys
//!   overlap.
//!
//! Virtual time is per-thread ([`simclock::shared::ThreadTimeline`]): each
//! worker advances its own timeline by its requests' latencies, and an
//! experiment's elapsed time is the max across timelines (parallel-work
//! semantics).

use crate::controller::AdaptiveController;
use crate::limits::PoolLimits;
use crate::middleware::HotCConfig;
use crate::shard::{EngineRef, ShardedPool};
use containersim::{ContainerEngine, ContainerId};
use faas::gateway::{Gateway, GatewayError, InFlight};
use faas::pipeline::{GATEWAY_HOP, WATCHDOG_HOP};
use faas::AppTracker;
use faas::{AppProfile, FunctionSpec, GatewayStats, RequestTrace, RuntimeProvider, SharedStats};
use metrics_lite::{Counter, MetricsRegistry, StageSet};
use simclock::shared::ThreadTimeline;
use simclock::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stdshim::sync::{Mutex, RwLock};

/// A `Sync` gateway shared by client threads (single global lock).
pub struct ConcurrentGateway<P: RuntimeProvider> {
    inner: Mutex<Gateway<P>>,
}

impl<P: RuntimeProvider> ConcurrentGateway<P> {
    /// Wraps a gateway for concurrent use.
    pub fn new(gateway: Gateway<P>) -> Self {
        ConcurrentGateway {
            inner: Mutex::labeled(gateway, "gateway/global"),
        }
    }

    /// Serves one request on the calling thread's timeline: locks for the
    /// begin bookkeeping, releases the lock while the function "executes"
    /// (timeline advance), then locks again to finish.
    pub fn handle(
        &self,
        function: &str,
        timeline: &mut ThreadTimeline,
    ) -> Result<RequestTrace, GatewayError> {
        let inflight = {
            let mut gw = self.inner.lock();
            gw.begin(function, timeline.now())?
        };
        // Execution happens outside the lock: other threads' requests overlap.
        timeline.wait_until(inflight.t4_func_end);
        let trace = {
            let mut gw = self.inner.lock();
            gw.finish(inflight)?
        };
        timeline.wait_until(trace.t6_gateway_out);
        Ok(trace)
    }

    /// Runs provider maintenance at the given instant.
    pub fn tick(&self, now: SimTime) -> Result<(), GatewayError> {
        self.inner.lock().tick(now)
    }

    /// Runs a closure with the locked gateway (setup, inspection).
    pub fn with<R>(&self, f: impl FnOnce(&mut Gateway<P>) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Unwraps the inner gateway.
    pub fn into_inner(self) -> Gateway<P> {
        self.inner.into_inner()
    }
}

/// A registered function with its runtime key interned once, at registration
/// time — request paths hand out `Arc`s instead of deep-cloning the spec and
/// re-deriving the key on every call. The pool's [`crate::key::KeyId`] is
/// resolved here, so steady-state requests never even fingerprint the
/// configuration: the pool is addressed by a copyable `u32`. The
/// per-function stage-set handle is resolved here too, so the request path
/// records telemetry without any registry name lookup (the `key/` scope is a
/// snapshot-time union of the key's member functions — no second lock per
/// request).
struct FunctionEntry {
    spec: FunctionSpec,
    key_id: crate::key::KeyId,
    stage_fn: Arc<StageSet>,
    /// The function's application, as a dense nonzero token from the
    /// gateway's registration-time app registry. The warm path compares this
    /// `u64` against the pool slot's atomic last-app word instead of taking
    /// a tracker lock to compare name strings.
    app_token: u64,
}

/// A pre-resolved function handle: pins the registration-time
/// [`FunctionEntry`] so steady-state callers (benchmark drivers, dedicated
/// per-function workers) skip even the function-table read lock — a warm
/// request then reaches `begin_exec` without a single lock acquisition.
/// The handle is a snapshot: re-registering the function does not update it.
pub struct FunctionHandle {
    entry: Arc<FunctionEntry>,
}

/// Last-app tracking sharded by container id, so the per-request app-switch
/// check does not reserialize the warm path on one tracker mutex.
struct ShardedTracker {
    shards: Box<[Mutex<AppTracker>]>,
}

impl ShardedTracker {
    fn new(shards: usize) -> Self {
        ShardedTracker {
            shards: (0..shards.max(1))
                .map(|_| Mutex::labeled(AppTracker::new(), "gateway/tracker"))
                .collect(),
        }
    }

    fn shard(&self, container: ContainerId) -> &Mutex<AppTracker> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(&container, &mut hasher);
        &self.shards[(std::hash::Hasher::finish(&hasher) % self.shards.len() as u64) as usize]
    }

    fn needs_app_init(&self, container: ContainerId, app: &'static str, first_exec: bool) -> bool {
        self.shard(container)
            .lock()
            .needs_app_init(container, app, first_exec)
    }

    fn tracked(&self) -> usize {
        self.shards.iter().map(|s| s.lock().tracked()).sum()
    }

    fn prune_to(&self, live: &HashSet<ContainerId>) {
        for shard in self.shards.iter() {
            shard.lock().prune_to(live);
        }
    }
}

/// The sharded HotC gateway: per-shard pool locks, atomic stats, a
/// read-mostly function table with registration-time runtime keys, sharded
/// last-app tracking, and a single engine mutex standing in for the
/// container daemon.
///
/// Lock order (see DESIGN.md): a thread holds at most one of
/// {function table, tracker shard, pool shard, engine} at a time on the request
/// path; the controller mutex (tick only) may span shard/engine acquisitions
/// but is never taken while holding any other lock.
pub struct ShardedGateway {
    engine: Mutex<ContainerEngine>,
    functions: RwLock<HashMap<String, Arc<FunctionEntry>>>,
    stats: SharedStats,
    /// Last-app fallback for overflow containers (no bitmap slot). Bitmap
    /// containers — the steady state — use the pool's atomic last-app words.
    tracker: ShardedTracker,
    /// Registration-time app-name → token registry (see
    /// [`FunctionEntry::app_token`]). Locked only while registering.
    app_tokens: Mutex<Vec<&'static str>>,
    pool: ShardedPool,
    controller: Mutex<AdaptiveController>,
    limits: PoolLimits,
    disable_prediction: bool,
    /// Cumulative background cost in virtual nanoseconds (atomic: bumped on
    /// every release, so a mutex here would reserialize the warm path).
    background_nanos: AtomicU64,
    metrics: Arc<MetricsRegistry>,
    /// Read-time telemetry handles (the request path records only into the
    /// per-function/per-key stage sets; counters, `all`, and the e2e
    /// histogram are derived at snapshot time).
    requests_counter: Arc<Counter>,
    cold_counter: Arc<Counter>,
}

impl ShardedGateway {
    /// Builds the gateway over an engine from a HotC configuration, with its
    /// own fresh metrics registry.
    pub fn new(engine: ContainerEngine, config: HotCConfig) -> Self {
        Self::with_metrics(engine, config, Arc::new(MetricsRegistry::new()))
    }

    /// Builds the gateway recording into a shared metrics registry.
    pub fn with_metrics(
        engine: ContainerEngine,
        config: HotCConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        // Requests land once in their `fn/` scope (and once in `key/`); the
        // `all` scope and e2e histogram merge the `fn/` scopes at snapshot
        // time, keeping the multi-threaded record path to two stripe locks.
        metrics.stage_union("all", "fn/");
        metrics.histogram_union("gateway/e2e", "fn/");
        let requests_counter = metrics.counter("gateway/requests");
        let cold_counter = metrics.counter("gateway/cold_starts");
        ShardedGateway {
            engine: Mutex::labeled(engine, "core/engine"),
            functions: RwLock::labeled(HashMap::new(), "gateway/functions"),
            stats: SharedStats::new(),
            tracker: ShardedTracker::new(config.shards),
            app_tokens: Mutex::labeled(Vec::new(), "gateway/app-tokens"),
            pool: ShardedPool::with_shards(config.key_policy, config.shards),
            controller: Mutex::labeled(
                AdaptiveController::new(config.controller),
                "gateway/controller",
            ),
            limits: config.limits,
            disable_prediction: config.disable_prediction,
            background_nanos: AtomicU64::new(0),
            metrics,
            requests_counter,
            cold_counter,
        }
    }

    /// The paper's deployed configuration over a local-image engine.
    pub fn with_defaults(engine: ContainerEngine) -> Self {
        Self::new(engine, HotCConfig::default())
    }

    /// The gateway's metrics registry. Mirrors the request/cold-start tally
    /// into the registry's counters so a subsequent snapshot is current
    /// (`tick` refreshes them too).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.sync_counters();
        &self.metrics
    }

    /// Copies the hot-path atomic tallies into the registry counters: one
    /// store per counter here instead of a second contended increment per
    /// request in `finish`.
    fn sync_counters(&self) {
        let stats = self.stats.snapshot();
        self.requests_counter.store(stats.requests);
        self.cold_counter.store(stats.cold_starts);
    }

    /// Registers (or replaces) a function. The runtime key is interned and
    /// the per-function/per-key stage-set handles are derived here, once, so
    /// the per-request path never formats, hashes, or looks up a key string.
    pub fn register(&self, spec: FunctionSpec) {
        let key_id = self.pool.intern_config(&spec.config);
        let key = self.pool.key_of(&spec.config);
        let fn_scope = format!("fn/{}", spec.name);
        let stage_fn = self.metrics.stage_set(&fn_scope);
        self.metrics
            .stage_union_member(&format!("key/{key}"), &fn_scope);
        let app_token = self.app_token(spec.app.name);
        self.functions.write().insert(
            spec.name.clone(),
            Arc::new(FunctionEntry {
                spec,
                key_id,
                stage_fn,
                app_token,
            }),
        );
    }

    /// The dense nonzero token for an app name, registering it on first use.
    /// Registration-time only; tokens are stable for the gateway's lifetime.
    fn app_token(&self, app: &'static str) -> u64 {
        let mut tokens = self.app_tokens.lock();
        match tokens.iter().position(|&a| a == app) {
            Some(at) => at as u64 + 1,
            None => {
                tokens.push(app);
                tokens.len() as u64
            }
        }
    }

    /// Resolves a function to a reusable [`FunctionHandle`], or `None` if it
    /// is not registered. One function-table read here replaces one per
    /// request in [`Self::begin`]/[`Self::finish`].
    pub fn function_handle(&self, function: &str) -> Option<FunctionHandle> {
        self.functions
            .read()
            .get(function)
            .cloned()
            .map(|entry| FunctionHandle { entry })
    }

    /// Convenience: registers an app under its own name with its default
    /// configuration.
    pub fn register_app(&self, app: AppProfile) {
        self.register(FunctionSpec::from_app(app));
    }

    /// Aggregate counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats.snapshot()
    }

    /// The sharded runtime pool.
    pub fn pool(&self) -> &ShardedPool {
        &self.pool
    }

    /// The configured limits.
    pub fn limits(&self) -> PoolLimits {
        self.limits
    }

    /// Cumulative background (off-request-path) cost: cleanup, pre-warm,
    /// retire, eviction.
    pub fn background_cost(&self) -> SimDuration {
        SimDuration::from_nanos(self.background_nanos.load(Ordering::Relaxed))
            + self.controller.lock().background_cost()
    }

    fn add_background(&self, cost: SimDuration) {
        self.background_nanos
            .fetch_add(cost.as_nanos(), Ordering::Relaxed);
    }

    /// Number of containers with a tracked last-app entry.
    pub fn tracked_containers(&self) -> usize {
        self.tracker.tracked()
    }

    /// Runs a closure with the locked engine (setup, inspection).
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R {
        f(&mut self.engine.lock())
    }

    /// Starts serving a request that arrived at `now`. Each piece of shared
    /// state is locked by itself, in a fixed order, and never across the
    /// container-creation path of another key's shard.
    pub fn begin(&self, function: &str, now: SimTime) -> Result<InFlight, GatewayError> {
        let entry = self
            .functions
            .read()
            .get(function)
            .cloned()
            .ok_or_else(|| GatewayError::UnknownFunction(function.to_string()))?;
        self.begin_entry(&entry, now)
    }

    /// [`Self::begin`] through a pre-resolved [`FunctionHandle`]: no
    /// function-table lock, so a warm hit performs **zero** lock
    /// acquisitions before the engine's `begin_exec` critical section.
    pub fn begin_handle(
        &self,
        handle: &FunctionHandle,
        now: SimTime,
    ) -> Result<InFlight, GatewayError> {
        self.begin_entry(&handle.entry, now)
    }

    fn begin_entry(
        &self,
        entry: &Arc<FunctionEntry>,
        now: SimTime,
    ) -> Result<InFlight, GatewayError> {
        // DESIGN.md §5: the request path holds at most one of {function
        // table, pool shard, engine} at a time — and the warm acquire +
        // app-switch check below hold none at all.
        let _scope = stdshim::request_path_scope();
        let t1 = now;
        let t2 = t1 + GATEWAY_HOP;
        // `acquire_id` reports `first_exec` from pool bookkeeping and reuses
        // the registration-time interned id, so a warm hit is a bitmap CAS —
        // no shard lock, no engine lock, no key hashing. The app-switch
        // check then swaps the slot's atomic last-app word; only overflow
        // containers (beyond the per-key slot array) fall back to the
        // tracker mutex.
        let warm_scope = stdshim::request_path_scope();
        let acq = self
            .pool
            .acquire_id(&self.engine, entry.key_id, &entry.spec.config, t2)?;
        let first_exec = acq.first_exec;
        // App init is due on a fresh runtime AND when the pooled runtime
        // last ran a different app (fuzzy keys / shared runtime types).
        let needs_app_init = acq
            .slot
            .and_then(|slot| self.pool.note_app(entry.key_id, slot, entry.app_token))
            .map_or_else(
                || {
                    self.tracker
                        .needs_app_init(acq.container, entry.spec.app.name, first_exec)
                },
                |prev| first_exec || prev != entry.app_token,
            );
        debug_assert!(
            !acq.lock_free || warm_scope.locks_taken() == 0,
            "warm gateway hit took a lock before begin_exec"
        );
        drop(warm_scope);
        if acq.cold {
            // A cold start may have pushed the pool over its limits.
            let cost = self.limits.enforce_sharded(&self.pool, &self.engine, t2)?;
            self.add_background(cost);
        }
        let work = entry.spec.app.work_for(needs_app_init);
        // Function initiation: watchdog shim + obtaining the runtime.
        let t3 = t2 + WATCHDOG_HOP + acq.cost;
        let outcome = self
            .engine
            .with_engine(|e| e.begin_exec(acq.container, work, t3))?;
        let t4 = t3 + outcome.latency;
        Ok(InFlight {
            function: entry.spec.name.clone(),
            container: acq.container,
            t4_func_end: t4,
            t1,
            t2,
            t3,
            cold: acq.cold,
            first_exec,
            crashed: outcome.crashed,
            breakdown: acq.breakdown,
            reconfig: acq.reconfig,
            init_latency: outcome.init_latency,
            exec_latency: outcome.latency,
        })
    }

    /// Completes an in-flight request at its `t4`: end the execution, return
    /// the container to the pool (a crashed one is disposed of), bump the
    /// atomic counters, and prune app-tracking entries that just went stale.
    pub fn finish(&self, inflight: InFlight) -> Result<RequestTrace, GatewayError> {
        let entry = self.functions.read().get(&inflight.function).cloned();
        self.finish_entry(entry.as_ref(), inflight)
    }

    /// [`Self::finish`] through a pre-resolved [`FunctionHandle`]: no
    /// function-table lock. The handle must be the one the request began
    /// with.
    pub fn finish_handle(
        &self,
        handle: &FunctionHandle,
        inflight: InFlight,
    ) -> Result<RequestTrace, GatewayError> {
        self.finish_entry(Some(&handle.entry), inflight)
    }

    fn finish_entry(
        &self,
        entry: Option<&Arc<FunctionEntry>>,
        inflight: InFlight,
    ) -> Result<RequestTrace, GatewayError> {
        // DESIGN.md §5: at most one lock at a time on the finish path too —
        // and a warm release takes none outside the single engine critical
        // section (the container resolves through the pool's lock-free
        // reverse index).
        let _scope = stdshim::request_path_scope();
        let t4 = inflight.t4_func_end;
        // Fast path: the registration-time entry already carries the
        // interned key id, so the end-exec + cleanup pair runs in one engine
        // critical section instead of three, with no key re-derivation.
        let finished = match &entry {
            Some(entry) => self.pool.try_finish_release(
                &self.engine,
                entry.key_id,
                inflight.container,
                t4,
                inflight.crashed,
            )?,
            None => None,
        };
        let cost = match finished {
            Some(cost) => cost,
            None => {
                // The function was re-registered (or deregistered) with a
                // different configuration mid-flight: end the execution and
                // let the pool derive the key from the engine's config.
                self.engine
                    .with_engine(|e| e.end_exec(inflight.container, t4))?;
                self.pool.release(&self.engine, inflight.container, t4)?
            }
        };
        self.add_background(cost);
        self.stats.record(inflight.cold);
        if inflight.crashed {
            // The crashed container was just disposed of, so its tracker
            // entry is stale right now; containers disposed of by eviction
            // are pruned by the next `tick`.
            self.prune_tracker();
        }
        let trace = inflight.complete();
        // Always-on stage telemetry: ONE cache-padded stripe lock per
        // request, through the registration-time handle (no name lookup).
        // Counters, the `all` scope, the `key/` scopes, and the e2e
        // histogram are all derived at read time.
        if let Some(entry) = entry {
            entry.stage_fn.record(&inflight.stage_sample());
        }
        Ok(trace)
    }

    /// Serves one request on the calling thread's timeline (begin, advance
    /// past the virtual execution, finish).
    pub fn handle(
        &self,
        function: &str,
        timeline: &mut ThreadTimeline,
    ) -> Result<RequestTrace, GatewayError> {
        let inflight = self.begin(function, timeline.now())?;
        timeline.wait_until(inflight.t4_func_end);
        let trace = self.finish(inflight)?;
        timeline.wait_until(trace.t6_gateway_out);
        Ok(trace)
    }

    /// [`Self::handle`] through a pre-resolved [`FunctionHandle`] — the
    /// steady-state warm request performs zero lock acquisitions outside the
    /// engine's `begin_exec`/`end_exec` critical sections.
    pub fn handle_with(
        &self,
        handle: &FunctionHandle,
        timeline: &mut ThreadTimeline,
    ) -> Result<RequestTrace, GatewayError> {
        let inflight = self.begin_handle(handle, timeline.now())?;
        timeline.wait_until(inflight.t4_func_end);
        let trace = self.finish_handle(handle, inflight)?;
        timeline.wait_until(trace.t6_gateway_out);
        Ok(trace)
    }

    /// Periodic maintenance: one adaptive-controller step (per shard), limit
    /// enforcement, tracker pruning — plus sampling the controller/pool
    /// gauges and time series into the metrics registry.
    pub fn tick(&self, now: SimTime) -> Result<(), GatewayError> {
        if !self.disable_prediction {
            let report =
                self.controller
                    .lock()
                    .maybe_step_sharded(&self.pool, &self.engine, now)?;
            if let Some(report) = report {
                self.metrics
                    .counter("controller/prewarmed")
                    .add(report.prewarmed as u64);
                self.metrics
                    .counter("controller/retired")
                    .add(report.retired as u64);
                self.metrics
                    .counter("controller/gc_keys")
                    .add(report.gc_keys as u64);
                self.metrics.sample_series(
                    "controller/predicted_demand",
                    now,
                    report.predicted_total(),
                );
                self.metrics.sample_series(
                    "controller/actual_demand",
                    now,
                    report.actual_total() as f64,
                );
            }
        }
        let (cost, evicted) = self
            .limits
            .enforce_sharded_counted(&self.pool, &self.engine, now)?;
        self.add_background(cost);
        if evicted > 0 {
            self.metrics.counter("pool/evictions").add(evicted as u64);
        }
        let sizes = self.pool.shard_sizes();
        let (avail, in_use) = sizes
            .iter()
            .fold((0usize, 0usize), |(a, u), &(sa, su)| (a + sa, u + su));
        for (i, &(sa, su)) in sizes.iter().enumerate() {
            self.metrics
                .gauge(&format!("pool/shard{i}/live"))
                .set((sa + su) as f64);
        }
        self.metrics.gauge("pool/available").set(avail as f64);
        self.metrics.gauge("pool/in_use").set(in_use as f64);
        self.metrics
            .sample_series("pool/live", now, (avail + in_use) as f64);
        self.sync_counters();
        self.prune_tracker();
        Ok(())
    }

    /// Drops last-app entries for containers that no longer exist. Cheap
    /// guard first; on a real prune the live-id set is snapshotted under the
    /// engine lock and applied under the tracker lock — the two locks are
    /// never held together.
    fn prune_tracker(&self) {
        let tracked = self.tracker.tracked();
        let live = self.engine.with_engine(|e| e.live_count());
        if tracked > live {
            let live_ids: HashSet<ContainerId> = self
                .engine
                .with_engine(|e| e.live_ids_oldest_first().into_iter().collect());
            self.tracker.prune_to(&live_ids);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::HotC;
    use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
    use faas::AppProfile;
    use metrics_lite::LatencyRecorder;
    use simclock::SimDuration;
    use std::sync::Arc;

    fn concurrent_gateway() -> Arc<ConcurrentGateway<HotC>> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, HotC::with_defaults());
        for (i, lang) in [
            LanguageRuntime::Python,
            LanguageRuntime::Go,
            LanguageRuntime::NodeJs,
            LanguageRuntime::Java,
        ]
        .iter()
        .enumerate()
        {
            gw.register(
                faas::FunctionSpec::from_app(AppProfile::qr_code(*lang)).named(format!("qr-{i}")),
            );
        }
        Arc::new(ConcurrentGateway::new(gw))
    }

    fn sharded_gateway() -> Arc<ShardedGateway> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let gw = ShardedGateway::with_defaults(engine);
        for (i, lang) in [
            LanguageRuntime::Python,
            LanguageRuntime::Go,
            LanguageRuntime::NodeJs,
            LanguageRuntime::Java,
        ]
        .iter()
        .enumerate()
        {
            gw.register(
                faas::FunctionSpec::from_app(AppProfile::qr_code(*lang)).named(format!("qr-{i}")),
            );
        }
        Arc::new(gw)
    }

    #[test]
    fn ten_threads_each_own_runtime() {
        let gw = concurrent_gateway();
        let threads = 4usize;
        let per_thread = 25usize;
        let recorders: Vec<LatencyRecorder> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let gw = Arc::clone(&gw);
                    s.spawn(move || {
                        let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                        let mut rec = LatencyRecorder::new();
                        let function = format!("qr-{t}");
                        for _ in 0..per_thread {
                            let trace = gw.handle(&function, &mut timeline).unwrap();
                            rec.record(trace.total());
                            timeline.advance(SimDuration::from_secs(1));
                        }
                        rec
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let stats = gw.with(|g| g.stats());
        assert_eq!(stats.requests as usize, threads * per_thread);
        // Each thread's own config cold-starts at most a few times; the rest
        // reuse (threads interleave, so a thread may occasionally race its
        // own release and open a second container).
        assert!(
            stats.cold_starts as usize <= threads * 3,
            "cold starts: {}",
            stats.cold_starts
        );
        // Warm latencies dominate: median well under the cold latency.
        for rec in &recorders {
            assert!(rec.median().as_millis() < 100, "median {:?}", rec.median());
        }
    }

    #[test]
    fn shared_config_threads_reuse_each_others_containers() {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, HotC::with_defaults());
        gw.register_app(AppProfile::random_number());
        let gw = Arc::new(ConcurrentGateway::new(gw));

        std::thread::scope(|s| {
            for _ in 0..4 {
                let gw = Arc::clone(&gw);
                s.spawn(move || {
                    let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                    for _ in 0..20 {
                        gw.handle("random-number", &mut timeline).unwrap();
                        timeline.advance(SimDuration::from_millis(200));
                    }
                });
            }
        });

        let (requests, cold, live) = gw.with(|g| {
            (
                g.stats().requests,
                g.stats().cold_starts,
                g.engine().live_count(),
            )
        });
        assert_eq!(requests, 80);
        // One shared config: the pool converges to at most a handful of
        // containers (bounded by peak overlap), nowhere near 80.
        assert!(cold <= 8, "cold={cold}");
        assert!(live <= 8, "live={live}");
    }

    #[test]
    fn deterministic_when_single_threaded() {
        // The concurrent wrapper adds no nondeterminism absent real races.
        let run = || {
            let gw = concurrent_gateway();
            let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
            let mut latencies = Vec::new();
            for _ in 0..10 {
                let t = gw.handle("qr-0", &mut timeline).unwrap();
                latencies.push(t.total());
            }
            latencies
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_threads_each_own_runtime() {
        let gw = sharded_gateway();
        let threads = 4usize;
        let per_thread = 25usize;
        let recorders: Vec<LatencyRecorder> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let gw = Arc::clone(&gw);
                    s.spawn(move || {
                        let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                        let mut rec = LatencyRecorder::new();
                        let function = format!("qr-{t}");
                        for _ in 0..per_thread {
                            let trace = gw.handle(&function, &mut timeline).unwrap();
                            rec.record(trace.total());
                            timeline.advance(SimDuration::from_secs(1));
                        }
                        rec
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let stats = gw.stats();
        assert_eq!(stats.requests as usize, threads * per_thread);
        assert!(
            stats.cold_starts as usize <= threads * 3,
            "cold starts: {}",
            stats.cold_starts
        );
        for rec in &recorders {
            assert!(rec.median().as_millis() < 100, "median {:?}", rec.median());
        }
        // Pool and engine agree once everything is released.
        assert_eq!(gw.pool().total_live(), gw.with_engine(|e| e.live_count()));
    }

    #[test]
    fn sharded_shared_config_reuse() {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let gw = ShardedGateway::with_defaults(engine);
        gw.register_app(AppProfile::random_number());
        let gw = Arc::new(gw);

        std::thread::scope(|s| {
            for _ in 0..4 {
                let gw = Arc::clone(&gw);
                s.spawn(move || {
                    let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                    for _ in 0..20 {
                        gw.handle("random-number", &mut timeline).unwrap();
                        timeline.advance(SimDuration::from_millis(200));
                    }
                });
            }
        });

        let stats = gw.stats();
        assert_eq!(stats.requests, 80);
        assert!(stats.cold_starts <= 8, "cold={}", stats.cold_starts);
        let live = gw.with_engine(|e| e.live_count());
        assert!(live <= 8, "live={live}");
        assert_eq!(gw.pool().total_live(), live);
        // No request in flight ⇒ every tracked container is live.
        assert!(gw.tracked_containers() <= live);
    }

    #[test]
    fn sharded_matches_global_lock_single_threaded() {
        // Same traffic through both frontends yields identical traces: the
        // sharding changes synchronization, not semantics.
        let sharded = {
            let gw = sharded_gateway();
            let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
            (0..10)
                .map(|_| gw.handle("qr-0", &mut timeline).unwrap().total())
                .collect::<Vec<_>>()
        };
        let global = {
            let gw = concurrent_gateway();
            let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
            (0..10)
                .map(|_| gw.handle("qr-0", &mut timeline).unwrap().total())
                .collect::<Vec<_>>()
        };
        assert_eq!(sharded, global);
    }

    /// The always-on registry sees every request from every worker thread:
    /// counters match the atomic stats, per-function and per-key stage
    /// histograms are populated, the aggregate stage sums reconcile exactly
    /// with the sum of e2e trace totals, and a tick samples the pool gauges
    /// and controller series.
    #[test]
    fn sharded_telemetry_reconciles_across_threads() {
        let gw = sharded_gateway();
        let threads = 4usize;
        let per_thread = 25usize;
        let totals: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let gw = Arc::clone(&gw);
                    s.spawn(move || {
                        let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                        let mut sum = 0u64;
                        let function = format!("qr-{t}");
                        for _ in 0..per_thread {
                            let trace = gw.handle(&function, &mut timeline).unwrap();
                            sum += trace.total().as_nanos();
                            timeline.advance(SimDuration::from_secs(1));
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        gw.tick(SimTime::from_secs(60)).unwrap();

        let snap = gw.metrics().snapshot();
        let n = (threads * per_thread) as u64;
        assert_eq!(snap.counter("gateway/requests"), Some(n));
        assert_eq!(
            snap.counter("gateway/cold_starts"),
            Some(gw.stats().cold_starts)
        );
        assert_eq!(snap.stage_count("all", metrics_lite::Stage::Exec), n);
        // Exact reconciliation: stage sums == Σ trace.total() over all
        // requests, across scopes.
        let expected: u64 = totals.iter().sum();
        assert_eq!(snap.scope_total_ns("all"), expected);
        let per_scope: u64 = (0..threads)
            .map(|t| snap.scope_total_ns(&format!("fn/qr-{t}")))
            .sum();
        assert_eq!(per_scope, expected);
        // Every function got its per-key scope too (distinct configs here).
        let key_scopes = snap
            .stages
            .iter()
            .filter(|(s, _)| s.starts_with("key/"))
            .count();
        assert_eq!(key_scopes, threads);
        // The tick sampled pool gauges and the live series.
        assert!(snap.gauge("pool/available").is_some());
        assert!(snap.gauge("pool/shard0/live").is_some());
        assert!(snap
            .series
            .iter()
            .any(|(name, ts)| name == "pool/live" && ts.len() == 1));
    }

    #[test]
    fn sharded_tick_controls_pool() {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let gw = ShardedGateway::with_defaults(engine);
        gw.register_app(AppProfile::random_number());
        let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
        gw.handle("random-number", &mut timeline).unwrap();
        gw.tick(SimTime::from_secs(30)).unwrap();
        assert!(gw.background_cost() > SimDuration::ZERO);
        // The idle runtime stays warm for the next request.
        timeline.wait_until(SimTime::from_secs(31));
        let warm = gw.handle("random-number", &mut timeline).unwrap();
        assert!(!warm.cold);
    }
}
