//! Checker self-tests: classic weak-memory litmus shapes.
//!
//! These run in the *normal* workspace test suite (no `--cfg hotc_model`
//! needed): they drive the model atomics directly, proving the checker
//! finds the bugs it exists to find (stale relaxed reads, missing
//! release/acquire edges) and stays quiet on correct protocols — before the
//! instrumented build points it at the real slot protocol.

use hotc_model::{spawn, Checker, ModelAtomicU64, ModelOnceLock};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Small fixed budget so self-tests stay fast even if the env knob is huge.
fn checker() -> Checker {
    Checker::new().budget(20_000)
}

#[test]
fn relaxed_message_passing_is_caught() {
    // The canonical MP shape with both stores Relaxed: the reader may see
    // the flag without the data. The checker must find that schedule.
    let report = checker().preemption_bound(2).try_check(|| {
        let data = Arc::new(ModelAtomicU64::new(0));
        let flag = Arc::new(ModelAtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "flag up but data stale");
        }
        writer.join();
    });
    let v = report.violation.expect("relaxed MP must violate");
    assert!(v.message.contains("data stale"), "message: {}", v.message);
    assert!(!v.schedule.is_empty(), "violating schedule is replayable");
    assert!(
        v.render().contains("execution trace"),
        "render has the trace"
    );
}

#[test]
fn release_acquire_message_passing_is_clean() {
    // Same shape with a Release store / Acquire load pair: no schedule may
    // violate, and the bounded tree must be exhausted (not budget-capped).
    let report = checker().preemption_bound(2).try_check(|| {
        let data = Arc::new(ModelAtomicU64::new(0));
        let flag = Arc::new(ModelAtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        writer.join();
    });
    assert!(report.violation.is_none(), "release/acquire MP is correct");
    assert!(report.complete, "bounded tree exhausted");
    assert!(report.schedules > 1, "more than one interleaving explored");
}

#[test]
fn store_buffering_stale_reads_are_explored() {
    // SB: with relaxed (or even SeqCst-free acquire/release) accesses both
    // threads may read 0 — a weak behaviour x86 hardware never shows. The
    // checker's store model must reach it.
    let report = checker().preemption_bound(2).try_check(|| {
        let x = Arc::new(ModelAtomicU64::new(0));
        let y = Arc::new(ModelAtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed);
        let r1 = t1.join();
        assert!(r1 == 1 || r2 == 1, "both threads read 0: weak SB outcome");
    });
    assert!(
        report.violation.is_some(),
        "the r1 == r2 == 0 outcome must be reachable"
    );
}

#[test]
fn atomic_rmw_has_no_lost_updates() {
    // Two relaxed fetch_adds never lose an update (RMWs read the newest
    // store by construction) …
    let report = checker().preemption_bound(2).try_check(|| {
        let c = Arc::new(ModelAtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
    assert!(report.violation.is_none(), "fetch_add is atomic");
    assert!(report.complete);

    // … while the load-then-store "increment" does lose one.
    let report = checker().preemption_bound(2).try_check(|| {
        let c = Arc::new(ModelAtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = spawn(move || {
            let v = c2.load(Ordering::Relaxed);
            c2.store(v + 1, Ordering::Relaxed);
        });
        let v = c.load(Ordering::Relaxed);
        c.store(v + 1, Ordering::Relaxed);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let v = report.violation.expect("split increment races");
    assert!(v.message.contains("lost update"));
}

#[test]
fn cas_claims_are_exclusive() {
    // Two threads CAS the same slot word 1 -> 0; exactly one may win.
    let report = checker().preemption_bound(3).try_check(|| {
        let word = Arc::new(ModelAtomicU64::new(1));
        let wins = Arc::new(ModelAtomicU64::new(0));
        let (w2, n2) = (Arc::clone(&word), Arc::clone(&wins));
        let t = spawn(move || {
            if w2
                .compare_exchange(1, 0, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                n2.fetch_add(1, Ordering::Relaxed);
            }
        });
        if word
            .compare_exchange(1, 0, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            wins.fetch_add(1, Ordering::Relaxed);
        }
        t.join();
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one CAS wins");
    });
    assert!(report.violation.is_none(), "CAS exclusivity holds");
    assert!(report.complete);
}

#[test]
fn once_lock_publication_is_acquire() {
    // Data stored before get_or_init is visible to any thread that observes
    // the lock as initialized (the anchor's acq-rel edge).
    let report = checker().preemption_bound(2).try_check(|| {
        let data = Arc::new(ModelAtomicU64::new(0));
        let once: Arc<ModelOnceLock<u64>> = Arc::new(ModelOnceLock::new());
        let (d, o) = (Arc::clone(&data), Arc::clone(&once));
        let t = spawn(move || {
            d.store(99, Ordering::Relaxed);
            o.get_or_init(|| 7);
        });
        if let Some(v) = once.get() {
            assert_eq!(*v, 7);
            assert_eq!(
                data.load(Ordering::Relaxed),
                99,
                "once observed but prior store invisible"
            );
        }
        t.join();
    });
    assert!(report.violation.is_none(), "once publication synchronizes");
    assert!(report.complete);
}

#[test]
fn stale_reads_are_reachable_even_at_preemption_bound_zero() {
    // Bound 0 removes mid-thread interleavings (a thread only yields when
    // it blocks), but value nondeterminism is independent of thread
    // nondeterminism: in the schedule where the writer runs to completion
    // before the reader starts, the unsynchronized reader may still read
    // the flag fresh and the data stale. The checker must find that
    // without a single preemption.
    let report = checker().preemption_bound(0).try_check(|| {
        let data = Arc::new(ModelAtomicU64::new(0));
        let flag = Arc::new(ModelAtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let reader = spawn(move || {
            if f.load(Ordering::Relaxed) == 1 {
                assert_eq!(d.load(Ordering::Relaxed), 42, "stale data");
            }
        });
        writer.join();
        reader.join();
    });
    assert!(
        report.violation.is_some(),
        "stale reads are value choices, reachable even at bound 0"
    );
}

#[test]
fn model_atomics_work_outside_a_run() {
    // Fallback path: no Checker active, the types behave like std atomics.
    let a = ModelAtomicU64::new(5);
    assert_eq!(a.fetch_add(2, Ordering::Relaxed), 5);
    assert_eq!(a.swap(11, Ordering::AcqRel), 7);
    assert_eq!(
        a.compare_exchange(11, 12, Ordering::AcqRel, Ordering::Acquire),
        Ok(11)
    );
    assert_eq!(a.load(Ordering::SeqCst), 12);
    let once: ModelOnceLock<String> = ModelOnceLock::new();
    assert!(once.get().is_none());
    assert_eq!(once.get_or_init(|| "x".to_string()), "x");
    assert_eq!(once.get().map(String::as_str), Some("x"));
}
