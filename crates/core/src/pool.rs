//! The live container runtime pool (§IV-B, Fig. 7, Algorithms 1–2).
//!
//! "HotC maintains a key value store to track the available containers. The
//! key is the formatted parameter configurations for each container and the
//! value is a list with container ID and state of the container."
//!
//! States follow Fig. 7: *Not-Existing (-1)*, *Existing-Not-Available (0)*
//! (running a request), *Existing-Available (1)* (idle in the pool, clean,
//! ready for reuse). Algorithm 1 (`acquire`) reuses the first available
//! container of the requested type or cold-starts one; Algorithm 2
//! (`release`) cleans the used container (wipe volume + remount) and returns
//! it to the pool, incrementing `num_avail[key]`.

use crate::key::{needs_reconfig, KeyPolicy, RuntimeKey, FUZZY_RECONFIG_COST};
use containersim::{ContainerConfig, ContainerEngine, ContainerId, EngineError};
use faas::Acquisition;
use simclock::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Default)]
struct Slot {
    /// Existing-Available containers, FIFO ("the client just reuses the
    /// first available container").
    available: VecDeque<ContainerId>,
    /// Number of Existing-Not-Available containers of this type.
    in_use: usize,
    /// Peak concurrent in-use count since the last demand snapshot — the
    /// `history[k][t]` series the adaptive controller feeds the predictor.
    watermark: usize,
}

/// The HotC container pool.
///
/// ```
/// use containersim::{ContainerConfig, ContainerEngine, HardwareProfile, ImageId};
/// use hotc::{ContainerPool, KeyPolicy};
/// use simclock::SimTime;
///
/// let mut engine = ContainerEngine::with_local_images(HardwareProfile::server());
/// let mut pool = ContainerPool::new(KeyPolicy::Exact);
/// let config = ContainerConfig::bridge(ImageId::parse("python:3.8-alpine"));
///
/// // Algorithm 1: first acquire cold-starts, …
/// let first = pool.acquire(&mut engine, &config, SimTime::ZERO).unwrap();
/// assert!(first.cold);
/// # let out = engine.begin_exec(first.container,
/// #     containersim::engine::ExecWork::light(simclock::SimDuration::from_millis(1)),
/// #     SimTime::ZERO).unwrap();
/// # engine.end_exec(first.container, SimTime::ZERO + out.latency).unwrap();
/// // … Algorithm 2 cleans and re-pools, and the next acquire reuses.
/// pool.release(&mut engine, first.container, SimTime::from_secs(1)).unwrap();
/// let second = pool.acquire(&mut engine, &config, SimTime::from_secs(2)).unwrap();
/// assert!(!second.cold);
/// assert_eq!(second.container, first.container);
/// ```
#[derive(Debug)]
pub struct ContainerPool {
    policy: KeyPolicy,
    slots: HashMap<RuntimeKey, Slot>,
}

impl ContainerPool {
    /// Creates an empty pool with the given key policy.
    pub fn new(policy: KeyPolicy) -> Self {
        ContainerPool {
            policy,
            slots: HashMap::new(),
        }
    }

    /// The key policy in force.
    pub fn policy(&self) -> KeyPolicy {
        self.policy
    }

    /// The runtime key for a configuration under this pool's policy.
    pub fn key_of(&self, config: &ContainerConfig) -> RuntimeKey {
        RuntimeKey::from_config(config, self.policy)
    }

    /// Algorithm 1: obtain a runtime for `config`. Reuses the first
    /// available container of the same type if one exists, otherwise starts
    /// a new container. Returns the acquisition (reuse cost is zero, or the
    /// fuzzy reconfiguration cost when configs differ under a fuzzy key).
    pub fn acquire(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        let key = self.key_of(config);
        let slot = self.slots.entry(key).or_default();
        if let Some(container) = slot.available.pop_front() {
            // Existing-Available → Existing-Not-Available; num_avail[key]--.
            slot.in_use += 1;
            slot.watermark = slot.watermark.max(slot.in_use);
            let cost = match engine.config(container) {
                Some(existing) if needs_reconfig(existing, config) => FUZZY_RECONFIG_COST,
                _ => SimDuration::ZERO,
            };
            return Ok(Acquisition {
                container,
                cost,
                cold: false,
            });
        }
        // Not existing, or existing but not available: start a new one.
        let (container, breakdown) = engine.create_container(config.clone(), now)?;
        let slot = self
            .slots
            .get_mut(&self.key_of(config))
            .expect("slot inserted above");
        slot.in_use += 1;
        slot.watermark = slot.watermark.max(slot.in_use);
        Ok(Acquisition {
            container,
            cost: breakdown.total(),
            cold: true,
        })
    }

    /// Algorithm 2: clean the used container and add it back to the pool
    /// (`num_avail[key]++`). A crashed (Stopped) container cannot be reused:
    /// it is disposed of instead, and the type's bookkeeping is adjusted.
    /// Returns the cleanup/disposal cost (off the request path).
    pub fn release(
        &mut self,
        engine: &mut ContainerEngine,
        container: ContainerId,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        let config = engine
            .config(container)
            .ok_or(EngineError::UnknownContainer(container))?
            .clone();
        let key = self.key_of(&config);
        let crashed = engine.state(container) == containersim::ContainerState::Stopped;
        let cost = if crashed {
            engine.stop_and_remove(container, now)?
        } else {
            engine.cleanup(container, now)?
        };
        let slot = self.slots.entry(key).or_default();
        debug_assert!(slot.in_use > 0, "release without matching acquire");
        slot.in_use = slot.in_use.saturating_sub(1);
        if !crashed {
            slot.available.push_back(container);
        }
        Ok(cost)
    }

    /// Pre-warms one container of the given configuration (adaptive
    /// controller's scale-up action). The container boots straight into the
    /// Existing-Available state. Returns the cold-start cost (background).
    pub fn prewarm(
        &mut self,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        let (container, breakdown) = engine.create_container(config.clone(), now)?;
        let key = self.key_of(config);
        self.slots
            .entry(key)
            .or_default()
            .available
            .push_back(container);
        Ok(breakdown.total())
    }

    /// Retires one available container of the given type (adaptive
    /// controller's scale-down action). Returns the teardown cost, or `None`
    /// if none was available.
    pub fn retire_one(
        &mut self,
        engine: &mut ContainerEngine,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        let Some(slot) = self.slots.get_mut(key) else {
            return Ok(None);
        };
        let Some(container) = slot.available.pop_front() else {
            return Ok(None);
        };
        let cost = engine.stop_and_remove(container, now)?;
        Ok(Some(cost))
    }

    /// Forcibly terminates the *oldest* available live container across all
    /// types (§IV-B's response to too many containers / memory pressure).
    /// Returns the teardown cost, or `None` if the pool holds no available
    /// container.
    pub fn evict_oldest(
        &mut self,
        engine: &mut ContainerEngine,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        let mut oldest: Option<(SimTime, RuntimeKey, ContainerId)> = None;
        for (key, slot) in &self.slots {
            for &id in &slot.available {
                let created = engine
                    .created_at(id)
                    .expect("pooled container must be live");
                if oldest
                    .as_ref()
                    .map(|(t, _, _)| created < *t)
                    .unwrap_or(true)
                {
                    oldest = Some((created, key.clone(), id));
                }
            }
        }
        let Some((_, key, id)) = oldest else {
            return Ok(None);
        };
        let slot = self.slots.get_mut(&key).expect("key seen above");
        slot.available.retain(|&c| c != id);
        let cost = engine.stop_and_remove(id, now)?;
        Ok(Some(cost))
    }

    /// `num_avail[key]`: available containers of the given type.
    pub fn num_avail(&self, key: &RuntimeKey) -> usize {
        self.slots.get(key).map_or(0, |s| s.available.len())
    }

    /// In-use containers of the given type.
    pub fn num_in_use(&self, key: &RuntimeKey) -> usize {
        self.slots.get(key).map_or(0, |s| s.in_use)
    }

    /// Total live containers tracked by the pool (available + in use).
    pub fn total_live(&self) -> usize {
        self.slots
            .values()
            .map(|s| s.available.len() + s.in_use)
            .sum()
    }

    /// Total available containers across all types.
    pub fn total_available(&self) -> usize {
        self.slots.values().map(|s| s.available.len()).sum()
    }

    /// The Fig. 7 pool-view code for a container: 1 Existing-Available, 0
    /// Existing-Not-Available, -1 Not-Existing.
    pub fn pool_code(&self, engine: &ContainerEngine, container: ContainerId) -> i8 {
        if self
            .slots
            .values()
            .any(|s| s.available.contains(&container))
        {
            1
        } else if engine.config(container).is_some() {
            0
        } else {
            -1
        }
    }

    /// Takes the per-key demand snapshot (`history[k][t]`) and resets the
    /// watermarks for the next control interval. Keys the pool has seen are
    /// always reported, including zero-demand intervals.
    pub fn take_demand_snapshot(&mut self) -> Vec<(RuntimeKey, usize)> {
        let mut out: Vec<(RuntimeKey, usize)> = self
            .slots
            .iter_mut()
            .map(|(k, s)| {
                let demand = s.watermark.max(s.in_use);
                s.watermark = s.in_use;
                (k.clone(), demand)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The keys the pool currently tracks, sorted.
    pub fn keys(&self) -> Vec<RuntimeKey> {
        let mut keys: Vec<_> = self.slots.keys().cloned().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::container::ExecOptions;
    use containersim::engine::ExecWork;
    use containersim::{ContainerState, HardwareProfile, ImageId};

    fn engine() -> ContainerEngine {
        ContainerEngine::with_local_images(HardwareProfile::server())
    }

    fn cfg(image: &str) -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse(image))
    }

    fn run_request(
        pool: &mut ContainerPool,
        engine: &mut ContainerEngine,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Acquisition {
        let acq = pool.acquire(engine, config, now).unwrap();
        let out = engine
            .begin_exec(
                acq.container,
                ExecWork::light(SimDuration::from_millis(10)),
                now,
            )
            .unwrap();
        engine.end_exec(acq.container, now + out.latency).unwrap();
        pool.release(engine, acq.container, now + out.latency)
            .unwrap();
        acq
    }

    #[test]
    fn algorithm1_reuse_or_start() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("python:3.8-alpine");

        let a1 = run_request(&mut pool, &mut e, &c, SimTime::ZERO);
        assert!(a1.cold, "first request cold-starts");
        let key = pool.key_of(&c);
        assert_eq!(pool.num_avail(&key), 1);

        let a2 = run_request(&mut pool, &mut e, &c, SimTime::from_secs(1));
        assert!(!a2.cold, "second request reuses");
        assert_eq!(a2.container, a1.container);
        assert!(a2.cost.is_zero());
    }

    #[test]
    fn num_avail_bookkeeping_matches_algorithms() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        let key = pool.key_of(&c);

        let acq = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        assert_eq!(pool.num_avail(&key), 0);
        assert_eq!(pool.num_in_use(&key), 1);

        let out = e
            .begin_exec(
                acq.container,
                ExecWork::light(SimDuration::from_millis(5)),
                SimTime::ZERO,
            )
            .unwrap();
        e.end_exec(acq.container, SimTime::ZERO + out.latency)
            .unwrap();
        pool.release(&mut e, acq.container, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(pool.num_avail(&key), 1);
        assert_eq!(pool.num_in_use(&key), 0);
    }

    #[test]
    fn occupied_containers_trigger_new_start() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        // Acquire twice without releasing: both cold, two containers.
        let a1 = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        let a2 = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        assert!(a1.cold && a2.cold);
        assert_ne!(a1.container, a2.container);
        assert_eq!(pool.total_live(), 2);
    }

    #[test]
    fn different_types_never_share() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        run_request(&mut pool, &mut e, &cfg("python:3.8-alpine"), SimTime::ZERO);
        let b = run_request(
            &mut pool,
            &mut e,
            &cfg("golang:1.13"),
            SimTime::from_secs(1),
        );
        assert!(b.cold, "different image must not reuse python runtime");
    }

    #[test]
    fn exact_policy_rejects_env_mismatch_fuzzy_accepts() {
        let base = cfg("python:3.8-alpine");
        let with_env = base
            .clone()
            .with_exec(ExecOptions::default().with_env("MODE", "fast"));

        // Exact: env difference ⇒ cold.
        let mut e = engine();
        let mut exact = ContainerPool::new(KeyPolicy::Exact);
        run_request(&mut exact, &mut e, &base, SimTime::ZERO);
        let a = run_request(&mut exact, &mut e, &with_env, SimTime::from_secs(1));
        assert!(a.cold);

        // Fuzzy: same image+network ⇒ reuse with a reconfig cost.
        let mut e2 = engine();
        let mut fuzzy = ContainerPool::new(KeyPolicy::Fuzzy);
        run_request(&mut fuzzy, &mut e2, &base, SimTime::ZERO);
        let b = fuzzy
            .acquire(&mut e2, &with_env, SimTime::from_secs(1))
            .unwrap();
        assert!(!b.cold);
        assert_eq!(b.cost, FUZZY_RECONFIG_COST);
    }

    #[test]
    fn prewarm_makes_next_request_warm() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("openjdk:8-jre");
        let cost = pool.prewarm(&mut e, &c, SimTime::ZERO).unwrap();
        assert!(!cost.is_zero());
        let acq = pool.acquire(&mut e, &c, SimTime::from_secs(1)).unwrap();
        assert!(!acq.cold, "prewarmed container serves the request");
    }

    #[test]
    fn retire_and_evict() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        let key = pool.key_of(&c);
        for i in 0..3 {
            pool.prewarm(&mut e, &c, SimTime::from_secs(i)).unwrap();
        }
        assert_eq!(pool.num_avail(&key), 3);

        let retired = pool
            .retire_one(&mut e, &key, SimTime::from_secs(10))
            .unwrap();
        assert!(retired.is_some());
        assert_eq!(pool.num_avail(&key), 2);
        assert_eq!(e.live_count(), 2);

        // Eviction removes the *oldest* (created at t=1 after the retire
        // popped the t=0 one from the FIFO front).
        let ids = e.live_ids_oldest_first();
        pool.evict_oldest(&mut e, SimTime::from_secs(11)).unwrap();
        assert_eq!(e.state(ids[0]), ContainerState::Removed);
        assert_eq!(pool.num_avail(&key), 1);
    }

    #[test]
    fn evict_on_empty_pool_is_none() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        assert!(pool.evict_oldest(&mut e, SimTime::ZERO).unwrap().is_none());
        let key = pool.key_of(&cfg("alpine:3.12"));
        assert!(pool
            .retire_one(&mut e, &key, SimTime::ZERO)
            .unwrap()
            .is_none());
    }

    #[test]
    fn pool_codes_match_fig7() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");

        let acq = pool.acquire(&mut e, &c, SimTime::ZERO).unwrap();
        // In use ⇒ Existing-Not-Available (0).
        assert_eq!(pool.pool_code(&e, acq.container), 0);

        let out = e
            .begin_exec(
                acq.container,
                ExecWork::light(SimDuration::from_millis(5)),
                SimTime::ZERO,
            )
            .unwrap();
        e.end_exec(acq.container, SimTime::ZERO + out.latency)
            .unwrap();
        pool.release(&mut e, acq.container, SimTime::from_secs(1))
            .unwrap();
        // Available ⇒ 1.
        assert_eq!(pool.pool_code(&e, acq.container), 1);

        let key = pool.key_of(&c);
        pool.retire_one(&mut e, &key, SimTime::from_secs(2))
            .unwrap();
        // Gone ⇒ -1.
        assert_eq!(pool.pool_code(&e, acq.container), -1);
    }

    #[test]
    fn demand_snapshot_reports_watermark_and_resets() {
        let mut e = engine();
        let mut pool = ContainerPool::new(KeyPolicy::Exact);
        let c = cfg("alpine:3.12");
        // Three concurrent acquisitions.
        let acqs: Vec<_> = (0..3)
            .map(|_| pool.acquire(&mut e, &c, SimTime::ZERO).unwrap())
            .collect();
        for acq in &acqs {
            let out = e
                .begin_exec(
                    acq.container,
                    ExecWork::light(SimDuration::from_millis(5)),
                    SimTime::ZERO,
                )
                .unwrap();
            e.end_exec(acq.container, SimTime::ZERO + out.latency)
                .unwrap();
            pool.release(&mut e, acq.container, SimTime::from_secs(1))
                .unwrap();
        }
        let snap = pool.take_demand_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1, 3, "watermark saw 3 concurrent");
        // After reset with nothing in use, next snapshot reports 0.
        let snap2 = pool.take_demand_snapshot();
        assert_eq!(snap2[0].1, 0);
    }

    /// Pool invariant: total_live equals the engine's live count under
    /// any interleaving of acquire/release/prewarm/retire/evict, and all
    /// available containers are Idle in the engine.
    #[test]
    fn prop_pool_engine_consistency() {
        testkit::check(64, |g| {
            let ops = g.vec(1..60, |g| g.u8_in(0..5));
            let mut e = engine();
            let mut pool = ContainerPool::new(KeyPolicy::Exact);
            let configs = [cfg("alpine:3.12"), cfg("python:3.8-alpine")];
            let mut busy: Vec<ContainerId> = Vec::new();
            for (i, &op) in ops.iter().enumerate() {
                let now = SimTime::from_secs(i as u64);
                let c = &configs[i % 2];
                match op {
                    0 => {
                        let acq = pool.acquire(&mut e, c, now).unwrap();
                        let out = e
                            .begin_exec(
                                acq.container,
                                ExecWork::light(SimDuration::from_millis(1)),
                                now,
                            )
                            .unwrap();
                        e.end_exec(acq.container, now + out.latency).unwrap();
                        busy.push(acq.container);
                    }
                    1 => {
                        if let Some(id) = busy.pop() {
                            pool.release(&mut e, id, now).unwrap();
                        }
                    }
                    2 => {
                        pool.prewarm(&mut e, c, now).unwrap();
                    }
                    3 => {
                        let key = pool.key_of(c);
                        pool.retire_one(&mut e, &key, now).unwrap();
                    }
                    _ => {
                        pool.evict_oldest(&mut e, now).unwrap();
                    }
                }
                assert_eq!(pool.total_live(), e.live_count());
                // Every available container is idle and clean in the engine.
                for key in pool.keys() {
                    for _ in 0..pool.num_avail(&key) {} // lengths checked below
                }
                assert_eq!(pool.total_available() + busy.len(), e.live_count());
            }
        });
    }
}
