//! A loom-style bounded model checker for the lock-free slot protocol.
//!
//! This module is always compiled (it is plain safe std), but it only takes
//! over the workspace's protocol atomics when the workspace is built with
//! `RUSTFLAGS='--cfg hotc_model'`: the [`crate::atomic`] facade then aliases
//! `ShimAtomicU64` & co to the model types here instead of re-exporting
//! `std::sync::atomic`. The `hotc-model` crate re-exports this API and
//! hosts the protocol test-suite; see DESIGN.md §7.3 for the architecture
//! and EXPERIMENTS.md for explored-schedule counts.
//!
//! The pieces:
//!
//! * [`Checker`] — DFS over thread interleavings with a preemption bound,
//!   sleep-set pruning, and a schedule budget; re-executes the checked
//!   closure once per schedule and replays violations as numbered traces.
//! * [`ModelAtomicU64`] / [`ModelAtomicUsize`] / [`ModelOnceLock`] —
//!   instrumented atomics; every operation is a schedule point against a
//!   weak-memory store model where relaxed loads may legally return stale
//!   values (so `Release`/`Acquire` mistakes reproduce on x86 hosts).
//! * [`spawn`] / [`JoinHandle`] — virtual threads with vector-clock
//!   inheritance and join edges.
//!
//! What this does **not** prove: it is a bug finder, not a verifier — the
//! preemption bound and sleep sets prune schedules, `SeqCst` is modelled as
//! `AcqRel` + read-newest (no global SC order), failed CAS reads the newest
//! store, fences are not modelled, and `compare_exchange_weak` never fails
//! spuriously. A clean report means "no violation within the explored
//! bound", nothing stronger.

mod atomic;
mod clock;
mod explore;
mod mem;
mod rt;
mod thread;

pub use atomic::{ModelAtomicU64, ModelAtomicUsize, ModelOnceLock};
pub use clock::VClock;
pub use explore::{Checker, Report, Violation};
pub use rt::{NodeKind, NodeRec};
pub use thread::{spawn, JoinHandle};
