//! Determinism: every experiment is a pure function of its seed — the whole
//! point of the virtual-time substrate.

use hotc_bench::experiments as exp;
use hotc_bench::run_workload;

#[test]
fn fig9_identical_across_runs() {
    let a = exp::fig9::run(30, 123);
    let b = exp::fig9::run(30, 123);
    assert_eq!(a.default_latencies, b.default_latencies);
    assert_eq!(a.hotc_latencies, b.hotc_latencies);
    let c = exp::fig9::run(30, 124);
    assert_ne!(
        a.hotc_latencies, c.hotc_latencies,
        "different seed must change the workload"
    );
}

#[test]
fn fig10_series_and_predictions_reproducible() {
    let a = exp::fig10::run(5);
    let b = exp::fig10::run(5);
    assert_eq!(a.series, b.series);
    for (sa, sb) in a.strategies.iter().zip(&b.strategies) {
        assert_eq!(sa.predictions, sb.predictions);
    }
}

#[test]
fn trace_replay_reproducible() {
    use containersim::{ContainerEngine, HardwareProfile};
    use faas::{AppProfile, Gateway};
    use hotc::HotC;
    use simclock::SimDuration;
    use workloads::youtube::{expand_to_arrivals, youtube_trace, YoutubeTraceParams};

    let params = YoutubeTraceParams {
        length: 144,
        seed: 3,
        ..Default::default()
    };
    let rates: Vec<f64> = youtube_trace(&params).iter().map(|r| r / 20.0).collect();
    let workload = expand_to_arrivals(&rates, SimDuration::from_secs(600), 0, 3);

    let run = || {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, HotC::with_defaults());
        gw.register_app(AppProfile::random_number());
        let out = run_workload(
            gw,
            &workload,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        (out.latencies(), out.cold_fraction())
    };
    assert_eq!(run(), run());
}

#[test]
fn renders_are_stable() {
    // The rendered text (what EXPERIMENTS.md quotes) is reproducible too.
    assert_eq!(
        exp::fig2::run(1000, 9).render(),
        exp::fig2::run(1000, 9).render()
    );
    assert_eq!(exp::fig4::run().render(), exp::fig4::run().render());
    assert_eq!(exp::fig5::run().render(), exp::fig5::run().render());
}
