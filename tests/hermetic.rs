//! Hermeticity guard: the workspace must stay std-only and offline-buildable.
//!
//! Parses every `Cargo.toml` in the repository and fails if any dependency is
//! not a `path` dependency into this workspace (registry version strings, git
//! deps, and crates.io table forms are all rejected). This is the executable
//! form of the policy documented in the workspace manifest: a contributor who
//! adds `serde = "1"` anywhere gets a test failure naming the exact line, not
//! a broken offline build three PRs later.
//!
//! The parser is deliberately small: it understands just the TOML subset that
//! dependency tables use (section headers, `key = "version"`,
//! `key = { ... }`, and multi-line inline tables are not used in this repo).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Keys inside a `[dependencies]`-family table entry's inline table that make
/// the dependency non-hermetic.
const FORBIDDEN_SOURCE_KEYS: [&str; 4] = ["git", "registry", "registry-index", "version"];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Finds every Cargo.toml under the repo root, skipping `target/`.
fn find_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                find_manifests(&path, out);
            }
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// True if the section header opens a dependency table, including
/// `[workspace.dependencies]` and target-specific tables.
fn is_dependency_section(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header.ends_with(".dependencies")
        || header.ends_with(".dev-dependencies")
        || header.ends_with(".build-dependencies")
}

/// Checks one dependency line; returns a violation description if the entry
/// is not a pure path dependency.
fn check_dep_line(line: &str) -> Option<String> {
    let (key, value) = line.split_once('=')?;
    let key = key.trim();
    let value = value.trim();
    if value.starts_with('"') || value.starts_with('\'') {
        return Some(format!("`{key}` uses a registry version string ({value})"));
    }
    if value.starts_with('{') {
        if !value.contains("path") && !value.contains("workspace") {
            return Some(format!("`{key}` has neither `path` nor `workspace = true`"));
        }
        for forbidden in FORBIDDEN_SOURCE_KEYS {
            // Match the key position of an inline-table entry, not substrings
            // of other keys or values.
            let mut rest = value;
            while let Some(idx) = rest.find(forbidden) {
                let before = value.len() - rest.len() + idx;
                let prev = value[..before].trim_end().chars().next_back();
                let after = rest[idx + forbidden.len()..].trim_start().chars().next();
                if matches!(prev, Some('{') | Some(',')) && after == Some('=') {
                    return Some(format!("`{key}` sets `{forbidden}` ({value})"));
                }
                rest = &rest[idx + forbidden.len()..];
            }
        }
    }
    None
}

#[test]
fn all_dependencies_are_path_only() {
    let root = workspace_root();
    let mut manifests = Vec::new();
    find_manifests(&root, &mut manifests);
    manifests.sort();
    assert!(
        manifests.len() >= 11,
        "expected the root + 10 crate manifests, found {}",
        manifests.len()
    );

    let mut violations = String::new();
    for manifest in &manifests {
        let text = std::fs::read_to_string(manifest).expect("read manifest");
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = line.trim_matches(['[', ']']).to_string();
                continue;
            }
            if is_dependency_section(&section) {
                if let Some(problem) = check_dep_line(line) {
                    writeln!(
                        violations,
                        "{}:{}: {}",
                        manifest.strip_prefix(&root).unwrap_or(manifest).display(),
                        lineno + 1,
                        problem
                    )
                    .unwrap();
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (policy: path-only workspace deps,\n\
         see the workspace Cargo.toml header comment):\n{violations}"
    );
}

#[test]
fn workspace_dependency_table_is_path_only() {
    // Belt-and-braces for the aggregated check above: the root
    // `[workspace.dependencies]` table is where a registry dep would most
    // likely be reintroduced, so verify it line by line.
    let text = std::fs::read_to_string(workspace_root().join("Cargo.toml")).expect("root manifest");
    let mut in_table = false;
    let mut entries = 0;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table && !line.is_empty() {
            assert!(
                line.contains("path"),
                "workspace dependency without a path: {line}"
            );
            entries += 1;
        }
    }
    assert!(entries >= 12, "expected 12 workspace deps, found {entries}");
}

#[test]
fn no_registry_crate_names_in_manifests() {
    // The replaced crates must never come back under any section. Checking
    // names (not just sources) catches e.g. a future `[dependencies.serde]`
    // table form the line parser above would classify differently.
    let replaced = [
        "rand",
        "proptest",
        "criterion",
        "crossbeam",
        "parking_lot",
        "bytes",
        "serde",
    ];
    let root = workspace_root();
    let mut manifests = Vec::new();
    find_manifests(&root, &mut manifests);
    for manifest in &manifests {
        let text = std::fs::read_to_string(manifest).expect("read manifest");
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            for name in replaced {
                assert!(
                    !(line.starts_with(&format!("{name} "))
                        || line.starts_with(&format!("{name}="))
                        || line.starts_with(&format!("[dependencies.{name}"))
                        || line.starts_with(&format!("[dev-dependencies.{name}"))),
                    "{}: replaced registry crate `{name}` reappeared: {line}",
                    manifest.display()
                );
            }
        }
    }
}
