//! The six-timestamp request path of §III-A.

use simclock::{SimDuration, SimTime};

/// Virtual cost of the gateway proxying a request or response one hop
/// (client↔gateway↔backend forwarding, queueing, header parsing).
pub const GATEWAY_HOP: SimDuration = SimDuration::from_micros(1500);

/// Virtual cost of the watchdog shim on each direction (HTTP parse, pipe to
/// the function process stdin / read from stdout).
pub const WATCHDOG_HOP: SimDuration = SimDuration::from_micros(800);

/// The six moments the paper records along a request's path, plus outcome
/// metadata. All instants are on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTrace {
    /// (1) request packet arrives at the gateway.
    pub t1_gateway_in: SimTime,
    /// (2) request packet reaches the watchdog.
    pub t2_watchdog_in: SimTime,
    /// (3) the function process starts.
    pub t3_func_start: SimTime,
    /// (4) the function process stops.
    pub t4_func_end: SimTime,
    /// (5) the response packet leaves the watchdog.
    pub t5_watchdog_out: SimTime,
    /// (6) the client receives the response from the gateway.
    pub t6_gateway_out: SimTime,
    /// Whether serving this request required a container cold start.
    pub cold: bool,
    /// Whether this was the first execution inside its container.
    pub first_exec: bool,
    /// Whether the function process crashed (the client received an error
    /// response at `t6`; the container was disposed of).
    pub failed: bool,
}

impl RequestTrace {
    /// End-to-end request latency (1→6).
    pub fn total(&self) -> SimDuration {
        self.t6_gateway_out - self.t1_gateway_in
    }

    /// Function initiation segment (2→3): watchdog shim plus *obtaining the
    /// runtime* — the segment the paper finds dominating cold latency.
    pub fn initiation(&self) -> SimDuration {
        self.t3_func_start - self.t2_watchdog_in
    }

    /// Function execution segment (3→4).
    pub fn execution(&self) -> SimDuration {
        self.t4_func_end - self.t3_func_start
    }

    /// Network/proxy forwarding total: (1→2) + (4→5) + (5→6).
    pub fn forwarding(&self) -> SimDuration {
        (self.t2_watchdog_in - self.t1_gateway_in)
            + (self.t5_watchdog_out - self.t4_func_end)
            + (self.t6_gateway_out - self.t5_watchdog_out)
    }

    /// Sanity: timestamps are monotone along the path.
    pub fn is_well_formed(&self) -> bool {
        self.t1_gateway_in <= self.t2_watchdog_in
            && self.t2_watchdog_in <= self.t3_func_start
            && self.t3_func_start <= self.t4_func_end
            && self.t4_func_end <= self.t5_watchdog_out
            && self.t5_watchdog_out <= self.t6_gateway_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(offsets_ms: [u64; 6]) -> RequestTrace {
        let t = |ms| SimTime::from_millis(ms);
        RequestTrace {
            t1_gateway_in: t(offsets_ms[0]),
            t2_watchdog_in: t(offsets_ms[1]),
            t3_func_start: t(offsets_ms[2]),
            t4_func_end: t(offsets_ms[3]),
            t5_watchdog_out: t(offsets_ms[4]),
            t6_gateway_out: t(offsets_ms[5]),
            cold: false,
            first_exec: false,
            failed: false,
        }
    }

    #[test]
    fn segment_arithmetic() {
        let tr = trace([0, 2, 800, 860, 862, 864]);
        assert_eq!(tr.total().as_millis(), 864);
        assert_eq!(tr.initiation().as_millis(), 798);
        assert_eq!(tr.execution().as_millis(), 60);
        assert_eq!(tr.forwarding().as_millis(), 6);
        assert!(tr.is_well_formed());
        // Segments partition the total.
        assert_eq!(
            (tr.initiation() + tr.execution() + tr.forwarding()).as_millis(),
            tr.total().as_millis()
        );
    }

    #[test]
    fn malformed_detected() {
        let tr = trace([10, 5, 20, 30, 40, 50]);
        assert!(!tr.is_well_formed());
    }
}
