//! The paper's combined predictor: exponential smoothing + Markov chain.
//!
//! §IV-C: the Markov chain "predicts the results through the transition
//! probability between states and can better compensate for limitations in
//! the prediction process of exponential smoothing", while "the exponential
//! smoothing method can fit the available container data to find out its
//! changing trend, which can rectify the limitations of the Markov chain
//! prediction process".
//!
//! [`EsMarkov`] implements that division of labour directly:
//!
//! 1. A region partition is maintained over a sliding window of the demand
//!    series, and an Eq. 2 Markov chain is trained on the region sequence.
//! 2. At prediction time the chain picks the most probable *next region*
//!    from the current one; Eq. 1 exponential smoothing provides the trend
//!    value, which is **clamped into the predicted region's bounds** — the
//!    region supplies robustness to volatility, the trend supplies precision
//!    within the region (the paper's "predicted value is the midpoint" is
//!    the special case where the trend lies outside the region entirely;
//!    clamping to the nearer bound tightens it without changing the region
//!    decision).
//! 3. When the chain has never been observed leaving the current region
//!    (first-time regime shift), there is no evidence to correct with and
//!    the predictor falls back to pure exponential smoothing.
//!
//! On recurring patterns (the situation of Fig. 10(a), where the demand for
//! a runtime type jumps 8 → 19 and the chain has seen such transitions), the
//! correction pulls the lagging smoother into the right region, reproducing
//! the reported relative-error drop from ≈29 % to ≈10 %.

use crate::markov::{MarkovChain, RegionPartition};
use crate::smoothing::{ExponentialSmoothing, InitialValue};
use crate::Predictor;

use std::collections::VecDeque;
use stdshim::{JsonValue, ToJson};

/// Exponential smoothing with a Markov-chain region correction.
///
/// ```
/// use predictor::{EsMarkov, Predictor};
///
/// let mut p = EsMarkov::paper_default(); // α = 0.8
/// for demand in [8.0, 8.0, 9.0, 8.0, 8.0, 8.0] {
///     p.observe(demand);
/// }
/// let next = p.predict();
/// assert!((7.0..9.5).contains(&next), "{next}");
/// ```
#[derive(Debug, Clone)]
pub struct EsMarkov {
    es: ExponentialSmoothing,
    /// Sliding window of raw observations used to (re)build the partition.
    window: VecDeque<f64>,
    /// Window capacity.
    window_cap: usize,
    /// Number of demand regions.
    regions: usize,
    /// Chain over the windowed demand regions, rebuilt as the range drifts.
    chain: MarkovChain,
    observations: usize,
}

impl EsMarkov {
    /// Creates the combined predictor with the given smoothing coefficient,
    /// a 6-region partition, and a 256-sample window.
    pub fn new(alpha: f64) -> Self {
        Self::with_params(alpha, InitialValue::default(), 6, 256)
    }

    /// Full-control constructor (used by the sensitivity experiments).
    pub fn with_params(alpha: f64, init: InitialValue, regions: usize, window_cap: usize) -> Self {
        assert!(regions >= 1, "need at least one region");
        assert!(window_cap >= 2, "window must hold at least two samples");
        EsMarkov {
            es: ExponentialSmoothing::with_init(alpha, init),
            window: VecDeque::with_capacity(window_cap),
            window_cap,
            regions,
            chain: MarkovChain::new(RegionPartition::new(0.0, 1.0, regions)),
            observations: 0,
        }
    }

    /// Creates the combined predictor with an explicit seeding strategy.
    pub fn with_init(alpha: f64, init: InitialValue) -> Self {
        Self::with_params(alpha, init, 6, 256)
    }

    /// The paper's configuration (α = 0.8).
    pub fn paper_default() -> Self {
        Self::new(0.8)
    }

    /// The underlying smoother (for the Fig. 10 strategy comparison).
    pub fn smoother(&self) -> &ExponentialSmoothing {
        &self.es
    }

    /// The demand-region chain (for diagnostics).
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Rebuilds the chain from the current window. The window is small (the
    /// control loop runs at coarse intervals), so a full rebuild per
    /// observation is cheap and keeps the partition aligned with the range.
    fn rebuild_chain(&mut self) {
        let history: Vec<f64> = self.window.iter().copied().collect();
        self.chain = MarkovChain::fit(&history, self.regions);
    }
}

impl Predictor for EsMarkov {
    fn observe(&mut self, value: f64) {
        self.observations += 1;
        self.es.observe(value);
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(value);
        self.rebuild_chain();
    }

    fn predict(&self) -> f64 {
        let trend = self.es.predict();
        let Some(cur) = self.chain.current_state() else {
            return trend.max(0.0);
        };
        if !self.chain.has_outgoing(cur) {
            // No evidence of where demand goes from here: trust the trend.
            return trend.max(0.0);
        }
        // `current_state` exists (checked above), so `predict_state` does
        // too — but degrade to the bare trend rather than panicking.
        let Some(next) = self.chain.predict_state() else {
            return trend.max(0.0);
        };
        let (lo, hi) = self.chain.partition().bounds(next);
        trend.clamp(lo, hi).max(0.0)
    }

    fn name(&self) -> &'static str {
        "es+markov"
    }

    fn observations(&self) -> usize {
        self.observations
    }
}

impl ToJson for EsMarkov {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("model", self.name().to_json()),
            ("alpha", self.es.alpha().to_json()),
            ("regions", self.regions.to_json()),
            ("window", self.window_cap.to_json()),
            ("observations", self.observations().to_json()),
            ("prediction", self.predict().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::mape;
    use crate::one_step_ahead;

    /// The paper's Fig. 10(a) scenario: stable demand around 8, then a jump
    /// to 19 with mild jitter.
    fn fig10_series() -> Vec<f64> {
        let mut s = Vec::new();
        for i in 0..12 {
            s.push(8.0 + (i % 3) as f64 - 1.0); // 7..9
        }
        for i in 0..12 {
            s.push(19.0 + (i % 3) as f64 - 1.0); // 18..20
        }
        s
    }

    #[test]
    fn constant_series_exact() {
        let mut p = EsMarkov::paper_default();
        for _ in 0..30 {
            p.observe(5.0);
        }
        assert!((p.predict() - 5.0).abs() < 0.5);
    }

    #[test]
    fn combined_beats_es_on_volatile_series() {
        // A sawtooth the smoother chronically lags on; the chain learns the
        // alternation exactly.
        let series: Vec<f64> = (0..60)
            .map(|i| if i % 2 == 0 { 4.0 } else { 16.0 })
            .collect();
        let mut es = ExponentialSmoothing::paper_default();
        let mut combo = EsMarkov::paper_default();
        let es_preds = one_step_ahead(&mut es, &series);
        let combo_preds = one_step_ahead(&mut combo, &series);
        let actual = &series[1..];
        let es_err = mape(&es_preds, actual);
        let combo_err = mape(&combo_preds, actual);
        assert!(
            combo_err < es_err * 0.7,
            "combined {combo_err:.3} should clearly beat ES {es_err:.3}"
        );
    }

    #[test]
    fn combined_no_worse_on_fig10_jump() {
        let series = fig10_series();
        let mut es = ExponentialSmoothing::paper_default();
        let mut combo = EsMarkov::paper_default();
        let es_preds = one_step_ahead(&mut es, &series);
        let combo_preds = one_step_ahead(&mut combo, &series);
        let actual = &series[1..];
        let es_err = mape(&es_preds, actual);
        let combo_err = mape(&combo_preds, actual);
        assert!(
            combo_err <= es_err * 1.05,
            "combined {combo_err:.3} vs ES {es_err:.3}"
        );
    }

    #[test]
    fn recurring_jump_is_anticipated() {
        // Two full cycles of the 8 → 19 pattern; during the second cycle the
        // chain has seen the regime transitions and corrects the lag.
        let mut series = fig10_series();
        series.extend(fig10_series());
        let mut es = ExponentialSmoothing::paper_default();
        let mut combo = EsMarkov::paper_default();
        let es_preds = one_step_ahead(&mut es, &series);
        let combo_preds = one_step_ahead(&mut combo, &series);
        // Evaluate only the second cycle.
        let half = series.len() / 2;
        let es_err = mape(&es_preds[half..], &series[half + 1..]);
        let combo_err = mape(&combo_preds[half..], &series[half + 1..]);
        assert!(
            combo_err <= es_err,
            "on recurring patterns combined {combo_err:.3} should not trail ES {es_err:.3}"
        );
    }

    #[test]
    fn never_predicts_negative() {
        let mut p = EsMarkov::paper_default();
        for x in [10.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0] {
            p.observe(x);
            assert!(p.predict() >= 0.0);
        }
    }

    #[test]
    fn before_observations_predicts_zero() {
        let p = EsMarkov::paper_default();
        assert_eq!(p.predict(), 0.0);
    }

    #[test]
    fn tracks_observation_count() {
        let mut p = EsMarkov::paper_default();
        for i in 0..7 {
            p.observe(i as f64);
        }
        assert_eq!(p.observations(), 7);
    }

    #[test]
    fn window_caps_history() {
        let mut p = EsMarkov::with_params(0.8, InitialValue::FirstObservation, 4, 8);
        for i in 0..100 {
            p.observe(i as f64);
        }
        // Partition spans only the window (92..99), not the full history.
        let (lo, _) = p.chain().partition().bounds(0);
        assert!(lo >= 92.0 - 1e-9, "partition lo = {lo}");
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn zero_regions_rejected() {
        let _ = EsMarkov::with_params(0.5, InitialValue::FirstObservation, 0, 16);
    }
}
