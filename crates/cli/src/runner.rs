//! Builds and runs a parsed [`Scenario`], producing a [`ScenarioReport`].

use crate::scenario::{FunctionDecl, ProviderSpec, Scenario, WorkloadSpec};
use containersim::{ContainerConfig, ContainerEngine, LanguageRuntime};
use faas::gateway::Gateway;
use faas::{
    AppProfile, ColdStartAlways, FixedKeepAlive, FunctionSpec, HybridKeepAlive, PeriodicWarmup,
    RequestTrace, RuntimeProvider,
};
use hotc::{HotC, HotCConfig, KeyPolicy, PoolLimits, RuntimeKey};
use hotc_bench::{run_partitioned, run_trace, run_trace_partition, run_workload};
use metrics_lite::{LatencyHistogram, MetricsRegistry, MetricsSnapshot, Table};
use simclock::SimDuration;
use std::collections::HashMap;
use std::sync::Arc;
use workloads::patterns::Direction;
use workloads::trace::{
    self as wtrace, ConfigModulo, OpenDcTrace, PartitionTrace, SynthShape, SynthSpec, Trace,
};
use workloads::youtube::{youtube_trace, YoutubeTraceParams};
use workloads::Arrival;

/// Per-request latency detail is kept exactly (for the verbose series and
/// exact percentiles) up to this many requests; past it the aggregator
/// switches to a constant-footprint histogram so a 1e8-request replay does
/// not hold 1e8 samples.
pub const LATENCY_DETAIL_CAP: usize = 1 << 20;

/// The outcome of a scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Requests served.
    pub requests: usize,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// p99 latency (ms).
    pub p99_ms: f64,
    /// Fraction of requests that cold-started.
    pub cold_fraction: f64,
    /// Fraction of requests that failed (fault injection).
    pub failed_fraction: f64,
    /// Live containers at the end of the run.
    pub live_at_end: usize,
    /// Provider background work (virtual seconds).
    pub background_s: f64,
    /// Per-request latencies (ms), arrival order.
    pub latencies_ms: Vec<f64>,
    /// Full telemetry snapshot taken at the end of the run (counters,
    /// stage histograms, pool series) — exported by `--metrics-out`.
    pub metrics: metrics_lite::MetricsSnapshot,
    /// Set by the parallel driver when per-worker pool-limit enforcement
    /// actually evicted containers — the one case where a partitioned replay
    /// approximates (rather than reproduces) the sequential run. Always
    /// `false` for sequential runs and for parallel runs whose pool never
    /// hit its limits.
    pub limits_coupled: bool,
}

impl ScenarioReport {
    /// Renders the report as text tables.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        if verbose && !self.latencies_ms.is_empty() {
            let labels: Vec<String> = (0..self.latencies_ms.len())
                .map(|i| format!("r{i:03}"))
                .collect();
            out.push_str(&metrics_lite::render_series(
                "per-request latency (ms)",
                &labels,
                &self.latencies_ms,
                48,
            ));
            out.push('\n');
        }
        let mut table = Table::new(
            "scenario summary",
            &[
                "requests",
                "mean_ms",
                "p50_ms",
                "p99_ms",
                "cold_frac",
                "failed_frac",
                "live_at_end",
                "background_s",
            ],
        );
        table.row(&[
            self.requests.to_string(),
            format!("{:.1}", self.mean_ms),
            format!("{:.1}", self.p50_ms),
            format!("{:.1}", self.p99_ms),
            format!("{:.3}", self.cold_fraction),
            format!("{:.3}", self.failed_fraction),
            self.live_at_end.to_string(),
            format!("{:.2}", self.background_s),
        ]);
        out.push_str(&table.render());
        out
    }
}

fn build_app(decl: &FunctionDecl) -> Result<AppProfile, String> {
    Ok(match decl.app.as_str() {
        "random-number" => AppProfile::random_number(),
        "qr-code" => AppProfile::qr_code(decl.lang),
        "s3-download" => AppProfile::s3_download(decl.lang),
        "v3-app" => AppProfile::v3_app(),
        "tf-api-app" => AppProfile::tf_api_app(),
        "cassandra" => AppProfile::cassandra(),
        other => return Err(format!("unknown app '{other}'")),
    })
}

/// Builds the pull-based arrival stream for a workload spec.
///
/// `slots` is the number of registered function slots (declared functions ×
/// replicas) the arrivals will be routed over; generators that pick functions
/// themselves (poisson, azure) spread across all of them.
pub fn build_trace(spec: &WorkloadSpec, slots: usize, seed: u64) -> Result<Box<dyn Trace>, String> {
    let slots = slots.max(1);
    let direction = |increasing: bool| {
        if increasing {
            Direction::Increasing
        } else {
            Direction::Decreasing
        }
    };
    Ok(match spec {
        WorkloadSpec::Serial { count, interval } => {
            Box::new(wtrace::serial_trace(*interval, *count, 0))
        }
        WorkloadSpec::Parallel {
            threads,
            per_thread,
            interval,
        } => Box::new(wtrace::parallel_trace(*threads, *per_thread, *interval)),
        WorkloadSpec::Linear {
            increasing,
            start,
            step,
            rounds,
            round,
        } => Box::new(wtrace::linear_ramp_trace(
            direction(*increasing),
            *start,
            *step,
            *rounds,
            *round,
            0,
        )),
        WorkloadSpec::Exponential {
            increasing,
            rounds,
            round,
        } => Box::new(wtrace::exponential_ramp_trace(
            direction(*increasing),
            *rounds,
            *round,
            0,
        )),
        WorkloadSpec::Burst {
            base,
            factor,
            burst_at,
            rounds,
            round,
        } => Box::new(wtrace::burst_trace(
            *base,
            *factor,
            burst_at.clone(),
            *rounds,
            *round,
            0,
        )),
        WorkloadSpec::Poisson {
            rate,
            duration,
            zipf,
        } => Box::new(wtrace::poisson_trace(*rate, *duration, slots, *zipf, seed)),
        WorkloadSpec::Azure {
            functions: population,
            duration,
        } => {
            let params = workloads::azure::AzureWorkloadParams {
                functions: *population,
                duration: *duration,
                seed,
                ..Default::default()
            };
            // Cycle the synthetic population onto the registered slots.
            let (merged, _) = wtrace::azure_trace(&params);
            Box::new(ConfigModulo::new(merged, slots))
        }
        WorkloadSpec::Youtube {
            scale,
            index,
            length,
        } => {
            let params = YoutubeTraceParams {
                length: *length,
                seed,
                ..Default::default()
            };
            let rates: Vec<f64> = youtube_trace(&params)
                .into_iter()
                .map(|r| r / scale.max(1e-9))
                .collect();
            Box::new(wtrace::youtube_arrivals_trace(rates, *index, 0, seed))
        }
        WorkloadSpec::Synth {
            requests,
            keys,
            duration,
            zipf,
            peak,
        } => {
            let shape = if *peak <= 1.0 {
                SynthShape::Flat
            } else {
                SynthShape::Diurnal {
                    peak_to_trough: *peak,
                }
            };
            Box::new(wtrace::synth_trace(&SynthSpec {
                requests: *requests,
                keys: *keys,
                duration: *duration,
                zipf_exponent: *zipf,
                seed,
                shape,
                key_offset: 0,
            }))
        }
        WorkloadSpec::FlashCrowd {
            requests,
            keys,
            duration,
            zipf,
            peak,
            at,
            width,
            magnitude,
        } => Box::new(wtrace::synth_trace(&SynthSpec {
            requests: *requests,
            keys: *keys,
            duration: *duration,
            zipf_exponent: *zipf,
            seed,
            shape: SynthShape::FlashCrowd {
                peak_to_trough: *peak,
                at: *at,
                width: *width,
                magnitude: *magnitude,
            },
            key_offset: 0,
        })),
        WorkloadSpec::DeployWaves {
            requests,
            keys,
            duration,
            zipf,
            waves,
            window,
        } => Box::new(wtrace::synth_trace(&SynthSpec {
            requests: *requests,
            keys: *keys,
            duration: *duration,
            zipf_exponent: *zipf,
            seed,
            shape: SynthShape::DeployWaves {
                waves: *waves,
                window: *window,
            },
            key_offset: 0,
        })),
        WorkloadSpec::MultiTenant {
            tenants,
            requests,
            keys,
            duration,
            zipf,
        } => Box::new(wtrace::multi_tenant_trace(
            *tenants,
            &SynthSpec {
                requests: *requests,
                keys: *keys,
                duration: *duration,
                zipf_exponent: *zipf,
                seed,
                shape: SynthShape::Flat,
                key_offset: 0,
            },
        )),
        WorkloadSpec::AzureCsv { path, interval } => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open trace '{path}': {e}"))?;
            let (merged, _names) =
                wtrace::azure_csv_trace(std::io::BufReader::new(file), *interval)
                    .map_err(|e| format!("{path}: {e}"))?;
            Box::new(merged)
        }
        WorkloadSpec::OpenDc { path } => {
            let file = std::fs::File::open(path)
                .map_err(|e| format!("cannot open trace '{path}': {e}"))?;
            Box::new(OpenDcTrace::new(std::io::BufReader::new(file)))
        }
    })
}

/// Streaming report builder: O(1) per request, bounded memory.
///
/// Up to [`LATENCY_DETAIL_CAP`] requests it also keeps exact per-request
/// samples for the verbose series; past the cap it drops the series and
/// keeps only the constant-footprint histogram. Quantiles always come from
/// the histogram, below and above the cap alike, so the reported p50/p99 are
/// continuous across the switchover (one estimator, no discontinuity at
/// request `LATENCY_DETAIL_CAP`).
struct ReportAggregator {
    hist: LatencyHistogram,
    detail: Vec<(u64, f64)>,
    detailed: bool,
    total_ns: u128,
    count: u64,
    failed: u64,
    cold: u64,
}

impl ReportAggregator {
    fn new() -> ReportAggregator {
        ReportAggregator {
            hist: LatencyHistogram::new(),
            detail: Vec::new(),
            detailed: true,
            total_ns: 0,
            count: 0,
            failed: 0,
            cold: 0,
        }
    }

    fn observe(&mut self, seq: u64, t: &RequestTrace) {
        let total = t.total();
        self.count += 1;
        self.total_ns += total.as_nanos() as u128;
        self.hist.record(total);
        if t.failed {
            self.failed += 1;
        }
        if t.cold {
            self.cold += 1;
        }
        if self.detailed {
            if self.detail.len() == LATENCY_DETAIL_CAP {
                self.detailed = false;
                self.detail = Vec::new();
            } else {
                self.detail.push((seq, total.as_millis_f64()));
            }
        }
    }

    /// Folds another worker's aggregate into this one. Tallies and histogram
    /// buckets add; the exact detail survives only if every input kept it
    /// AND the merged total is still within the cap — the same rule a single
    /// sequential aggregator applies to the combined stream.
    fn merge(&mut self, other: ReportAggregator) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.failed += other.failed;
        self.cold += other.cold;
        self.hist.merge(&other.hist);
        if self.detailed
            && other.detailed
            && self.detail.len() + other.detail.len() <= LATENCY_DETAIL_CAP
        {
            self.detail.extend(other.detail);
        } else {
            self.detailed = false;
            self.detail = Vec::new();
        }
    }

    fn finish(
        mut self,
        live_at_end: usize,
        background: SimDuration,
        metrics: MetricsSnapshot,
    ) -> ScenarioReport {
        let count = self.count.max(1) as f64;
        let mean_ns = (self.total_ns / self.count.max(1) as u128) as u64;
        let (p50, p99) = if self.count == 0 {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            (self.hist.quantile(0.5), self.hist.quantile(0.99))
        };
        // Finishes arrive in completion order; the report series is in
        // arrival order (global sequence numbers, so a merged parallel run
        // sorts into the same order as the sequential one).
        self.detail.sort_by_key(|(seq, _)| *seq);
        ScenarioReport {
            requests: self.count as usize,
            mean_ms: SimDuration::from_nanos(mean_ns).as_millis_f64(),
            p50_ms: p50.as_millis_f64(),
            p99_ms: p99.as_millis_f64(),
            cold_fraction: self.cold as f64 / count,
            failed_fraction: self.failed as f64 / count,
            live_at_end,
            background_s: background.as_secs_f64(),
            latencies_ms: self.detail.into_iter().map(|(_, ms)| ms).collect(),
            metrics,
            limits_coupled: false,
        }
    }
}

/// Completes a single-gateway run: reads end-of-run state off the gateway
/// and folds it into the report.
fn finish_report<P: RuntimeProvider>(
    agg: ReportAggregator,
    gateway: &Gateway<P>,
) -> ScenarioReport {
    agg.finish(
        gateway.engine().live_count(),
        gateway.provider().background_cost(),
        gateway.metrics().snapshot(),
    )
}

/// One registered function slot: the route name, the app profile behind it,
/// and the fully resolved container configuration. Slot index == the
/// `config_id % slots` routing index used by every driver.
struct SlotSpec {
    name: String,
    app: AppProfile,
    config: ContainerConfig,
}

/// Expands the scenario's function declarations (× replicas) into the flat
/// slot list all gateways are registered from.
fn slot_specs(scenario: &Scenario) -> Result<Vec<SlotSpec>, String> {
    let mut slots = Vec::new();
    for decl in &scenario.functions {
        let app = build_app(decl)?;
        for i in 0..decl.replicas {
            let name = if decl.replicas == 1 {
                decl.name.clone()
            } else {
                format!("{}#{i}", decl.name)
            };
            let mut config = app.config_with_network(decl.network);
            for (k, v) in &decl.env {
                config.exec.env.insert(k.clone(), v.clone());
            }
            if decl.replicas > 1 {
                // Distinct env per replica ⇒ distinct runtime key: replicas
                // are how a scenario scales to 10k+ keys.
                config
                    .exec
                    .env
                    .insert("HOTC_REPLICA".to_string(), i.to_string());
            }
            slots.push(SlotSpec {
                name,
                app: app.clone(),
                config,
            });
        }
    }
    Ok(slots)
}

/// Builds a gateway registering `slots` — all of them, or (for a parallel
/// worker) only the subset `assign` maps to worker `w`. Fault injection is
/// seeded identically either way; crash draws decompose per-config, so a
/// worker owning a subset of slots sees exactly the draws the sequential run
/// dealt those configs.
fn build_gateway_slots<P: RuntimeProvider>(
    provider: P,
    scenario: &Scenario,
    slots: &[SlotSpec],
    only_worker: Option<(&[usize], usize)>,
) -> Gateway<P> {
    let mut engine = ContainerEngine::with_local_images(scenario.hardware.clone());
    if scenario.crash_rate > 0.0 {
        engine.set_fault_injection(scenario.crash_rate, scenario.seed);
    }
    let mut gateway = Gateway::new(engine, provider);
    for (i, slot) in slots.iter().enumerate() {
        if let Some((assign, w)) = only_worker {
            if assign[i] != w {
                continue;
            }
        }
        gateway.register(
            FunctionSpec::from_app(slot.app.clone())
                .named(slot.name.clone())
                .with_config(slot.config.clone()),
        );
    }
    gateway
}

fn build_gateway<P: RuntimeProvider>(
    provider: P,
    scenario: &Scenario,
) -> Result<(Gateway<P>, Vec<String>), String> {
    let slots = slot_specs(scenario)?;
    let names = slots.iter().map(|s| s.name.clone()).collect();
    Ok((build_gateway_slots(provider, scenario, &slots, None), names))
}

/// A driver body, generic over the provider the scenario selected.
///
/// The three drivers (streaming, materialized, parallel) differ in how they
/// feed arrivals through the gateway but share everything else: the
/// provider dispatch below, the gateway construction, and the
/// [`ReportAggregator`]. `make` builds one provider instance; the parallel
/// driver calls it once per worker, the sequential drivers exactly once.
trait ProviderOp {
    type Out;
    fn run<P>(self, make: &(dyn Fn() -> P + Sync)) -> Self::Out
    where
        P: RuntimeProvider + Send + 'static;
}

/// HotC's pool limits are global state — the one thing a key-partitioned
/// replay cannot share. Each of `threads` workers gets a ceil-divided share
/// of `max_live` so the aggregate cap matches the configured total; with one
/// worker this reproduces the configured limits exactly.
fn split_limits(threads: usize) -> PoolLimits {
    let defaults = PoolLimits::default();
    PoolLimits::new(
        defaults.max_live.div_ceil(threads).max(1),
        defaults.mem_threshold,
    )
}

/// The single provider dispatch shared by all drivers: matches the scenario's
/// provider spec once and hands `op` a constructor for it.
fn dispatch_provider<O: ProviderOp>(spec: &ProviderSpec, threads: usize, op: O) -> O::Out {
    match spec {
        ProviderSpec::HotC => op.run(&move || {
            HotC::new(HotCConfig {
                limits: split_limits(threads),
                ..Default::default()
            })
        }),
        ProviderSpec::HotCFuzzy => op.run(&move || {
            HotC::new(HotCConfig {
                key_policy: KeyPolicy::Fuzzy,
                limits: split_limits(threads),
                ..Default::default()
            })
        }),
        ProviderSpec::ColdStart => op.run(&ColdStartAlways::new),
        ProviderSpec::FixedKeepAlive(ttl) => {
            let ttl = *ttl;
            op.run(&move || FixedKeepAlive::new(ttl))
        }
        ProviderSpec::PeriodicWarmup(period) => {
            let period = *period;
            op.run(&move || PeriodicWarmup::new(period))
        }
        ProviderSpec::HybridKeepAlive => op.run(&HybridKeepAlive::new),
    }
}

struct StreamOp<'a> {
    scenario: &'a Scenario,
    trace: &'a mut dyn Trace,
}

impl ProviderOp for StreamOp<'_> {
    type Out = Result<ScenarioReport, String>;
    fn run<P>(self, make: &(dyn Fn() -> P + Sync)) -> Self::Out
    where
        P: RuntimeProvider + Send + 'static,
    {
        let (gateway, names) = build_gateway(make(), self.scenario)?;
        let mut agg = ReportAggregator::new();
        let out = run_trace(
            gateway,
            self.trace,
            move |config_id| names[config_id % names.len()].clone(),
            self.scenario.tick,
            |seq, t| agg.observe(seq, t),
        );
        if let Some(e) = out.trace_error {
            return Err(format!("trace source error: {e}"));
        }
        Ok(finish_report(agg, &out.gateway))
    }
}

struct MaterializedOp<'a> {
    scenario: &'a Scenario,
    workload: &'a [Arrival],
}

impl ProviderOp for MaterializedOp<'_> {
    type Out = Result<ScenarioReport, String>;
    fn run<P>(self, make: &(dyn Fn() -> P + Sync)) -> Self::Out
    where
        P: RuntimeProvider + Send + 'static,
    {
        let (gateway, names) = build_gateway(make(), self.scenario)?;
        let out = run_workload(
            gateway,
            self.workload,
            move |config_id| names[config_id % names.len()].clone(),
            self.scenario.tick,
        );
        let mut agg = ReportAggregator::new();
        for (i, t) in out.traces.iter().enumerate() {
            agg.observe(i as u64, t);
        }
        Ok(finish_report(agg, &out.gateway))
    }
}

/// Assigns each slot to a worker such that slots whose runtimes can be
/// reused for one another (same [`RuntimeKey`] under the provider's matching
/// policy) always land on the same worker — the partition unit is the
/// reuse-closure, so no warm container is ever visible from two workers.
/// Key groups are dealt round-robin in first-appearance order.
fn partition_slots(slots: &[SlotSpec], policy: KeyPolicy, threads: usize) -> Vec<usize> {
    let mut group_of: HashMap<RuntimeKey, usize> = HashMap::new();
    let mut next = 0usize;
    slots
        .iter()
        .map(|slot| {
            let key = RuntimeKey::from_config(&slot.config, policy);
            *group_of.entry(key).or_insert_with(|| {
                let w = next % threads.max(1);
                next += 1;
                w
            })
        })
        .collect()
}

/// The runtime-key matching policy the scenario's provider reuses under.
/// Every non-fuzzy provider pools per exact configuration.
fn provider_policy(spec: &ProviderSpec) -> KeyPolicy {
    match spec {
        ProviderSpec::HotCFuzzy => KeyPolicy::Fuzzy,
        _ => KeyPolicy::Exact,
    }
}

struct ParallelOp<'a> {
    scenario: &'a Scenario,
    threads: usize,
}

impl ProviderOp for ParallelOp<'_> {
    type Out = Result<ScenarioReport, String>;
    fn run<P>(self, make: &(dyn Fn() -> P + Sync)) -> Self::Out
    where
        P: RuntimeProvider + Send + 'static,
    {
        let scenario = self.scenario;
        let threads = self.threads;
        let slots = slot_specs(scenario)?;
        let names: Arc<Vec<String>> = Arc::new(slots.iter().map(|s| s.name.clone()).collect());
        let assign: Arc<Vec<usize>> = Arc::new(partition_slots(
            &slots,
            provider_policy(&scenario.provider),
            threads,
        ));
        let slots = &slots;

        let results = run_partitioned(threads, |w| -> Result<_, String> {
            // Workload generation is deterministic: every worker rebuilds
            // the full stream and filters it down to its own slots, keeping
            // the global arrival indices for tie-breaking and the series.
            let trace = build_trace(&scenario.workload, slots.len(), scenario.seed)?;
            let mut part = PartitionTrace::new(trace, Arc::clone(&assign), w);
            let gateway = build_gateway_slots(make(), scenario, slots, Some((&assign, w)));
            let names = Arc::clone(&names);
            let mut agg = ReportAggregator::new();
            let out = run_trace_partition(
                gateway,
                &mut part,
                move |config_id| names[config_id % names.len()].clone(),
                scenario.tick,
                |seq, t| agg.observe(seq, t),
            );
            if let Some(e) = out.trace_error {
                return Err(format!("trace source error: {e}"));
            }
            Ok((out, agg))
        });

        // Deterministic reduction, in worker-index order.
        let mut outcomes = Vec::with_capacity(threads);
        let mut agg = ReportAggregator::new();
        for result in results {
            let (out, worker_agg) = result?;
            agg.merge(worker_agg);
            outcomes.push(out);
        }
        let live_at_end: usize = outcomes
            .iter()
            .map(|o| o.gateway.engine().live_count())
            .sum();
        let background: SimDuration = outcomes
            .iter()
            .map(|o| o.gateway.provider().background_cost())
            .sum();
        let coupled = threads > 1
            && outcomes
                .iter()
                .any(|o| o.gateway.provider().forced_evictions() > 0);
        // Merge telemetry at the registry level (raw counters, histogram
        // stripes, series) and snapshot once — unions and summaries are
        // synthesized from the merged raw state, exactly as a sequential
        // snapshot would. `metrics()` mirrors each gateway's internal
        // tallies into its registry, so call it once per worker and never
        // again after absorbing.
        let merged = MetricsRegistry::new();
        for out in &outcomes {
            merged.absorb(out.gateway.metrics());
        }
        let mut report = agg.finish(live_at_end, background, merged.snapshot());
        report.limits_coupled = coupled;
        Ok(report)
    }
}

fn replica_slots(scenario: &Scenario) -> usize {
    scenario.functions.iter().map(|f| f.replicas).sum::<usize>()
}

/// Validates that the workload produces at least one arrival (and surfaces
/// source errors) before any gateway is built.
fn probe_workload(scenario: &Scenario) -> Result<(), String> {
    let mut trace = build_trace(&scenario.workload, replica_slots(scenario), scenario.seed)?;
    if trace.peek().is_none() {
        if let Some(e) = trace.take_error() {
            return Err(format!("trace source error: {e}"));
        }
        return Err("workload generated no arrivals".to_string());
    }
    Ok(())
}

/// Runs a scenario end to end, streaming arrivals from the workload source —
/// the replay path never materializes the full arrival vector.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let mut trace = build_trace(&scenario.workload, replica_slots(scenario), scenario.seed)?;
    if trace.peek().is_none() {
        if let Some(e) = trace.take_error() {
            return Err(format!("trace source error: {e}"));
        }
        return Err("workload generated no arrivals".to_string());
    }
    let trace = trace.as_mut();
    dispatch_provider(&scenario.provider, 1, StreamOp { scenario, trace })
}

/// Reference implementation of [`run_scenario`] that materializes the whole
/// arrival vector and replays it through the eager driver.
///
/// Kept for the streaming ≡ materialized equivalence property test and the
/// replay-overhead benchmark; real runs use [`run_scenario`].
pub fn run_scenario_materialized(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let mut trace = build_trace(&scenario.workload, replica_slots(scenario), scenario.seed)?;
    let workload = workloads::drain(trace.as_mut());
    if let Some(e) = trace.take_error() {
        return Err(format!("trace source error: {e}"));
    }
    if workload.is_empty() {
        return Err("workload generated no arrivals".to_string());
    }
    dispatch_provider(
        &scenario.provider,
        1,
        MaterializedOp {
            scenario,
            workload: &workload,
        },
    )
}

/// Runs a scenario across `threads` replay workers, partitioned by runtime
/// key, and merges the per-worker results into one report that is
/// byte-identical (rendered text and metrics JSON) to [`run_scenario`]'s.
///
/// `threads == 1` routes through the same partitioned code path with a
/// single worker owning every slot. See `DESIGN.md` §12 for the protocol
/// and the one approximation (global pool limits, surfaced via
/// [`ScenarioReport::limits_coupled`]).
pub fn run_scenario_parallel(
    scenario: &Scenario,
    threads: usize,
) -> Result<ScenarioReport, String> {
    let threads = threads.max(1);
    probe_workload(scenario)?;
    dispatch_provider(
        &scenario.provider,
        threads,
        ParallelOp { scenario, threads },
    )
}

/// Convenience: language runtime names accepted by the scenario format (for
/// error messages and docs).
pub fn supported_languages() -> &'static [&'static str] {
    &["python", "go", "java", "nodejs", "ruby", "native"]
}

/// Convenience: app names accepted by the scenario format.
pub fn supported_apps() -> &'static [&'static str] {
    &[
        "random-number",
        "qr-code",
        "s3-download",
        "v3-app",
        "tf-api-app",
        "cassandra",
    ]
}

/// Maps a language name to its runtime (used by docs/tests).
pub fn language_by_name(name: &str) -> Option<LanguageRuntime> {
    Some(match name {
        "python" => LanguageRuntime::Python,
        "go" => LanguageRuntime::Go,
        "java" => LanguageRuntime::Java,
        "nodejs" | "node" => LanguageRuntime::NodeJs,
        "ruby" => LanguageRuntime::Ruby,
        "native" => LanguageRuntime::Native,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DEMO_SCENARIO;

    #[test]
    fn demo_scenario_runs() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        // 18 rounds × 8 + 4 bursts × 72 extra = 144 + 288 = 432 requests.
        assert_eq!(report.requests, 8 * 18 + 4 * 72);
        assert!(report.cold_fraction < 0.5);
        assert!(report.mean_ms > 0.0);
        assert_eq!(report.failed_fraction, 0.0);
    }

    #[test]
    fn cold_start_scenario_all_cold() {
        let text = DEMO_SCENARIO.replace("provider = hotc", "provider = cold-start");
        let scenario = Scenario::parse(&text).unwrap();
        let report = run_scenario(&scenario).unwrap();
        assert!((report.cold_fraction - 1.0).abs() < 1e-9);
        assert_eq!(report.live_at_end, 0);
    }

    #[test]
    fn crash_rate_flows_through() {
        let text = DEMO_SCENARIO.replace("seed     = 42", "seed = 42\ncrash_rate = 0.3");
        let scenario = Scenario::parse(&text).unwrap();
        assert!((scenario.crash_rate - 0.3).abs() < 1e-12);
        let report = run_scenario(&scenario).unwrap();
        assert!(report.failed_fraction > 0.15, "{}", report.failed_fraction);
    }

    #[test]
    fn unknown_app_is_a_runner_error() {
        let text = DEMO_SCENARIO.replace("app     = qr-code", "app = warp-drive");
        let scenario = Scenario::parse(&text).unwrap();
        let err = run_scenario(&scenario).unwrap_err();
        assert!(err.contains("warp-drive"));
    }

    #[test]
    fn multi_function_poisson_scenario() {
        let text = "\
provider = hotc
seed = 5

[function alpha]
app = qr-code
lang = python

[function beta]
app = qr-code
lang = go

[workload]
pattern = poisson
rate = 2.0
duration = 120s
";
        let scenario = Scenario::parse(text).unwrap();
        let report = run_scenario(&scenario).unwrap();
        assert!(report.requests > 100);
        assert!(report.cold_fraction < 0.2);
    }

    #[test]
    fn report_metrics_reconcile_with_summary() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        let snap = &report.metrics;
        assert_eq!(
            snap.counter("gateway/requests"),
            Some(report.requests as u64)
        );
        let cold = snap.counter("gateway/cold_starts").unwrap() as f64;
        assert!((cold / report.requests as f64 - report.cold_fraction).abs() < 1e-9);
        // The stage decomposition covers every request and sums to the
        // recorded e2e totals.
        let total_ns: u64 = report
            .latencies_ms
            .iter()
            .map(|ms| (ms * 1_000_000.0).round() as u64)
            .sum();
        assert_eq!(
            snap.stage_count("all", metrics_lite::Stage::Exec),
            report.requests as u64
        );
        assert_eq!(snap.scope_total_ns("all"), total_ns);
        // Cold starts ran the runtime-init stage at least once.
        assert!(snap.stage_count("all", metrics_lite::Stage::RuntimeInit) > 0);
    }

    fn synthetic_trace(total: SimDuration) -> RequestTrace {
        let t0 = simclock::SimTime::ZERO;
        RequestTrace {
            t1_gateway_in: t0,
            t2_watchdog_in: t0,
            t3_func_start: t0,
            t4_func_end: t0 + total,
            t5_watchdog_out: t0 + total,
            t6_gateway_out: t0 + total,
            cold: false,
            first_exec: false,
            failed: false,
        }
    }

    #[test]
    fn quantiles_are_continuous_across_the_detail_cap() {
        let short = synthetic_trace(SimDuration::from_millis(1));
        let long = synthetic_trace(SimDuration::from_millis(100));
        let fill = |n: usize| {
            let mut agg = ReportAggregator::new();
            for i in 0..n {
                // 10% of requests are slow, spread evenly through the stream.
                let t = if i % 10 == 0 { &long } else { &short };
                agg.observe(i as u64, t);
            }
            agg.finish(0, SimDuration::ZERO, MetricsRegistry::new().snapshot())
        };
        let at_cap = fill(LATENCY_DETAIL_CAP);
        let past_cap = fill(LATENCY_DETAIL_CAP + 1);
        // The exact series is kept up to the cap and dropped past it...
        assert_eq!(at_cap.latencies_ms.len(), LATENCY_DETAIL_CAP);
        assert!(past_cap.latencies_ms.is_empty());
        // ...but the quantile estimator is the same histogram on both sides,
        // so one extra request cannot step the reported percentiles (the old
        // exact-to-histogram switch jumped by the bucket rounding error).
        assert_eq!(at_cap.p50_ms, past_cap.p50_ms);
        assert_eq!(at_cap.p99_ms, past_cap.p99_ms);
    }

    #[test]
    fn merged_detail_obeys_the_sequential_cap_rule() {
        let tr = synthetic_trace(SimDuration::from_millis(2));
        let fill = |n: usize, base: u64| {
            let mut agg = ReportAggregator::new();
            for i in 0..n {
                agg.observe(base + i as u64, &tr);
            }
            agg
        };
        // Two workers each under the cap, but whose union exceeds it: the
        // merge drops the exact series exactly as one sequential aggregator
        // fed the combined stream would.
        let mut a = fill(LATENCY_DETAIL_CAP / 2, 0);
        a.merge(fill(
            LATENCY_DETAIL_CAP / 2 + 1,
            (LATENCY_DETAIL_CAP / 2) as u64,
        ));
        let merged = a.finish(0, SimDuration::ZERO, MetricsRegistry::new().snapshot());
        assert_eq!(merged.requests, LATENCY_DETAIL_CAP + 1);
        assert!(merged.latencies_ms.is_empty());
        // Under the cap the merged series is the full union, sorted back into
        // global arrival order even when a later worker held earlier seqs.
        let mut c = fill(10, 10);
        c.merge(fill(10, 0));
        let small = c.finish(0, SimDuration::ZERO, MetricsRegistry::new().snapshot());
        assert_eq!(small.requests, 20);
        assert_eq!(small.latencies_ms.len(), 20);
    }

    #[test]
    fn report_renders() {
        let scenario = Scenario::parse(DEMO_SCENARIO).unwrap();
        let report = run_scenario(&scenario).unwrap();
        let text = report.render(false);
        assert!(text.contains("scenario summary"));
        let verbose = report.render(true);
        assert!(verbose.contains("per-request latency"));
    }
}
