//! Thread-safe virtual clock for concurrent experiment drivers.
//!
//! The parallel-request experiments (Fig. 12(b) and the contention benches)
//! exercise the real HotC pool from many OS threads. Those drivers do not use
//! the single-threaded [`crate::Simulation`]; instead each worker advances a
//! [`SharedClock`] with the virtual cost of each operation it performs.
//!
//! The clock supports two advancement styles:
//!
//! * [`SharedClock::advance`] — global advancement (serialized work, e.g. a
//!   shared lock's critical section), and
//! * per-thread offsets via [`ThreadTimeline`] — parallel work whose virtual
//!   duration overlaps; the clock's notion of "now" for an experiment is then
//!   the maximum across timelines, mirroring wall-clock semantics of parallel
//!   execution.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic, thread-safe virtual clock.
#[derive(Debug, Default)]
pub struct SharedClock {
    nanos: AtomicU64,
}

impl SharedClock {
    /// Creates a clock at t=0.
    pub fn new() -> Self {
        SharedClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// Creates a clock at a given start instant.
    pub fn starting_at(t: SimTime) -> Self {
        SharedClock {
            nanos: AtomicU64::new(t.as_nanos()),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::Acquire))
    }

    /// Advances the clock by `d`, returning the new time. Atomic: concurrent
    /// advances accumulate (their virtual work is serialized).
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let prev = self.nanos.fetch_add(d.as_nanos(), Ordering::AcqRel);
        SimTime::from_nanos(prev.saturating_add(d.as_nanos()))
    }

    /// Moves the clock forward to at least `t` (no-op if already past).
    /// Returns the clock value after the operation.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_nanos();
        let mut cur = self.nanos.load(Ordering::Acquire);
        while cur < target {
            match self
                .nanos
                .compare_exchange_weak(cur, target, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_nanos(cur)
    }
}

/// A per-thread virtual timeline layered over a shared experiment start time.
///
/// Each worker thread owns one timeline; parallel virtual work advances only
/// that timeline. The experiment's elapsed virtual time is the max over all
/// timelines (see [`ThreadTimeline::merge_max`]).
#[derive(Debug, Clone)]
pub struct ThreadTimeline {
    now: SimTime,
}

impl ThreadTimeline {
    /// Starts a timeline at the given instant.
    pub fn starting_at(t: SimTime) -> Self {
        ThreadTimeline { now: t }
    }

    /// This thread's current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances this thread's timeline by `d` and returns the new time.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Waits until at least `t` (models blocking on a resource that becomes
    /// free at `t` on another timeline).
    pub fn wait_until(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Returns the later of the two timelines' instants — the join point of
    /// parallel work.
    pub fn merge_max(timelines: &[ThreadTimeline]) -> SimTime {
        timelines
            .iter()
            .map(|t| t.now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advance_accumulates() {
        let clock = SharedClock::new();
        clock.advance(SimDuration::from_millis(5));
        let now = clock.advance(SimDuration::from_millis(7));
        assert_eq!(now.as_millis(), 12);
        assert_eq!(clock.now().as_millis(), 12);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let clock = SharedClock::new();
        clock.advance_to(SimTime::from_secs(10));
        assert_eq!(clock.now().as_secs(), 10);
        // Going "back" is a no-op.
        clock.advance_to(SimTime::from_secs(5));
        assert_eq!(clock.now().as_secs(), 10);
    }

    #[test]
    fn concurrent_advances_all_count() {
        let clock = Arc::new(SharedClock::new());
        let threads = 8;
        let per_thread = 1_000;
        crossbeam_scope(threads, |_| {
            for _ in 0..per_thread {
                clock.advance(SimDuration::from_nanos(3));
            }
        });
        assert_eq!(
            clock.now().as_nanos(),
            threads as u64 * per_thread as u64 * 3
        );
    }

    // Minimal scoped-thread helper so this crate does not depend on crossbeam.
    fn crossbeam_scope(n: usize, f: impl Fn(usize) + Sync) {
        std::thread::scope(|s| {
            for i in 0..n {
                let f = &f;
                s.spawn(move || f(i));
            }
        });
    }

    #[test]
    fn timelines_model_parallel_work() {
        let start = SimTime::from_secs(1);
        let mut a = ThreadTimeline::starting_at(start);
        let mut b = ThreadTimeline::starting_at(start);
        a.advance(SimDuration::from_secs(3));
        b.advance(SimDuration::from_secs(5));
        // Parallel work completes when the slowest thread does.
        assert_eq!(ThreadTimeline::merge_max(&[a, b]), SimTime::from_secs(6));
    }

    #[test]
    fn wait_until_only_moves_forward() {
        let mut t = ThreadTimeline::starting_at(SimTime::from_secs(10));
        t.wait_until(SimTime::from_secs(5));
        assert_eq!(t.now(), SimTime::from_secs(10));
        t.wait_until(SimTime::from_secs(15));
        assert_eq!(t.now(), SimTime::from_secs(15));
    }

    #[test]
    fn merge_max_empty_is_zero() {
        assert_eq!(ThreadTimeline::merge_max(&[]), SimTime::ZERO);
    }
}
