//! lint-fixture-path: crates/core/src/fixture.rs
fn f(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(unwrap)
}
