//! `repro` — regenerates every figure of the paper's evaluation.
//!
//! Usage:
//! ```text
//! repro all          # every figure, in order
//! repro fig12        # one figure
//! repro fig4 fig9    # several
//! ```

use hotc_bench::experiments as exp;
use std::io::Write as _;

fn run_one(name: &str, out: &mut impl std::io::Write) -> bool {
    let rendered = match name {
        "fig1" => exp::fig1::run(5, 10).render(),
        "fig2" => exp::fig2::run(5000, 42).render(),
        "fig4" => exp::fig4::run().render(),
        "fig5" => exp::fig5::run().render(),
        "fig8" => exp::fig8::run(10).render(),
        "fig9" => exp::fig9::run(40, 7).render(),
        "fig10" => exp::fig10::run(11).render(),
        "fig11" => exp::fig11::run(3, 10.0).render(),
        "fig12" => exp::fig12::run(20, 10, 30).render(),
        "fig13" => exp::fig13::run(10).render(),
        "fig14" => exp::fig14::run().render(),
        "fig15" => exp::fig15::run().render(),
        "cluster" => exp::cluster::run(4, 12, 21).render(),
        "cloudlet" => exp::cloudlet::run(77).render(),
        "ablations" => exp::ablations::render_all(),
        "keepalive" => exp::keepalive::run(33).render(),
        _ => return false,
    };
    writeln!(out, "\n######## {name} ########\n").expect("write");
    writeln!(out, "{rendered}").expect("write");
    true
}

const ALL: [&str; 16] = [
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "cluster",
    "cloudlet",
    "keepalive",
    "ablations",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // `--out <dir>`: additionally write each figure to <dir>/<name>.txt.
    let out_dir = args.iter().position(|a| a == "--out").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--out needs a directory argument");
            std::process::exit(2);
        }
        let dir = args.remove(i + 1);
        args.remove(i);
        dir
    });
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create '{dir}': {e}");
            std::process::exit(1);
        });
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for name in targets {
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{name}.txt");
            let mut file = std::fs::File::create(&path).unwrap_or_else(|e| {
                eprintln!("cannot create '{path}': {e}");
                std::process::exit(1);
            });
            if !run_one(name, &mut file) {
                eprintln!("unknown figure '{name}'; known: {}", ALL.join(", "));
                std::process::exit(2);
            }
            writeln!(out, "wrote {path}").expect("write");
        } else if !run_one(name, &mut out) {
            eprintln!("unknown figure '{name}'; known: {}", ALL.join(", "));
            std::process::exit(2);
        }
    }
    out.flush().expect("flush");
}
