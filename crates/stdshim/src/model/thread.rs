//! Virtual-thread spawn/join for checked closures.
//!
//! Inside a [`Checker`](super::Checker) execution, [`spawn`] creates a new
//! virtual thread (a real OS thread driven by the baton scheduler) whose
//! start inherits the parent's vector clock, and [`JoinHandle::join`] is a
//! blocking schedule point that is only selectable once the child finished
//! (joining edges its final clock into the parent). Outside a run both fall
//! back to plain `std::thread`.

use super::rt::{self, Op};
use std::sync::{Arc, Mutex};

enum Inner<T> {
    Model {
        shared: Arc<rt::RunShared>,
        child: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
    Os(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (virtual or real) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Spawns a thread running `f`. Inside a model execution this is a schedule
/// point and the child is a virtual thread; outside it delegates to
/// [`std::thread::spawn`].
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let ctx = rt::with_run(|sh, me| (Arc::clone(sh), me));
    match ctx {
        Some((shared, me)) => {
            let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
            let slot_in = Arc::clone(&slot);
            let child = shared.spawn_child(me, move || {
                let v = f();
                *slot_in
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(v);
            });
            shared.atomic_op(me, Op::Spawn { child });
            JoinHandle {
                inner: Inner::Model {
                    shared,
                    child,
                    slot,
                },
            }
        }
        None => JoinHandle {
            inner: Inner::Os(std::thread::spawn(f)),
        },
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Panics if the
    /// child panicked (inside a run the child's panic is already the
    /// recorded violation; the join panic is drained fallout).
    pub fn join(self) -> T {
        match self.inner {
            Inner::Model {
                shared,
                child,
                slot,
            } => {
                // lint:allow(unwrap, model JoinHandles only exist inside the run that spawned them)
                let me = rt::with_run(|_, me| me).expect("model JoinHandle joined outside its run");
                shared.atomic_op(me, Op::Join { child });
                let taken = slot
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take();
                match taken {
                    Some(v) => v,
                    // Joining a panicked virtual thread propagates the panic by design.
                    None => panic!("joined virtual thread t{child} panicked"),
                }
            }
            Inner::Os(h) => match h.join() {
                Ok(v) => v,
                Err(_) => panic!("joined thread panicked"),
            },
        }
    }
}
