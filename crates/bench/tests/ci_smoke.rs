//! End-to-end CI smoke test: runs one figure experiment (Fig. 2, the
//! Dockerfile survey) both through the library API and through the real
//! `repro` binary, asserting non-empty, shape-valid output. This is the
//! check the offline CI workflow leans on to prove a clean checkout can
//! produce experiment output without touching the network.

use hotc_bench::experiments::fig2;

#[test]
fn fig2_shape_valid_via_library() {
    let result = fig2::run(2000, 42);
    // Both populations were actually sampled at the requested sizes.
    assert_eq!(result.all_projects.total(), 2000);
    assert_eq!(result.top100.total(), 100);
    // Top-4 shares are meaningful fractions, and the paper's concentration
    // effect holds: a handful of base images dominates.
    assert!(result.all_top4_share > 0.5 && result.all_top4_share <= 1.0);
    assert!(result.top100_top4_share > 0.5 && result.top100_top4_share <= 1.0);

    let rendered = result.render();
    assert!(!rendered.trim().is_empty());
    assert!(rendered.contains("Fig 2(a)"));
    assert!(rendered.contains("Fig 2(b)"));
    assert!(rendered.contains('%'));
}

#[test]
fn fig2_through_repro_binary() {
    let out_dir = std::env::temp_dir().join("hotc-ci-smoke-fig2");
    let _ = std::fs::remove_dir_all(&out_dir);

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig2", "--out"])
        .arg(&out_dir)
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "repro fig2 failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // With `--out`, the figure text goes to the file; stdout reports it.
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("wrote "), "stdout: {stdout}");

    let file = out_dir.join("fig2.txt");
    let written = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| panic!("missing {}: {e}", file.display()));
    assert!(!written.trim().is_empty());
    assert!(written.contains("######## fig2 ########"));
    assert!(written.contains("Fig 2(a)"));
    assert!(written.contains("Fig 2(b)"));
    assert!(written.contains('%'));
    let _ = std::fs::remove_dir_all(&out_dir);
}
