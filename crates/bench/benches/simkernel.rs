//! Simulation-kernel micro-benchmarks: the event queue and driver overhead
//! that every experiment pays per scheduled request.

use hotc_bench::Harness;
use simclock::{EventQueue, SimDuration, SimTime, Simulation};
use std::hint::black_box;

fn bench_event_queue(h: &mut Harness) {
    h.bench_with_setup("queue_push_pop_1k", EventQueue::<u64>::new, |mut q| {
        for i in 0..1000u64 {
            // Scatter timestamps to exercise heap reordering.
            q.push(SimTime::from_nanos((i * 7919) % 4096), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });
}

fn bench_simulation_steps(h: &mut Harness) {
    h.bench("simulation_10k_chained_events", || {
        let mut sim = Simulation::new(0u64);
        fn tick(s: &mut simclock::Scheduler<u64>, n: &mut u64) {
            *n += 1;
            if *n < 10_000 {
                s.schedule_in(SimDuration::from_micros(10), tick);
            }
        }
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run();
        black_box(*sim.state())
    });
}

fn bench_rng_distributions(h: &mut Harness) {
    let mut rng = simclock::SimRng::seeded(1);
    h.bench("rng/exponential", || black_box(rng.exponential(10.0)));
    let mut rng = simclock::SimRng::seeded(2);
    h.bench("rng/poisson_small_lambda", || black_box(rng.poisson(5.0)));
    let mut rng = simclock::SimRng::seeded(3);
    h.bench("rng/zipf_14", || black_box(rng.zipf(14, 1.0)));
}

fn main() {
    let mut h = Harness::new("simkernel");
    bench_event_queue(&mut h);
    bench_simulation_steps(&mut h);
    bench_rng_distributions(&mut h);
    h.finish();
}
