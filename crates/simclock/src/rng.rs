//! Deterministic random source for workload generation.
//!
//! [`SimRng`] is built on an in-repo xoshiro256++ core seeded through
//! SplitMix64, plus the handful of distributions the reproduction needs.
//! Keeping the generator in-tree (rather than pulling in `rand`) keeps the
//! workspace offline-buildable and the sampling code auditable, and the
//! stream for a given seed can never change under us via a dependency bump.

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
///
/// This is the seeding procedure recommended by the xoshiro authors; it
/// guarantees the four state words are not pathologically correlated even
/// for small consecutive seeds (0, 1, 2, …).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random number generator with workload-oriented helpers.
///
/// Two `SimRng`s created with the same seed produce identical streams, which
/// is what makes the figure harness reproducible.
#[derive(Clone, Debug)]
pub struct SimRng {
    /// xoshiro256++ state.
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// client its own stream without correlating them.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seeded(self.next_u64())
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit word, which has the
    /// better-mixed bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits scaled into the unit
    /// interval, so every representable output is equally likely.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    ///
    /// Uses the widening multiply-shift reduction; the bias is at most
    /// `range / 2^64`, far below anything the experiments can observe.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_u64: empty range {lo}..{hi}");
        let range = hi - lo;
        lo + ((self.next_u64() as u128 * range as u128) >> 64) as u64
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty collection");
        self.uniform_u64(0, n as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed sample with the given mean (inter-arrival
    /// times of a Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential: mean must be positive");
        // Inverse-CDF; guard the log against u == 0.
        let u = self.unit().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Poisson-distributed count with the given rate `lambda`.
    ///
    /// Uses Knuth's product method for small lambda and a normal
    /// approximation beyond 30 (where the error is far below the noise the
    /// experiments care about).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson: lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.unit();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Normally distributed sample via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normally distributed sample: useful for skewed service times.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s`.
    ///
    /// Rank 0 is the most popular item. Used to model the GitHub Dockerfile
    /// survey (Fig. 2): a few base images dominate.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf: need at least one item");
        // Direct inverse-CDF over the normalized harmonic weights. n is small
        // (tens of image kinds), so the linear scan is cheap and exact.
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut target = self.unit() * norm;
        for k in 1..=n {
            target -= 1.0 / (k as f64).powf(s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Multiplicative jitter: a sample in `[1-spread, 1+spread]` to perturb a
    /// modelled latency (e.g. ±5 % measurement noise).
    pub fn jitter(&mut self, spread: f64) -> f64 {
        let spread = spread.clamp(0.0, 1.0);
        1.0 + (self.unit() * 2.0 - 1.0) * spread
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a reference to a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn reference_vector_pinned() {
        // First outputs of xoshiro256++ seeded via SplitMix64(0): pins the
        // exact stream so a refactor can never silently change every figure.
        let mut rng = SimRng::seeded(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = SimRng::seeded(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
        // SplitMix64(0) expansion is itself a published test vector.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::seeded(7);
        let mut child = parent.fork();
        // Child stream must not simply mirror the parent stream.
        let mirrored = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(mirrored < 4);
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = SimRng::seeded(13);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u), "unit={u}");
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SimRng::seeded(14);
        for _ in 0..10_000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..20).contains(&v), "uniform={v}");
        }
        // A width-1 range can only produce its single value.
        assert_eq!(rng.uniform_u64(5, 6), 5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seeded(15);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // 13 random bytes being all zero has probability 2^-104.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seeded(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn poisson_mean_close() {
        let mut rng = SimRng::seeded(4);
        for &lambda in &[0.5, 5.0, 50.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut rng = SimRng::seeded(5);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::seeded(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn zipf_rank0_dominates() {
        let mut rng = SimRng::seeded(8);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[9] * 5, "counts={counts:?}");
        // Monotone non-increasing popularity (allowing sampling noise on the tail).
        assert!(counts[0] > counts[4]);
    }

    #[test]
    fn zipf_single_item() {
        let mut rng = SimRng::seeded(9);
        for _ in 0..10 {
            assert_eq!(rng.zipf(1, 1.2), 0);
        }
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::seeded(10);
        for _ in 0..1_000 {
            let j = rng.jitter(0.05);
            assert!((0.95..=1.05).contains(&j), "jitter={j}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seeded(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(12);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }
}
