//! lint-fixture-path: crates/metrics/src/fixture.rs
use std::sync::atomic::{AtomicU64, Ordering};
fn f(x: &AtomicU64) -> u64 {
    x.store(1, Ordering::SeqCst);
    x.load(Ordering::SeqCst)
}
