//! Container network modes and their setup costs.
//!
//! Fig. 4(c) of the paper measures "the building time of various customized
//! networks during the boot of container runtime": on a single host, bridge
//! and host mode cost about the same as no networking while container mode
//! (joining a proxy container's namespace) is about half; across hosts, the
//! overlay or routing solutions — "which involve additional registration and
//! initialization" — take up to 23× the host-mode setup time.

use crate::costmodel;
use crate::hardware::HardwareProfile;
use simclock::SimDuration;

/// Whether a deployment spans one machine or several (affects which network
/// modes are meaningful and what they cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkScope {
    /// All containers on one host.
    SingleHost,
    /// Containers spread across hosts (needs overlay/routing for bridge-like
    /// connectivity).
    MultiHost,
}

/// Docker-style network mode for a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkMode {
    /// Loopback only.
    None,
    /// Default veth + Linux bridge + NAT.
    Bridge,
    /// Share the host network namespace.
    Host,
    /// Join another (proxy) container's network namespace.
    Container,
    /// VXLAN overlay spanning hosts, with registry registration.
    Overlay,
    /// L3 routing fabric spanning hosts.
    Routing,
}

impl NetworkMode {
    /// All modes, in the order Fig. 4(c) reports them.
    pub const ALL: [NetworkMode; 6] = [
        NetworkMode::None,
        NetworkMode::Bridge,
        NetworkMode::Host,
        NetworkMode::Container,
        NetworkMode::Overlay,
        NetworkMode::Routing,
    ];

    /// Whether this mode only makes sense across multiple hosts.
    pub fn requires_multi_host(self) -> bool {
        matches!(self, NetworkMode::Overlay | NetworkMode::Routing)
    }

    /// Base setup cost on the reference server, before hardware scaling.
    pub fn base_setup_cost(self) -> SimDuration {
        match self {
            NetworkMode::None => costmodel::NET_NONE,
            NetworkMode::Bridge => costmodel::NET_BRIDGE,
            NetworkMode::Host => costmodel::NET_HOST,
            NetworkMode::Container => costmodel::NET_CONTAINER,
            NetworkMode::Overlay => costmodel::NET_OVERLAY,
            NetworkMode::Routing => costmodel::NET_ROUTING,
        }
    }

    /// Setup cost on a given hardware platform.
    pub fn setup_cost(self, hw: &HardwareProfile) -> SimDuration {
        hw.network(self.base_setup_cost())
    }

    /// Per-request forwarding overhead added by this mode (paths through
    /// NAT/overlay encapsulation are slower than host networking).
    pub fn per_request_overhead(self) -> SimDuration {
        match self {
            NetworkMode::None => SimDuration::ZERO,
            NetworkMode::Host => SimDuration::from_micros(30),
            NetworkMode::Bridge => SimDuration::from_micros(90),
            NetworkMode::Container => SimDuration::from_micros(70),
            NetworkMode::Overlay => SimDuration::from_micros(260),
            NetworkMode::Routing => SimDuration::from_micros(180),
        }
    }

    /// Mode name as it appears in runtime keys and report tables.
    pub fn name(self) -> &'static str {
        match self {
            NetworkMode::None => "none",
            NetworkMode::Bridge => "bridge",
            NetworkMode::Host => "host",
            NetworkMode::Container => "container",
            NetworkMode::Overlay => "overlay",
            NetworkMode::Routing => "routing",
        }
    }
}

impl std::fmt::Display for NetworkMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full network configuration of a container; part of the HotC runtime key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NetworkConfig {
    /// The attachment mode.
    pub mode: NetworkMode,
    /// Single- vs multi-host deployment.
    pub scope: NetworkScope,
    /// Published container→host port mappings, kept sorted for canonical
    /// comparison.
    pub published_ports: Vec<(u16, u16)>,
}

impl NetworkConfig {
    /// Single-host configuration with no published ports.
    pub fn single(mode: NetworkMode) -> Self {
        NetworkConfig {
            mode,
            scope: NetworkScope::SingleHost,
            published_ports: Vec::new(),
        }
    }

    /// Multi-host configuration with no published ports.
    pub fn multi(mode: NetworkMode) -> Self {
        NetworkConfig {
            mode,
            scope: NetworkScope::MultiHost,
            published_ports: Vec::new(),
        }
    }

    /// Adds a port mapping, keeping the list sorted (canonical form).
    pub fn publish(mut self, container: u16, host: u16) -> Self {
        self.published_ports.push((container, host));
        self.published_ports.sort_unstable();
        self
    }

    /// Validates the mode/scope combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.mode.requires_multi_host() && self.scope == NetworkScope::SingleHost {
            return Err(format!(
                "network mode '{}' requires a multi-host scope",
                self.mode
            ));
        }
        if self.mode == NetworkMode::Host && !self.published_ports.is_empty() {
            return Err("host networking cannot publish ports (already on host)".to_string());
        }
        Ok(())
    }

    /// Total setup cost: mode setup plus a small per-port programming cost.
    pub fn setup_cost(&self, hw: &HardwareProfile) -> SimDuration {
        let ports = SimDuration::from_millis(2) * self.published_ports.len() as u64;
        self.mode.setup_cost(hw) + hw.network(ports)
    }
}

impl stdshim::ToJson for NetworkMode {
    fn to_json(&self) -> stdshim::JsonValue {
        stdshim::JsonValue::Str(self.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4c_single_host_ordering() {
        // container < host ≈ none ≈ bridge
        assert!(NetworkMode::Container.base_setup_cost() < NetworkMode::Host.base_setup_cost());
        let none = NetworkMode::None.base_setup_cost().as_millis() as f64;
        for m in [NetworkMode::Bridge, NetworkMode::Host] {
            let r = m.base_setup_cost().as_millis() as f64 / none;
            assert!((0.9..1.1).contains(&r), "{m}: {r}");
        }
    }

    #[test]
    fn fig4c_multi_host_overlay_23x() {
        let r = NetworkMode::Overlay.base_setup_cost().as_millis() as f64
            / NetworkMode::Host.base_setup_cost().as_millis() as f64;
        assert!((22.0..24.0).contains(&r), "overlay/host = {r}");
    }

    #[test]
    fn validation_rejects_overlay_on_single_host() {
        assert!(NetworkConfig::single(NetworkMode::Overlay)
            .validate()
            .is_err());
        assert!(NetworkConfig::multi(NetworkMode::Overlay)
            .validate()
            .is_ok());
        assert!(NetworkConfig::single(NetworkMode::Bridge)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_ports_on_host_mode() {
        let cfg = NetworkConfig::single(NetworkMode::Host).publish(80, 8080);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn publish_canonicalizes_order() {
        let a = NetworkConfig::single(NetworkMode::Bridge)
            .publish(443, 8443)
            .publish(80, 8080);
        let b = NetworkConfig::single(NetworkMode::Bridge)
            .publish(80, 8080)
            .publish(443, 8443);
        assert_eq!(a, b);
    }

    #[test]
    fn ports_add_setup_cost() {
        let hw = HardwareProfile::server();
        let plain = NetworkConfig::single(NetworkMode::Bridge);
        let ported = plain.clone().publish(80, 8080);
        assert!(ported.setup_cost(&hw) > plain.setup_cost(&hw));
    }

    #[test]
    fn edge_hardware_scales_setup() {
        let pi = HardwareProfile::raspberry_pi3();
        let server = HardwareProfile::server();
        for m in NetworkMode::ALL {
            assert!(m.setup_cost(&pi) > m.setup_cost(&server));
        }
    }

    /// Canonical form: publishing the same port set in any order yields
    /// identical configs (important: HotC keys containers by config).
    #[test]
    fn prop_publish_order_irrelevant() {
        testkit::check(64, |g| {
            let mut ports = g.vec(0..8, |g| (g.u16_in(1..1000), g.u16_in(1..1000)));
            let fwd = ports
                .iter()
                .fold(NetworkConfig::single(NetworkMode::Bridge), |c, &(a, b)| {
                    c.publish(a, b)
                });
            ports.reverse();
            let rev = ports
                .iter()
                .fold(NetworkConfig::single(NetworkMode::Bridge), |c, &(a, b)| {
                    c.publish(a, b)
                });
            assert_eq!(fwd, rev);
        });
    }
}
