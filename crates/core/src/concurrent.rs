//! Thread-safe gateway wrapper for the parallel-request experiments.
//!
//! Fig. 12(b) drives the backend from ten client threads at once; the
//! contention benchmarks push further. [`ConcurrentGateway`] wraps a
//! [`faas::Gateway`] in a [`stdshim::sync::Mutex`] and splits each request into
//! the `begin`/`finish` phases so the lock is **not** held across a request's
//! virtual execution — many containers run concurrently while the pool's
//! bookkeeping stays serialized, exactly like the real middleware's critical
//! sections.
//!
//! Virtual time is per-thread ([`simclock::shared::ThreadTimeline`]): each
//! worker advances its own timeline by its requests' latencies, and an
//! experiment's elapsed time is the max across timelines (parallel-work
//! semantics).

use faas::gateway::{Gateway, GatewayError};
use faas::{RequestTrace, RuntimeProvider};
use simclock::shared::ThreadTimeline;
use simclock::SimTime;
use stdshim::sync::Mutex;

/// A `Sync` gateway shared by client threads.
pub struct ConcurrentGateway<P: RuntimeProvider> {
    inner: Mutex<Gateway<P>>,
}

impl<P: RuntimeProvider> ConcurrentGateway<P> {
    /// Wraps a gateway for concurrent use.
    pub fn new(gateway: Gateway<P>) -> Self {
        ConcurrentGateway {
            inner: Mutex::new(gateway),
        }
    }

    /// Serves one request on the calling thread's timeline: locks for the
    /// begin bookkeeping, releases the lock while the function "executes"
    /// (timeline advance), then locks again to finish.
    pub fn handle(
        &self,
        function: &str,
        timeline: &mut ThreadTimeline,
    ) -> Result<RequestTrace, GatewayError> {
        let inflight = {
            let mut gw = self.inner.lock();
            gw.begin(function, timeline.now())?
        };
        // Execution happens outside the lock: other threads' requests overlap.
        timeline.wait_until(inflight.t4_func_end);
        let trace = {
            let mut gw = self.inner.lock();
            gw.finish(inflight)?
        };
        timeline.wait_until(trace.t6_gateway_out);
        Ok(trace)
    }

    /// Runs provider maintenance at the given instant.
    pub fn tick(&self, now: SimTime) -> Result<(), GatewayError> {
        self.inner.lock().tick(now)
    }

    /// Runs a closure with the locked gateway (setup, inspection).
    pub fn with<R>(&self, f: impl FnOnce(&mut Gateway<P>) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Unwraps the inner gateway.
    pub fn into_inner(self) -> Gateway<P> {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::HotC;
    use containersim::{ContainerEngine, HardwareProfile, LanguageRuntime};
    use faas::AppProfile;
    use metrics_lite::LatencyRecorder;
    use simclock::SimDuration;
    use std::sync::Arc;

    fn concurrent_gateway() -> Arc<ConcurrentGateway<HotC>> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, HotC::with_defaults());
        for (i, lang) in [
            LanguageRuntime::Python,
            LanguageRuntime::Go,
            LanguageRuntime::NodeJs,
            LanguageRuntime::Java,
        ]
        .iter()
        .enumerate()
        {
            gw.register(
                faas::FunctionSpec::from_app(AppProfile::qr_code(*lang)).named(format!("qr-{i}")),
            );
        }
        Arc::new(ConcurrentGateway::new(gw))
    }

    #[test]
    fn ten_threads_each_own_runtime() {
        let gw = concurrent_gateway();
        let threads = 4usize;
        let per_thread = 25usize;
        let recorders: Vec<LatencyRecorder> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let gw = Arc::clone(&gw);
                    s.spawn(move || {
                        let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                        let mut rec = LatencyRecorder::new();
                        let function = format!("qr-{t}");
                        for _ in 0..per_thread {
                            let trace = gw.handle(&function, &mut timeline).unwrap();
                            rec.record(trace.total());
                            timeline.advance(SimDuration::from_secs(1));
                        }
                        rec
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let stats = gw.with(|g| g.stats());
        assert_eq!(stats.requests as usize, threads * per_thread);
        // Each thread's own config cold-starts at most a few times; the rest
        // reuse (threads interleave, so a thread may occasionally race its
        // own release and open a second container).
        assert!(
            stats.cold_starts as usize <= threads * 3,
            "cold starts: {}",
            stats.cold_starts
        );
        // Warm latencies dominate: median well under the cold latency.
        for rec in &recorders {
            assert!(rec.median().as_millis() < 100, "median {:?}", rec.median());
        }
    }

    #[test]
    fn shared_config_threads_reuse_each_others_containers() {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, HotC::with_defaults());
        gw.register_app(AppProfile::random_number());
        let gw = Arc::new(ConcurrentGateway::new(gw));

        std::thread::scope(|s| {
            for _ in 0..4 {
                let gw = Arc::clone(&gw);
                s.spawn(move || {
                    let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
                    for _ in 0..20 {
                        gw.handle("random-number", &mut timeline).unwrap();
                        timeline.advance(SimDuration::from_millis(200));
                    }
                });
            }
        });

        let (requests, cold, live) = gw.with(|g| {
            (
                g.stats().requests,
                g.stats().cold_starts,
                g.engine().live_count(),
            )
        });
        assert_eq!(requests, 80);
        // One shared config: the pool converges to at most a handful of
        // containers (bounded by peak overlap), nowhere near 80.
        assert!(cold <= 8, "cold={cold}");
        assert!(live <= 8, "live={live}");
    }

    #[test]
    fn deterministic_when_single_threaded() {
        // The concurrent wrapper adds no nondeterminism absent real races.
        let run = || {
            let gw = concurrent_gateway();
            let mut timeline = ThreadTimeline::starting_at(SimTime::ZERO);
            let mut latencies = Vec::new();
            for _ in 0..10 {
                let t = gw.handle("qr-0", &mut timeline).unwrap();
                latencies.push(t.total());
            }
            latencies
        };
        assert_eq!(run(), run());
    }
}
