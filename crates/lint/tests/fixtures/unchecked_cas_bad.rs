//! lint-fixture-path: crates/core/src/fixture.rs
use std::sync::atomic::{AtomicU64, Ordering};
fn f(x: &AtomicU64) {
    x.compare_exchange(1, 0, Ordering::AcqRel, Ordering::Acquire);
    let _ = x.compare_exchange_weak(1, 0, Ordering::AcqRel, Ordering::Acquire);
    x.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| Some(v + 1));
}
