#![warn(missing_docs)]

//! Mini property-testing harness for the HotC workspace.
//!
//! A std-only, deterministic replacement for the slice of `proptest` the
//! repo actually used: seeded random case generation, a fixed case count,
//! and failure-seed reporting. A property is a closure over a [`Gen`] that
//! draws its inputs and asserts with the ordinary `assert!` family:
//!
//! ```
//! testkit::check(64, |g| {
//!     let mut xs = g.vec(0..100, |g| g.i64_in(-50..50));
//!     xs.sort_unstable();
//!     for w in xs.windows(2) {
//!         assert!(w[0] <= w[1]);
//!     }
//! });
//! ```
//!
//! Every case runs from its own 64-bit seed derived from a fixed base, so a
//! run is reproducible bit-for-bit on any machine. When a case panics the
//! harness prints the case seed and re-raises the panic; re-running the test
//! with `TESTKIT_SEED=<that seed>` replays exactly the failing case.
//! `TESTKIT_CASES=<n>` scales every `check` in the process (CI can turn it
//! down for smoke runs or up for soak runs).

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base for deriving per-case seeds; an arbitrary odd constant.
const BASE_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 step, also used to expand case seeds into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `prop` against `cases` generated inputs (the workspace default is
/// 64, mirroring the old `ProptestConfig::with_cases(64)`).
///
/// Panics (failing the enclosing `#[test]`) on the first case whose property
/// panics, after printing the case's replay seed.
pub fn check(cases: u64, mut prop: impl FnMut(&mut Gen)) {
    if let Some(seed) = env_u64("TESTKIT_SEED") {
        let mut g = Gen::from_seed(seed);
        prop(&mut g);
        return;
    }
    let cases = env_u64("TESTKIT_CASES").unwrap_or(cases).max(1);
    for case in 0..cases {
        let mut base = BASE_SEED.wrapping_add(case);
        let seed = splitmix64(&mut base);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::from_seed(seed);
            prop(&mut g);
        }));
        if let Err(payload) = result {
            eprintln!(
                "testkit: property failed on case {case}/{cases} (seed {seed:#018x}); \
                 rerun with TESTKIT_SEED={seed:#018x} to replay it"
            );
            resume_unwind(payload);
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("testkit: {name}={raw:?} is not a u64"),
    }
}

/// Deterministic input generator handed to each property case.
///
/// The core is xoshiro256++ seeded via SplitMix64 — the same construction as
/// `simclock::SimRng`, duplicated here so `testkit` stays dependency-free
/// and usable from every crate's dev-dependencies without cycles.
#[derive(Clone, Debug)]
pub struct Gen {
    s: [u64; 4],
}

impl Gen {
    /// Creates a generator for one case.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Gen {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `range`. Panics on an empty range.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "u64_in: empty range {range:?}");
        let width = range.end - range.start;
        range.start + ((self.next_u64() as u128 * width as u128) >> 64) as u64
    }

    /// Uniform `i64` in `range`. Panics on an empty range.
    pub fn i64_in(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "i64_in: empty range {range:?}");
        let width = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.u64_in(0..width) as i64)
    }

    /// Uniform `usize` in `range`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u32` in `range`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `u16` in `range`.
    pub fn u16_in(&mut self, range: Range<u16>) -> u16 {
        self.u64_in(range.start as u64..range.end as u64) as u16
    }

    /// Uniform `u8` in `range`.
    pub fn u8_in(&mut self, range: Range<u8>) -> u8 {
        self.u64_in(range.start as u64..range.end as u64) as u8
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "f64_in: empty range {range:?}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut element: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = if len.start == len.end {
            len.start
        } else {
            self.usize_in(len)
        };
        (0..n).map(|_| element(self)).collect()
    }

    /// Picks a uniformly random element — the replacement for `prop_oneof`
    /// over constants.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick: empty slice");
        &items[self.usize_in(0..items.len())]
    }

    /// A random string of length drawn from `len` over the characters of
    /// `alphabet` — the replacement for simple regex strategies like
    /// `"[A-Z]{1,4}"` (spelled `g.string("ABC…Z", 1..5)`).
    pub fn string(&mut self, alphabet: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "string: empty alphabet");
        let n = if len.start == len.end {
            len.start
        } else {
            self.usize_in(len)
        };
        (0..n).map(|_| *self.pick(&chars)).collect()
    }
}

/// Uppercase ASCII alphabet, for the common `[A-Z]` string strategy.
pub const UPPER: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
/// Lowercase ASCII letters plus digits, for `[a-z0-9]` strategies.
pub const LOWER_DIGITS: &str = "abcdefghijklmnopqrstuvwxyz0123456789";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_draws() {
        let mut a = Gen::from_seed(1);
        let mut b = Gen::from_seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::from_seed(2);
        for _ in 0..10_000 {
            assert!((5..17).contains(&g.u64_in(5..17)));
            assert!((-10..10).contains(&g.i64_in(-10..10)));
            let f = g.f64_in(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
        assert_eq!(g.u8_in(3..4), 3);
    }

    #[test]
    fn vec_length_in_range() {
        let mut g = Gen::from_seed(3);
        for _ in 0..1_000 {
            let v = g.vec(2..7, |g| g.bool());
            assert!((2..7).contains(&v.len()));
        }
        assert_eq!(g.vec(4..4, |g| g.next_u64()).len(), 4);
        assert!(g.vec(0..1, |g| g.next_u64()).is_empty());
    }

    #[test]
    fn string_uses_alphabet() {
        let mut g = Gen::from_seed(4);
        for _ in 0..500 {
            let s = g.string(UPPER, 1..5);
            assert!((1..5).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn pick_covers_all_items() {
        let mut g = Gen::from_seed(5);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*g.pick(&items) - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn check_runs_all_cases() {
        let count = std::cell::Cell::new(0u64);
        check(16, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 16);
    }

    #[test]
    fn check_reports_failure_by_panicking() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(8, |g| {
                // Fails on the first case drawing a large value.
                assert!(g.u64_in(0..100) < 1);
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cases_get_distinct_seeds() {
        let mut firsts = Vec::new();
        check(8, |g| firsts.push(g.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8, "each case must draw a distinct stream");
    }
}
