//! Replays a day of YouTube-shaped campus traffic (the paper's Fig. 11
//! trace) through the serverless gateway and compares runtime managers.
//!
//! The trace is *streamed*: arrivals are pulled one at a time through the
//! [`workloads::trace::Trace`] iterator and fed straight into the driver,
//! so memory stays O(in-flight requests) no matter how long the day is.
//!
//! ```text
//! cargo run --example trace_replay
//! ```

use hotc_bench::run_trace;
use hotc_repro::prelude::*;
use workloads::trace::youtube_arrivals_trace;
use workloads::youtube::{youtube_trace, YoutubeTraceParams};

fn main() {
    // A 288-index day (5-minute indices), rates scaled down 10× to keep the
    // replay quick.
    let params = YoutubeTraceParams {
        length: 288,
        seed: 99,
        ..Default::default()
    };
    let rates: Vec<f64> = youtube_trace(&params)
        .into_iter()
        .map(|r| r / 10.0)
        .collect();
    println!("streaming a simulated day of campus traffic\n");

    let mut table = Table::new(
        "day-long trace replay",
        &[
            "backend",
            "requests",
            "mean_ms",
            "p99_ms",
            "cold_fraction",
            "live_at_end",
        ],
    );
    for backend in ["cold-start", "fixed-keepalive", "hotc"] {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let row = match backend {
            "cold-start" => replay(
                Gateway::new(engine, faas::ColdStartAlways::new()),
                rates.clone(),
            ),
            "fixed-keepalive" => replay(
                Gateway::new(engine, FixedKeepAlive::aws_default()),
                rates.clone(),
            ),
            _ => replay(Gateway::new(engine, HotC::with_defaults()), rates.clone()),
        };
        table.row(&[
            backend.to_string(),
            row.3.to_string(),
            format!("{:.1}", row.0.mean().as_millis_f64()),
            format!("{:.1}", row.0.percentile(0.99).as_millis_f64()),
            format!("{:.3}", row.1),
            row.2.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(trace features: burst 20→300 at T710, decline T800–T1200, rise T1200–T1400)");
}

fn replay<P: RuntimeProvider + 'static>(
    mut gateway: Gateway<P>,
    rates: Vec<f64>,
) -> (LatencyRecorder, f64, usize, u64) {
    gateway.register_app(AppProfile::random_number());
    let mut trace = youtube_arrivals_trace(rates, SimDuration::from_secs(300), 0, 99);
    let mut recorder = LatencyRecorder::new();
    let mut cold = 0u64;
    let out = run_trace(
        gateway,
        &mut trace,
        |_| "random-number".to_string(),
        SimDuration::from_secs(30),
        |_, t| {
            recorder.record(t.total());
            if t.cold {
                cold += 1;
            }
        },
    );
    assert!(out.trace_error.is_none(), "youtube trace cannot error");
    let cold_fraction = cold as f64 / (out.requests as f64).max(1.0);
    (
        recorder,
        cold_fraction,
        out.gateway.engine().live_count(),
        out.requests,
    )
}
