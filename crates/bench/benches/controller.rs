//! Control-plane tick benchmarks: full-sweep vs dirty-set controller steps.
//!
//! The scenario is the one that motivates the dirty set — a registered
//! fleet much larger than the active fleet: `types` runtime types are
//! tracked by the pool (their slots exist, pending a far-off GC deadline),
//! but only `HOT` of them see traffic each interval. A full-sweep step
//! visits every tracked slot; a dirty-set step visits only the touched
//! keys plus the due cold-GC deadlines, so its cost is independent of
//! `types`. Each timed iteration drives one warm request round per hot key
//! (identical in both modes) and then takes one controller step.

use containersim::engine::ExecWork;
use containersim::{ContainerConfig, ContainerEngine, HardwareProfile, ImageId};
use hotc::{AdaptiveController, ControllerConfig, EngineRef, KeyPolicy, ShardedPool};
use hotc_bench::Harness;
use simclock::{SimDuration, SimTime};
use std::hint::black_box;
use stdshim::sync::Mutex;

/// Hot keys per interval — the "active types" a dirty step is linear in.
const HOT: usize = 10;

fn configs(n: usize) -> Vec<ContainerConfig> {
    let images = [
        "python:3.8-alpine",
        "golang:1.13",
        "node:12-alpine",
        "openjdk:8-jre",
    ];
    (0..n)
        .map(|i| {
            let mut c = ContainerConfig::bridge(ImageId::parse(images[i % images.len()]));
            c.exec.env.insert("T".into(), i.to_string());
            c
        })
        .collect()
}

/// A pool tracking `types` slots of which the first [`HOT`] hold a warm
/// container; the rest are empty, cold, and far from their GC deadline.
fn fleet(types: usize) -> (Mutex<ContainerEngine>, ShardedPool, Vec<ContainerConfig>) {
    let engine = Mutex::labeled(
        ContainerEngine::with_local_images(HardwareProfile::server()),
        "core/engine",
    );
    let mut pool = ShardedPool::new(KeyPolicy::Exact);
    // Keep the idle fleet tracked for the whole run: the bench measures
    // steady-state tick cost, not the GC burst.
    pool.set_gc_intervals(1_000_000);
    let all = configs(types);
    for (i, c) in all.iter().enumerate() {
        pool.prewarm(&engine, c, SimTime::ZERO).unwrap();
        if i >= HOT {
            let id = pool.intern_config(c);
            pool.retire_one_id(&engine, id, SimTime::ZERO).unwrap();
        }
    }
    // One marking sweep moves the drained slots onto the cold queue and off
    // the active list, so the timed loop starts from steady state.
    for shard in 0..pool.num_shards() {
        pool.take_shard_snapshot(shard);
    }
    let hot = all.into_iter().take(HOT).collect();
    (engine, pool, hot)
}

fn bench_tick(h: &mut Harness, types: usize) {
    for full in [true, false] {
        let (engine, pool, hot) = fleet(types);
        let mut ctl = AdaptiveController::new(ControllerConfig::default());
        let work = ExecWork::light(SimDuration::from_millis(1));
        let mut tick = 0u64;
        let name = format!(
            "{}_{}types",
            if full { "full_sweep" } else { "dirty" },
            types
        );
        h.bench(&name, || {
            tick += 1;
            let now = SimTime::from_secs(30 * tick);
            // Steady traffic on the hot keys: one warm round trip each.
            for c in &hot {
                let acq = pool.acquire(&engine, c, now).unwrap();
                let end = engine.with_engine(|e| {
                    let out = e.begin_exec(acq.container, work, now).unwrap();
                    let end = now + out.latency;
                    e.end_exec(acq.container, end).unwrap();
                    end
                });
                pool.release(&engine, acq.container, end).unwrap();
            }
            let report = if full {
                ctl.step_sharded_full(&pool, &engine, now).unwrap()
            } else {
                ctl.step_sharded(&pool, &engine, now).unwrap()
            };
            black_box(report.demand.len())
        });
    }
}

fn main() {
    let mut h = Harness::new("controller_tick");
    bench_tick(&mut h, 100);
    bench_tick(&mut h, 1000);
    h.finish();
}
