//! Quickstart: stand up a serverless gateway with HotC and watch the cold
//! start disappear.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hotc_repro::prelude::*;

fn main() {
    // 1. A simulated host (the paper's Dell PowerEdge T430) with the default
    //    image catalogue pre-pulled, exactly like the paper's testbed.
    let engine = ContainerEngine::with_local_images(HardwareProfile::server());

    // 2. A gateway whose runtime provider is HotC with the paper's defaults:
    //    exact runtime keys, a 500-container / 80 %-memory pool, and the
    //    α = 0.8 exponential-smoothing + Markov adaptive controller.
    let mut gateway = Gateway::new(engine, HotC::with_defaults());

    // 3. Deploy a function: the paper's QR-code web app in Python.
    gateway.register_app(AppProfile::qr_code(LanguageRuntime::Python));

    // 4. Send requests 10 s apart and watch latencies.
    let mut table = Table::new(
        "qr-code request latency",
        &["request", "latency_ms", "cold"],
    );
    for i in 0..8u64 {
        let now = SimTime::from_secs(10 * i);
        let trace = gateway.handle("qr-code", now).expect("request served");
        table.row(&[
            i.to_string(),
            format!("{:.1}", trace.total().as_millis_f64()),
            trace.cold.to_string(),
        ]);
        gateway.tick(now + SimDuration::from_secs(5)).expect("tick");
    }
    println!("{}", table.render());

    let stats = gateway.stats();
    println!(
        "requests: {}   cold starts: {}   live containers pooled: {}",
        stats.requests,
        stats.cold_starts,
        gateway.engine().live_count()
    );
    println!(
        "HotC background work (cleanup + control): {}",
        gateway.provider().background_cost()
    );
}
