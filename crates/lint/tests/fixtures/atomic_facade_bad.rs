//! lint-fixture-path: crates/core/src/shard.rs
use std::sync::atomic::AtomicU64;
