//! lint-fixture-path: crates/core/src/fixture.rs
use std::sync::atomic::{AtomicU64, Ordering};
fn f(x: &AtomicU64) {
    x.fetch_add(1, Ordering::Relaxed);
    x.fetch_sub(1, Ordering::Relaxed);
    x.fetch_max(7, Ordering::Relaxed);
    let _v = x.load(Ordering::Relaxed);
    x.store(1, Ordering::Release);
    let _won = x
        .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
        .is_ok();
    // lint:allow(atomic-ordering, fixture: reset performed under the owning lock)
    x.store(0, Ordering::Relaxed);
}
