//! The sharded concurrent runtime pool (§IV-B at production scale).
//!
//! The paper's key-value pool shards naturally along [`RuntimeKey`]: a key's
//! slot never interacts with another key's slot except during global
//! eviction. [`ShardedPool`] hashes each key onto one of N shards, each shard
//! guarding its slots with its own [`stdshim::sync::Mutex`], so warm
//! acquisitions for different runtime types proceed in parallel instead of
//! serializing on one pool-wide lock.
//!
//! Lock discipline (see DESIGN.md §"Sharded pool"):
//!
//! * a thread holds **at most one shard lock** at a time, and **never** a
//!   shard lock and the engine lock together — engine calls (container
//!   creation, cleanup, teardown) always happen after the shard lock is
//!   released, so cold starts on different keys overlap;
//! * global eviction is a **two-phase scan**: collect candidates shard by
//!   shard, pick the oldest via the engine, then re-lock the owning shard and
//!   claim the victim (retrying if a racing acquire took it first) — no
//!   operation ever takes all shard locks at once.
//!
//! The pool's bookkeeping invariants (enforced by the property tests):
//!
//! * `total_live() == engine.live_count()` at quiescence;
//! * a container is in `available` or `in_use` of exactly one slot, never
//!   both, never two requests' hands at once;
//! * a slot exists only while a container of its type exists or existed
//!   within the last [`ShardedPool::gc_intervals`] demand snapshots — failed
//!   creates never materialize slots, and long-dead slots are garbage
//!   collected together with their controller state.

use crate::key::{needs_reconfig, KeyPolicy, RuntimeKey, FUZZY_RECONFIG_COST};
use containersim::{ContainerConfig, ContainerEngine, ContainerId, CostBreakdown, EngineError};
use faas::Acquisition;
use simclock::{SimDuration, SimTime};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use stdshim::sync::Mutex;

/// Default shard count — enough to spread a handful of worker threads'
/// runtime types without measurable cost for single-threaded use.
pub const DEFAULT_SHARDS: usize = 8;

/// Default number of consecutive zero-demand snapshots after which an empty
/// slot is garbage collected.
pub const DEFAULT_GC_INTERVALS: u32 = 3;

/// Scoped access to the container engine. The pool never holds a shard lock
/// across an engine call, so the engine guard's scope is chosen per call:
/// concurrent frontends implement this over a `Mutex<ContainerEngine>`,
/// single-threaded callers wrap their exclusive `&mut` in [`ExclusiveEngine`].
pub trait EngineRef {
    /// Runs `f` with exclusive access to the engine.
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R;
}

impl EngineRef for Mutex<ContainerEngine> {
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R {
        f(&mut self.lock())
    }
}

/// [`EngineRef`] over an exclusive borrow, for single-threaded callers
/// (`ContainerPool`, the HotC provider) that already own `&mut` access.
pub struct ExclusiveEngine<'a> {
    inner: std::cell::RefCell<&'a mut ContainerEngine>,
}

impl<'a> ExclusiveEngine<'a> {
    /// Wraps an exclusive engine borrow.
    pub fn new(engine: &'a mut ContainerEngine) -> Self {
        ExclusiveEngine {
            inner: std::cell::RefCell::new(engine),
        }
    }
}

impl EngineRef for ExclusiveEngine<'_> {
    fn with_engine<R>(&self, f: impl FnOnce(&mut ContainerEngine) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

/// One runtime type's containers (Fig. 7 value list), plus the bookkeeping
/// the adaptive controller feeds on.
#[derive(Debug)]
struct Slot {
    /// Existing-Available containers, FIFO ("the client just reuses the
    /// first available container"). The flag records whether the container
    /// has ever executed (false for pre-warmed, true once released after a
    /// request) so acquires can report `first_exec` without an engine call.
    available: VecDeque<(ContainerId, bool)>,
    /// Existing-Not-Available containers, by id — membership is what makes
    /// a `release` legal, so a double release (or a release of a container
    /// the pool never handed out) is detected instead of double-pooling.
    in_use: Vec<ContainerId>,
    /// Peak concurrent in-use count since the last demand snapshot — the
    /// `history[k][t]` series the adaptive controller feeds the predictor.
    watermark: usize,
    /// Consecutive zero-demand snapshots while the slot held no container;
    /// reaching the pool's GC threshold retires the slot.
    zero_streak: u32,
    /// A representative configuration for this key, kept so the controller
    /// can pre-warm by key alone.
    config: ContainerConfig,
}

impl Slot {
    fn new(config: ContainerConfig) -> Self {
        Slot {
            available: VecDeque::new(),
            in_use: Vec::new(),
            watermark: 0,
            zero_streak: 0,
            config,
        }
    }

    fn note_in_use(&mut self, container: ContainerId) {
        self.in_use.push(container);
        self.watermark = self.watermark.max(self.in_use.len());
        self.zero_streak = 0;
    }
}

#[derive(Debug, Default)]
struct ShardState {
    slots: HashMap<RuntimeKey, Slot>,
}

/// One shard's demand snapshot: per-key demand for the controller, plus the
/// keys whose empty slots were garbage collected in this snapshot (the
/// controller drops their predictors).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// `history[k][t]` entries for the interval, sorted by key.
    pub demands: Vec<(RuntimeKey, usize)>,
    /// Keys GC'd by this snapshot, sorted.
    pub retired: Vec<RuntimeKey>,
}

/// An acquisition with the pool-side detail the sharded gateway needs to
/// keep the warm path off the engine lock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolAcquisition {
    /// The container to run in.
    pub container: ContainerId,
    /// Virtual time spent obtaining it.
    pub cost: SimDuration,
    /// Whether a new container had to be created.
    pub cold: bool,
    /// Whether this container has never executed before (fresh or
    /// pre-warmed) — exactly `engine.exec_count(container) == Some(0)`, but
    /// known from pool bookkeeping alone.
    pub first_exec: bool,
    /// Per-stage decomposition of a cold start (`None` on reuse).
    pub breakdown: Option<CostBreakdown>,
    /// Reconfiguration cost of a fuzzy-matched reuse (zero otherwise).
    pub reconfig: SimDuration,
}

impl From<PoolAcquisition> for Acquisition {
    fn from(a: PoolAcquisition) -> Acquisition {
        Acquisition {
            container: a.container,
            cost: a.cost,
            cold: a.cold,
            breakdown: a.breakdown,
            reconfig: a.reconfig,
        }
    }
}

/// The sharded HotC container pool (Algorithms 1–2 per shard).
///
/// All methods take `&self`; the per-shard mutexes serialize only the
/// bookkeeping of keys that hash to the same shard. Engine work happens
/// outside any shard lock via [`EngineRef`].
#[derive(Debug)]
pub struct ShardedPool {
    policy: KeyPolicy,
    shards: Box<[Mutex<ShardState>]>,
    gc_intervals: u32,
}

impl ShardedPool {
    /// Creates a pool with [`DEFAULT_SHARDS`] shards.
    pub fn new(policy: KeyPolicy) -> Self {
        Self::with_shards(policy, DEFAULT_SHARDS)
    }

    /// Creates a pool with an explicit shard count (at least 1).
    pub fn with_shards(policy: KeyPolicy, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedPool {
            policy,
            shards: (0..shards)
                .map(|_| Mutex::labeled(ShardState::default(), "pool/shard"))
                .collect(),
            gc_intervals: DEFAULT_GC_INTERVALS,
        }
    }

    /// The key policy in force.
    pub fn policy(&self) -> KeyPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Consecutive zero-demand snapshots before an empty slot is GC'd.
    pub fn gc_intervals(&self) -> u32 {
        self.gc_intervals
    }

    /// Overrides the empty-slot GC threshold (setup only).
    pub fn set_gc_intervals(&mut self, intervals: u32) {
        self.gc_intervals = intervals.max(1);
    }

    /// The runtime key for a configuration under this pool's policy.
    pub fn key_of(&self, config: &ContainerConfig) -> RuntimeKey {
        RuntimeKey::from_config(config, self.policy)
    }

    /// The shard a key lives on.
    pub fn shard_of(&self, key: &RuntimeKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: &RuntimeKey) -> &Mutex<ShardState> {
        &self.shards[self.shard_of(key)]
    }

    /// Algorithm 1: obtain a runtime for `config`. Reuses the first
    /// available container of the same type if one exists, otherwise starts
    /// a new container — with the creation outside the shard lock, so cold
    /// starts of different types overlap.
    pub fn acquire(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<Acquisition, EngineError> {
        self.acquire_detailed(engine, config, now).map(Into::into)
    }

    /// [`Self::acquire`] with the extra pool-side detail ([`PoolAcquisition`])
    /// the concurrent frontend uses to avoid engine round trips.
    pub fn acquire_detailed(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<PoolAcquisition, EngineError> {
        let key = self.key_of(config);
        self.acquire_with_key(engine, &key, config, now)
    }

    /// [`Self::acquire_detailed`] with a pre-derived key: callers that serve
    /// the same function repeatedly (the sharded gateway) derive the runtime
    /// key once at registration instead of re-formatting the configuration
    /// on every request. `key` must be `self.key_of(config)`.
    pub fn acquire_with_key(
        &self,
        engine: &impl EngineRef,
        key: &RuntimeKey,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<PoolAcquisition, EngineError> {
        debug_assert_eq!(*key, self.key_of(config));
        // DESIGN.md §5: the acquire path takes its locks (shard, engine)
        // strictly one at a time; the sanitizer enforces it in debug builds.
        let _scope = stdshim::request_path_scope();
        let shard = self.shard(key);
        let reused = {
            let mut state = shard.lock();
            state.slots.get_mut(key).and_then(|slot| {
                let (container, execed) = slot.available.pop_front()?;
                slot.note_in_use(container);
                Some((container, execed))
            })
        };
        if let Some((container, execed)) = reused {
            // An exact key pins every config field, so only fuzzy keys can
            // hand back a container that needs reconfiguration.
            let cost = if self.policy == KeyPolicy::Fuzzy {
                engine.with_engine(|e| match e.config(container) {
                    Some(existing) if needs_reconfig(existing, config) => FUZZY_RECONFIG_COST,
                    _ => SimDuration::ZERO,
                })
            } else {
                SimDuration::ZERO
            };
            return Ok(PoolAcquisition {
                container,
                cost,
                cold: false,
                first_exec: !execed,
                breakdown: None,
                reconfig: cost,
            });
        }
        // Not existing, or existing but not available: start a new one. The
        // slot is recorded only once the container exists, so a failed
        // create leaves no phantom slot behind for the controller to track.
        let (container, breakdown) =
            engine.with_engine(|e| e.create_container(config.clone(), now))?;
        let mut state = shard.lock();
        state
            .slots
            .entry(key.clone())
            .or_insert_with(|| Slot::new(config.clone()))
            .note_in_use(container);
        Ok(PoolAcquisition {
            container,
            cost: breakdown.total(),
            cold: true,
            first_exec: true,
            breakdown: Some(breakdown),
            reconfig: SimDuration::ZERO,
        })
    }

    /// Algorithm 2: clean the used container and add it back to the pool.
    /// A crashed (Stopped) container cannot be reused: it is disposed of
    /// instead. Releasing a container that was never acquired from this pool
    /// — or releasing the same container twice — is an
    /// [`EngineError::InvalidState`]: the duplicate must not be pooled, or
    /// one container could serve two requests at once.
    pub fn release(
        &self,
        engine: &impl EngineRef,
        container: ContainerId,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        // DESIGN.md §5: engine and shard locks are taken one at a time.
        let _scope = stdshim::request_path_scope();
        let (key, state_now, crashed) = engine.with_engine(|e| {
            let config = e
                .config(container)
                .cloned()
                .ok_or(EngineError::UnknownContainer(container))?;
            let state = e.state(container);
            Ok::<_, EngineError>((
                self.key_of(&config),
                state,
                state == containersim::ContainerState::Stopped,
            ))
        })?;
        let shard = self.shard(&key);
        {
            let mut shard_state = shard.lock();
            let claimed = shard_state.slots.get_mut(&key).and_then(|slot| {
                let at = slot.in_use.iter().position(|&c| c == container)?;
                Some(slot.in_use.swap_remove(at))
            });
            if claimed.is_none() {
                return Err(EngineError::InvalidState {
                    id: container,
                    state: state_now,
                    needed: "a container acquired from this pool",
                });
            }
        }
        let cost = match engine.with_engine(|e| {
            if crashed {
                e.stop_and_remove(container, now)
            } else {
                e.cleanup(container, now)
            }
        }) {
            Ok(cost) => cost,
            Err(err) => {
                // The engine rejected the cleanup (e.g. released while still
                // Running): hand the claim back so bookkeeping stays honest.
                if let Some(slot) = shard.lock().slots.get_mut(&key) {
                    slot.in_use.push(container);
                }
                return Err(err);
            }
        };
        if !crashed {
            if let Some(slot) = shard.lock().slots.get_mut(&key) {
                slot.available.push_back((container, true));
            }
        }
        Ok(cost)
    }

    /// The concurrent frontend's combined end-of-request path: claims the
    /// container from `key`'s in-use list, then ends the execution and
    /// cleans (or, if `crashed`, disposes of) the container in a **single**
    /// engine critical section. Returns `Ok(None)` without touching the
    /// engine when the container is not in-use under `key` — e.g. the
    /// function was re-registered with a different configuration mid-flight —
    /// so the caller can fall back to the engine-derived [`Self::release`].
    pub fn try_finish_release(
        &self,
        engine: &impl EngineRef,
        key: &RuntimeKey,
        container: ContainerId,
        now: SimTime,
        crashed: bool,
    ) -> Result<Option<SimDuration>, EngineError> {
        // DESIGN.md §5: shard claim, engine critical section, and pool
        // hand-back are three disjoint lock regions, never nested.
        let _scope = stdshim::request_path_scope();
        let shard = self.shard(key);
        let claimed = {
            let mut state = shard.lock();
            state.slots.get_mut(key).and_then(|slot| {
                let at = slot.in_use.iter().position(|&c| c == container)?;
                Some(slot.in_use.swap_remove(at))
            })
        };
        if claimed.is_none() {
            return Ok(None);
        }
        let cost = match engine.with_engine(|e| {
            e.end_exec(container, now)?;
            if crashed {
                e.stop_and_remove(container, now)
            } else {
                e.cleanup(container, now)
            }
        }) {
            Ok(cost) => cost,
            Err(err) => {
                // The engine rejected the hand-back; restore the claim so
                // bookkeeping stays honest.
                if let Some(slot) = shard.lock().slots.get_mut(key) {
                    slot.in_use.push(container);
                }
                return Err(err);
            }
        };
        if !crashed {
            if let Some(slot) = shard.lock().slots.get_mut(key) {
                slot.available.push_back((container, true));
            }
        }
        Ok(Some(cost))
    }

    /// Pre-warms one container of the given configuration (adaptive
    /// controller's scale-up action). The container boots straight into the
    /// Existing-Available state. Returns the cold-start cost (background).
    pub fn prewarm(
        &self,
        engine: &impl EngineRef,
        config: &ContainerConfig,
        now: SimTime,
    ) -> Result<SimDuration, EngineError> {
        let (container, breakdown) =
            engine.with_engine(|e| e.create_container(config.clone(), now))?;
        let key = self.key_of(config);
        let mut state = self.shard(&key).lock();
        state
            .slots
            .entry(key)
            .or_insert_with(|| Slot::new(config.clone()))
            .available
            .push_back((container, false));
        Ok(breakdown.total())
    }

    /// Pre-warms one container for a key the pool already tracks, using the
    /// slot's representative configuration. Returns `Ok(None)` if the key is
    /// unknown (e.g. its slot was GC'd since the snapshot).
    pub fn prewarm_key(
        &self,
        engine: &impl EngineRef,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        let config = self
            .shard(key)
            .lock()
            .slots
            .get(key)
            .map(|s| s.config.clone());
        match config {
            Some(config) => self.prewarm(engine, &config, now).map(Some),
            None => Ok(None),
        }
    }

    /// Retires one available container of the given type (adaptive
    /// controller's scale-down action). Returns the teardown cost, or `None`
    /// if none was available.
    pub fn retire_one(
        &self,
        engine: &impl EngineRef,
        key: &RuntimeKey,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        let popped = {
            let mut state = self.shard(key).lock();
            state
                .slots
                .get_mut(key)
                .and_then(|slot| slot.available.pop_front())
        };
        match popped {
            Some((container, _)) => engine
                .with_engine(|e| e.stop_and_remove(container, now))
                .map(Some),
            None => Ok(None),
        }
    }

    /// Forcibly terminates the *oldest* available live container across all
    /// types (§IV-B's response to too many containers / memory pressure).
    ///
    /// Two-phase: (1) scan shard by shard (one lock at a time) collecting
    /// available candidates, pick the globally oldest via the engine;
    /// (2) re-lock the owning shard and claim the victim — if a racing
    /// acquire took it in between, rescan. Returns the teardown cost, or
    /// `None` if the pool holds no available container.
    pub fn evict_oldest(
        &self,
        engine: &impl EngineRef,
        now: SimTime,
    ) -> Result<Option<SimDuration>, EngineError> {
        // Bounded retries: each retry means a racing acquire claimed our
        // candidate, which is progress for the system as a whole.
        for _ in 0..8 {
            let mut candidates: Vec<(RuntimeKey, ContainerId)> = Vec::new();
            for shard in self.shards.iter() {
                let state = shard.lock();
                for (key, slot) in &state.slots {
                    for &(id, _) in &slot.available {
                        candidates.push((key.clone(), id));
                    }
                }
            }
            if candidates.is_empty() {
                return Ok(None);
            }
            // Oldest first, ids as a deterministic tie-break. A candidate
            // retired by a racing thread simply drops out (no created_at).
            let oldest = engine.with_engine(|e| {
                candidates
                    .into_iter()
                    .filter_map(|(key, id)| e.created_at(id).map(|t| (t, id, key)))
                    .min_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)))
            });
            let Some((_, id, key)) = oldest else {
                continue;
            };
            let claimed = {
                let mut state = self.shard(&key).lock();
                state.slots.get_mut(&key).is_some_and(|slot| {
                    let before = slot.available.len();
                    slot.available.retain(|&(c, _)| c != id);
                    slot.available.len() != before
                })
            };
            if claimed {
                return engine.with_engine(|e| e.stop_and_remove(id, now)).map(Some);
            }
        }
        Ok(None)
    }

    /// `num_avail[key]`: available containers of the given type.
    pub fn num_avail(&self, key: &RuntimeKey) -> usize {
        self.shard(key)
            .lock()
            .slots
            .get(key)
            .map_or(0, |s| s.available.len())
    }

    /// In-use containers of the given type.
    pub fn num_in_use(&self, key: &RuntimeKey) -> usize {
        self.shard(key)
            .lock()
            .slots
            .get(key)
            .map_or(0, |s| s.in_use.len())
    }

    /// Total live containers tracked by the pool (available + in use).
    pub fn total_live(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.lock();
                state
                    .slots
                    .values()
                    .map(|s| s.available.len() + s.in_use.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Per-shard `(available, in_use)` container counts, indexed by shard —
    /// the telemetry layer exports these as per-shard pool-size gauges.
    pub fn shard_sizes(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.lock();
                state.slots.values().fold((0, 0), |(a, u), s| {
                    (a + s.available.len(), u + s.in_use.len())
                })
            })
            .collect()
    }

    /// Total available containers across all types.
    pub fn total_available(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.lock();
                state
                    .slots
                    .values()
                    .map(|s| s.available.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// The Fig. 7 pool-view code for a container: 1 Existing-Available, 0
    /// Existing-Not-Available, -1 Not-Existing.
    pub fn pool_code(&self, engine: &ContainerEngine, container: ContainerId) -> i8 {
        let pooled = self.shards.iter().any(|shard| {
            shard
                .lock()
                .slots
                .values()
                .any(|s| s.available.iter().any(|&(c, _)| c == container))
        });
        if pooled {
            1
        } else if engine.config(container).is_some() {
            0
        } else {
            -1
        }
    }

    /// Takes one shard's demand snapshot (`history[k][t]`), resets its
    /// watermarks for the next control interval, and garbage-collects slots
    /// that have been empty for [`Self::gc_intervals`] consecutive
    /// zero-demand snapshots. Keys with live containers are always reported,
    /// including zero-demand intervals.
    pub fn take_shard_snapshot(&self, shard: usize) -> ShardSnapshot {
        let mut demands = Vec::new();
        let mut retired = Vec::new();
        let gc_after = self.gc_intervals;
        {
            let mut state = self.shards[shard].lock();
            state.slots.retain(|key, slot| {
                let in_use = slot.in_use.len();
                let demand = slot.watermark.max(in_use);
                slot.watermark = in_use;
                if demand == 0 && in_use == 0 && slot.available.is_empty() {
                    slot.zero_streak += 1;
                    if slot.zero_streak >= gc_after {
                        retired.push(key.clone());
                        return false;
                    }
                } else {
                    slot.zero_streak = 0;
                }
                demands.push((key.clone(), demand));
                true
            });
        }
        demands.sort_by(|a, b| a.0.cmp(&b.0));
        retired.sort();
        ShardSnapshot { demands, retired }
    }

    /// Takes the demand snapshot across every shard (GC included), merged
    /// and sorted — the single-threaded controller path.
    pub fn take_demand_snapshot(&self) -> Vec<(RuntimeKey, usize)> {
        let mut out = Vec::new();
        for shard in 0..self.num_shards() {
            out.extend(self.take_shard_snapshot(shard).demands);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The keys the pool currently tracks, sorted.
    pub fn keys(&self) -> Vec<RuntimeKey> {
        let mut keys: Vec<RuntimeKey> = self
            .shards
            .iter()
            .flat_map(|shard| shard.lock().slots.keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::engine::ExecWork;
    use containersim::{HardwareProfile, ImageId};

    fn engine() -> Mutex<ContainerEngine> {
        Mutex::labeled(
            ContainerEngine::with_local_images(HardwareProfile::server()),
            "core/engine",
        )
    }

    fn cfg(image: &str) -> ContainerConfig {
        ContainerConfig::bridge(ImageId::parse(image))
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        for image in ["alpine:3.12", "python:3.8-alpine", "golang:1.13"] {
            let key = pool.key_of(&cfg(image));
            let s = pool.shard_of(&key);
            assert!(s < 4);
            assert_eq!(s, pool.shard_of(&key), "hash must be stable");
        }
    }

    #[test]
    fn acquire_release_round_trip_through_shards() {
        let e = engine();
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        let c = cfg("alpine:3.12");
        let a = pool.acquire(&e, &c, SimTime::ZERO).unwrap();
        assert!(a.cold);
        e.with_engine(|e| {
            let out = e
                .begin_exec(
                    a.container,
                    ExecWork::light(SimDuration::from_millis(1)),
                    SimTime::ZERO,
                )
                .unwrap();
            e.end_exec(a.container, SimTime::ZERO + out.latency)
                .unwrap();
        });
        pool.release(&e, a.container, SimTime::from_secs(1))
            .unwrap();
        let b = pool.acquire(&e, &c, SimTime::from_secs(2)).unwrap();
        assert!(!b.cold);
        assert_eq!(b.container, a.container);
    }

    #[test]
    fn parallel_warm_acquires_on_distinct_keys_do_not_serialize_on_one_lock() {
        // Smoke-level check that distinct keys land on distinct shards often
        // enough that 8 keys use >1 shard.
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 8);
        let shards: std::collections::HashSet<usize> = (0..8)
            .map(|i| {
                let mut c = cfg("alpine:3.12");
                c.exec.env.insert("K".into(), i.to_string());
                pool.shard_of(&pool.key_of(&c))
            })
            .collect();
        assert!(shards.len() > 1, "8 keys should spread across shards");
    }

    #[test]
    fn evict_oldest_scans_across_shards() {
        let e = engine();
        let pool = ShardedPool::with_shards(KeyPolicy::Exact, 4);
        // Three types, staggered creation: the oldest must go first even
        // though the types live on different shards.
        let configs = [
            cfg("alpine:3.12"),
            cfg("python:3.8-alpine"),
            cfg("golang:1.13"),
        ];
        for (i, c) in configs.iter().enumerate() {
            pool.prewarm(&e, c, SimTime::from_secs(i as u64)).unwrap();
        }
        let oldest = e.with_engine(|e| e.live_ids_oldest_first()[0]);
        pool.evict_oldest(&e, SimTime::from_secs(10)).unwrap();
        assert_eq!(
            e.with_engine(|e| e.state(oldest)),
            containersim::ContainerState::Removed
        );
        assert_eq!(pool.total_available(), 2);
    }
}
