#![warn(missing_docs)]

//! `hotc-sim`: run a HotC serverless scenario described by a plain-text
//! scenario file, printing per-request latencies and a summary.
//!
//! A scenario names a hardware platform, a runtime-management provider, a
//! set of functions, and a workload pattern (the §V-D request flows, a
//! Poisson process, or the Fig. 11 YouTube-shaped day). See
//! [`scenario::Scenario`] for the format, or run `hotc-sim --demo` to print
//! a commented example.
//!
//! ```text
//! hotc-sim scenario.hotc            # run a scenario file
//! hotc-sim --demo                   # print an example scenario
//! hotc-sim --demo | hotc-sim -      # ... and run it from stdin
//! ```

pub mod runner;
pub mod scenario;

pub use runner::{
    build_trace, run_scenario, run_scenario_materialized, run_scenario_parallel, ScenarioReport,
    LATENCY_DETAIL_CAP,
};
pub use scenario::{ParseError, Scenario};
