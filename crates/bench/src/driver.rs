//! Discrete-event workload driver.
//!
//! Feeds a time-ordered [`Arrival`] sequence through a gateway. Requests
//! overlap naturally: each arrival `begin`s immediately and its `finish` is
//! scheduled at the request's `t4`, so simultaneous requests occupy separate
//! containers — exactly how the parallel/burst experiments must behave.
//! Provider maintenance (`tick`) runs at a fixed interval, *before* arrivals
//! that share the same instant (the controller acts at round boundaries).

use faas::gateway::Gateway;
use faas::{InFlight, RequestTrace, RuntimeProvider};
use simclock::{SimDuration, SimTime, Simulation};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use workloads::trace::{PartitionTrace, Trace};
use workloads::Arrival;

/// Result of driving a workload to completion.
pub struct RunOutcome<P: RuntimeProvider> {
    /// The gateway after the run (provider/engine inspection).
    pub gateway: Gateway<P>,
    /// One trace per arrival, in arrival order.
    pub traces: Vec<RequestTrace>,
    /// Virtual time at which the last event completed.
    pub finished_at: SimTime,
    /// Live-container count sampled at every tick — the resource-footprint
    /// timeline used by the policy comparisons.
    pub live_samples: Vec<(SimTime, usize)>,
}

impl<P: RuntimeProvider> RunOutcome<P> {
    /// Latencies in arrival order.
    pub fn latencies(&self) -> Vec<SimDuration> {
        self.traces.iter().map(|t| t.total()).collect()
    }

    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.traces.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.traces.iter().map(|t| t.total()).sum();
        total / self.traces.len() as u64
    }

    /// Fraction of requests that cold-started.
    pub fn cold_fraction(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().filter(|t| t.cold).count() as f64 / self.traces.len() as f64
    }

    /// Fraction of requests whose function process crashed.
    pub fn failed_fraction(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().filter(|t| t.failed).count() as f64 / self.traces.len() as f64
    }

    /// Telemetry snapshot of the run: per-stage decomposition, counters,
    /// and the `pool/live` series sampled at every tick.
    pub fn metrics_snapshot(&self) -> metrics_lite::MetricsSnapshot {
        self.gateway.metrics().snapshot()
    }

    /// Mean live containers across the tick samples — a resource-footprint
    /// proxy ("container-hours") for comparing keep-warm policies.
    pub fn mean_live_containers(&self) -> f64 {
        if self.live_samples.is_empty() {
            return 0.0;
        }
        self.live_samples
            .iter()
            .map(|&(_, n)| n as f64)
            .sum::<f64>()
            / self.live_samples.len() as f64
    }
}

struct DriverState<P: RuntimeProvider> {
    gateway: Gateway<P>,
    traces: Vec<(usize, RequestTrace)>,
    live_samples: Vec<(SimTime, usize)>,
}

/// Drives `workload` through `gateway`. `route` maps an arrival's
/// `config_id` to the function name to invoke; `tick_interval` is the
/// provider maintenance cadence.
pub fn run_workload<P>(
    gateway: Gateway<P>,
    workload: &[Arrival],
    route: impl Fn(usize) -> String,
    tick_interval: SimDuration,
) -> RunOutcome<P>
where
    P: RuntimeProvider + 'static,
{
    assert!(
        workloads::is_time_ordered(workload),
        "workload must be time-ordered"
    );
    assert!(!tick_interval.is_zero(), "tick interval must be positive");

    let mut sim = Simulation::new(DriverState {
        gateway,
        traces: Vec::new(),
        live_samples: Vec::new(),
    });

    // Provider maintenance ticks, scheduled FIRST so that at equal
    // timestamps the tick precedes the arrivals (FIFO tie-break).
    let horizon = workload
        .last()
        .map(|a| a.at + tick_interval * 2)
        .unwrap_or(SimTime::ZERO);
    let mut t = SimTime::ZERO;
    while t <= horizon {
        sim.schedule_at(t, move |s, st: &mut DriverState<P>| {
            st.gateway.tick(s.now()).expect("tick must not fail");
            let live = st.gateway.engine().live_count();
            st.gateway
                .metrics()
                .sample_series("pool/live", s.now(), live as f64);
            st.live_samples.push((s.now(), live));
        });
        t += tick_interval;
    }

    for (idx, arrival) in workload.iter().enumerate() {
        let function = route(arrival.config_id);
        sim.schedule_at(arrival.at, move |s, st: &mut DriverState<P>| {
            let inflight = st
                .gateway
                .begin(&function, s.now())
                .expect("request must begin");
            s.schedule_at(inflight.t4_func_end, move |_, st: &mut DriverState<P>| {
                let trace = st.gateway.finish(inflight).expect("request must finish");
                st.traces.push((idx, trace));
            });
        });
    }

    sim.run();
    let finished_at = sim.now();
    let mut state = sim.into_state();
    state.traces.sort_by_key(|&(idx, _)| idx);
    let traces = state.traces.into_iter().map(|(_, t)| t).collect();
    RunOutcome {
        gateway: state.gateway,
        traces,
        finished_at,
        live_samples: state.live_samples,
    }
}

/// Result of streaming a [`Trace`] to completion. Unlike [`RunOutcome`],
/// there is no per-request trace vector: the whole point of the streaming
/// path is O(inflight) memory at 1e6–1e8 requests, so per-request data goes
/// through the `on_finish` callback instead.
pub struct TraceOutcome<P: RuntimeProvider> {
    /// The gateway after the run (provider/engine inspection).
    pub gateway: Gateway<P>,
    /// Total arrivals replayed.
    pub requests: u64,
    /// Virtual time at which the last event completed.
    pub finished_at: SimTime,
    /// Live-container count sampled at every tick.
    pub live_samples: Vec<(SimTime, usize)>,
    /// High-water mark of concurrently in-flight requests — the replay
    /// engine's own memory ceiling is O(this), not O(requests).
    pub max_inflight: usize,
    /// Error the trace source surfaced (file-backed sources); `None` for a
    /// clean end-of-stream.
    pub trace_error: Option<String>,
}

/// A pending finish event, ordered by `(t4, arrival seq)` — the same order
/// the materialized driver's FIFO event queue produces, since each finish is
/// scheduled the moment its arrival begins.
struct FinishAt {
    at: SimTime,
    seq: u64,
    inflight: InFlight,
}

impl PartialEq for FinishAt {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for FinishAt {}
impl PartialOrd for FinishAt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FinishAt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// What the streaming event loop needs from an arrival source beyond
/// [`Trace`]: the *reported* sequence number of each arrival (a parallel
/// worker reports the arrival's global index in the underlying stream, so
/// finish tie-breaking and per-request callbacks match the sequential
/// driver), and the tick-horizon basis once the source is exhausted (a
/// worker that owns few — or zero — arrivals must still tick to the global
/// horizon, or merged `pool/live` series would diverge).
trait ReplaySource {
    /// Instant of the next arrival, without consuming it.
    fn peek_at(&mut self) -> Option<SimTime>;
    /// Pulls the next arrival together with its reported sequence number.
    fn next(&mut self) -> Option<(Arrival, u64)>;
    /// Timestamp of the underlying stream's last arrival, `None` if the
    /// stream was empty. Only meaningful once `peek_at` returns `None`,
    /// which is the only time the loop asks.
    fn horizon_basis(&self) -> Option<SimTime>;
    /// First error the source hit, if any.
    fn take_error(&mut self) -> Option<String>;
}

/// The sequential source: a plain trace with a local pull-index counter.
struct PlainSource<'a> {
    trace: &'a mut dyn Trace,
    seq: u64,
    last_at: Option<SimTime>,
}

impl ReplaySource for PlainSource<'_> {
    fn peek_at(&mut self) -> Option<SimTime> {
        self.trace.peek().map(|a| a.at)
    }
    fn next(&mut self) -> Option<(Arrival, u64)> {
        let a = self.trace.next_arrival()?;
        let s = self.seq;
        self.seq += 1;
        self.last_at = Some(a.at);
        Some((a, s))
    }
    fn horizon_basis(&self) -> Option<SimTime> {
        self.last_at
    }
    fn take_error(&mut self) -> Option<String> {
        self.trace.take_error()
    }
}

/// One parallel worker's source: a [`PartitionTrace`] reporting global
/// arrival indices and the global horizon basis.
struct PartSource<'a, T: Trace> {
    part: &'a mut PartitionTrace<T>,
}

impl<T: Trace> ReplaySource for PartSource<'_, T> {
    fn peek_at(&mut self) -> Option<SimTime> {
        self.part.peek().map(|a| a.at)
    }
    fn next(&mut self) -> Option<(Arrival, u64)> {
        self.part.next_indexed()
    }
    fn horizon_basis(&self) -> Option<SimTime> {
        self.part.horizon_basis()
    }
    fn take_error(&mut self) -> Option<String> {
        self.part.take_error()
    }
}

/// Streams `trace` through `gateway` without materializing it: arrivals are
/// pulled lazily, so resident memory is O(inflight + sources), independent of
/// request count.
///
/// Event semantics are *identical* to [`run_workload`] (verified by
/// equivalence tests): ticks run at every `tick_interval` from t=0 through
/// `last_arrival + 2×tick`, and at equal instants the order is
/// tick < arrival < finish, with arrivals in trace order and finishes in
/// `(t4, arrival seq)` order. `on_finish(seq, trace)` fires once per request
/// at its finish event, where `seq` is the arrival's 0-based pull index.
pub fn run_trace<P>(
    gateway: Gateway<P>,
    trace: &mut dyn Trace,
    route: impl Fn(usize) -> String,
    tick_interval: SimDuration,
    on_finish: impl FnMut(u64, &RequestTrace),
) -> TraceOutcome<P>
where
    P: RuntimeProvider + 'static,
{
    let mut source = PlainSource {
        trace,
        seq: 0,
        last_at: None,
    };
    run_trace_core(gateway, &mut source, route, tick_interval, on_finish)
}

/// Streams one worker's partition of a trace through that worker's own
/// gateway — the per-thread body of the parallel replay driver.
///
/// The event loop is the *same code* as [`run_trace`]; only the source
/// differs. `on_finish` receives the arrival's **global** index in the
/// underlying stream (not a worker-local count), so merged per-request data
/// sorts back into sequential arrival order, and finishes within this worker
/// tie-break by `(t4, global seq)` exactly as the sequential driver orders
/// the same subset. Ticks run at every `tick_interval` from t=0 through the
/// *global* horizon (`PartitionTrace` tracks the underlying stream's last
/// arrival), so every worker samples `pool/live` at the identical instants
/// and the merged series lines up point-for-point with the sequential one.
/// `TraceOutcome::requests` counts only this worker's arrivals.
pub fn run_trace_partition<P, T>(
    gateway: Gateway<P>,
    part: &mut PartitionTrace<T>,
    route: impl Fn(usize) -> String,
    tick_interval: SimDuration,
    on_finish: impl FnMut(u64, &RequestTrace),
) -> TraceOutcome<P>
where
    P: RuntimeProvider + 'static,
    T: Trace,
{
    let mut source = PartSource { part };
    run_trace_core(gateway, &mut source, route, tick_interval, on_finish)
}

/// Runs `worker(w)` for `w in 0..threads` on scoped OS threads and returns
/// the results in worker-index order — the deterministic reduction order the
/// parallel replay merge depends on. With one thread the worker runs inline
/// (the degenerate case exercises the same worker body with no spawn cost).
/// A worker panic propagates to the caller.
pub fn run_partitioned<W, F>(threads: usize, worker: F) -> Vec<W>
where
    W: Send,
    F: Fn(usize) -> W + Sync,
{
    assert!(threads >= 1, "need at least one replay worker");
    if threads == 1 {
        return vec![worker(0)];
    }
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

fn run_trace_core<P, S>(
    gateway: Gateway<P>,
    source: &mut S,
    route: impl Fn(usize) -> String,
    tick_interval: SimDuration,
    mut on_finish: impl FnMut(u64, &RequestTrace),
) -> TraceOutcome<P>
where
    P: RuntimeProvider + 'static,
    S: ReplaySource,
{
    assert!(!tick_interval.is_zero(), "tick interval must be positive");

    let mut gateway = gateway;
    let mut live_samples = Vec::new();
    let mut pending: BinaryHeap<Reverse<FinishAt>> = BinaryHeap::new();
    let mut next_tick = SimTime::ZERO;
    let mut ticks_done = false;
    let mut last_arrival_at: Option<SimTime> = None;
    let mut count: u64 = 0;
    let mut max_inflight = 0usize;
    let mut finished_at = SimTime::ZERO;

    // Event classes at equal instants: tick (0) < arrival (1) < finish (2),
    // mirroring the materialized driver's schedule order (ticks first, then
    // arrivals, finishes scheduled at run time).
    loop {
        let tick_at = if ticks_done { None } else { Some(next_tick) };
        let arrival_at = source.peek_at();
        let finish_at = pending.peek().map(|Reverse(f)| f.at);

        let candidates = [
            tick_at.map(|t| (t, 0u8)),
            arrival_at.map(|t| (t, 1u8)),
            finish_at.map(|t| (t, 2u8)),
        ];
        let Some(&(now, class)) = candidates.iter().flatten().min() else {
            break;
        };

        match class {
            0 => {
                gateway.tick(now).expect("tick must not fail");
                let live = gateway.engine().live_count();
                gateway
                    .metrics()
                    .sample_series("pool/live", now, live as f64);
                live_samples.push((now, live));
                next_tick += tick_interval;
                if arrival_at.is_none() {
                    // Stream exhausted: the horizon is now known, exactly as
                    // the materialized driver computed it up front. (While
                    // arrivals remain, every tick fired so far is <= the
                    // final horizon by construction.) An empty underlying
                    // stream has no basis: the single t=0 tick is the run.
                    let horizon = source
                        .horizon_basis()
                        .map(|last| last + tick_interval * 2)
                        .unwrap_or(SimTime::ZERO);
                    if next_tick > horizon {
                        ticks_done = true;
                    }
                }
            }
            1 => {
                let (arrival, seq) = source.next().expect("peeked arrival must exist");
                assert!(
                    last_arrival_at.is_none_or(|t| arrival.at >= t),
                    "trace must be time-ordered"
                );
                last_arrival_at = Some(arrival.at);
                let function = route(arrival.config_id);
                let inflight = gateway.begin(&function, now).expect("request must begin");
                pending.push(Reverse(FinishAt {
                    at: inflight.t4_func_end,
                    seq,
                    inflight,
                }));
                max_inflight = max_inflight.max(pending.len());
                count += 1;
            }
            _ => {
                let Reverse(f) = pending.pop().expect("peeked finish must exist");
                let trace_rec = gateway.finish(f.inflight).expect("request must finish");
                on_finish(f.seq, &trace_rec);
            }
        }
        finished_at = now;
    }

    TraceOutcome {
        gateway,
        requests: count,
        finished_at,
        live_samples,
        max_inflight,
        trace_error: source.take_error(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use containersim::{ContainerEngine, HardwareProfile};
    use faas::policy::{ColdStartAlways, FixedKeepAlive};
    use faas::AppProfile;
    use hotc::HotC;
    use workloads::patterns;

    fn gateway<P: RuntimeProvider>(provider: P) -> Gateway<P> {
        let engine = ContainerEngine::with_local_images(HardwareProfile::server());
        let mut gw = Gateway::new(engine, provider);
        gw.register_app(AppProfile::random_number());
        gw
    }

    #[test]
    fn serial_workload_all_traced() {
        let w = patterns::serial(SimDuration::from_secs(30), 10, 0);
        let out = run_workload(
            gateway(FixedKeepAlive::aws_default()),
            &w,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.traces.len(), 10);
        assert!(out.traces[0].cold);
        assert!(out.traces[1..].iter().all(|t| !t.cold));
        // Traces are in arrival order.
        for w in out.traces.windows(2) {
            assert!(w[0].t1_gateway_in <= w[1].t1_gateway_in);
        }
    }

    #[test]
    fn overlapping_arrivals_occupy_separate_containers() {
        let w = patterns::parallel_clients(1, 1, SimDuration::from_secs(30));
        // Build a burst of 8 simultaneous arrivals manually.
        let burst = patterns::burst(8, 1, &[], 1, SimDuration::from_secs(30), 0);
        assert_eq!(burst.len(), 8);
        let out = run_workload(
            gateway(ColdStartAlways::new()),
            &burst,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.traces.len(), 8);
        assert!(out.traces.iter().all(|t| t.cold));
        drop(w);
    }

    #[test]
    fn hotc_run_reuses_and_ticks() {
        let w = patterns::serial(SimDuration::from_secs(30), 20, 0);
        let out = run_workload(
            gateway(HotC::with_defaults()),
            &w,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        assert!(out.cold_fraction() <= 0.1);
        assert!(out.mean_latency() < SimDuration::from_millis(120));
        assert!(out.finished_at >= SimTime::from_secs(19 * 30));
    }

    #[test]
    fn driver_populates_metrics_snapshot() {
        let w = patterns::serial(SimDuration::from_secs(30), 10, 0);
        let out = run_workload(
            gateway(FixedKeepAlive::aws_default()),
            &w,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
        let snap = out.metrics_snapshot();
        assert_eq!(snap.counter("gateway/requests"), Some(10));
        assert_eq!(snap.counter("gateway/cold_starts"), Some(1));
        assert_eq!(snap.stage_count("all", metrics_lite::Stage::Exec), 10);
        // One pool/live point per tick, mirroring `live_samples`.
        let (_, series) = snap
            .series
            .iter()
            .find(|(n, _)| n == "pool/live")
            .expect("pool/live series present");
        assert_eq!(series.points().len(), out.live_samples.len());
        let trace_total: u64 = out.traces.iter().map(|t| t.total().as_nanos()).sum();
        assert_eq!(snap.scope_total_ns("all"), trace_total);
    }

    /// Streaming and materialized drivers must be *event-identical*: same
    /// finish traces in the same order, same tick samples, same final
    /// telemetry bytes.
    fn assert_run_equivalent<P, F>(make_provider: F, workload: Vec<Arrival>)
    where
        P: RuntimeProvider + 'static,
        F: Fn() -> P,
    {
        let route = |_| "random-number".to_string();
        let tick = SimDuration::from_secs(30);
        let materialized = run_workload(gateway(make_provider()), &workload, route, tick);

        let mut collected: Vec<(u64, RequestTrace)> = Vec::new();
        let mut source = workloads::trace::VecTrace::new(workload);
        let streamed = run_trace(
            gateway(make_provider()),
            &mut source,
            route,
            tick,
            |seq, t| collected.push((seq, *t)),
        );

        assert_eq!(streamed.requests as usize, materialized.traces.len());
        assert_eq!(streamed.finished_at, materialized.finished_at);
        assert_eq!(streamed.live_samples, materialized.live_samples);
        assert!(streamed.trace_error.is_none());
        collected.sort_by_key(|&(seq, _)| seq);
        for (i, (seq, t)) in collected.iter().enumerate() {
            assert_eq!(*seq as usize, i);
            assert_eq!(t, &materialized.traces[i], "trace {i} diverged");
        }
        // Byte-identical telemetry: every stage histogram, counter, and the
        // pool/live series saw the same events in the same order.
        assert_eq!(
            format!("{:?}", streamed.gateway.metrics().snapshot()),
            format!("{:?}", materialized.metrics_snapshot())
        );
    }

    #[test]
    fn streaming_replay_is_event_identical_to_materialized() {
        // Overlapping bursts exercise the finish heap; serial exercises the
        // tick/arrival interleave; empty exercises the horizon edge.
        assert_run_equivalent(
            HotC::with_defaults,
            patterns::burst(8, 10, &[1, 3], 6, SimDuration::from_secs(30), 0),
        );
        assert_run_equivalent(
            HotC::with_defaults,
            patterns::serial(SimDuration::from_secs(30), 20, 0),
        );
        assert_run_equivalent(FixedKeepAlive::aws_default, Vec::new());
        assert_run_equivalent(
            ColdStartAlways::new,
            patterns::burst(8, 1, &[], 1, SimDuration::from_secs(30), 0),
        );
    }

    #[test]
    fn run_trace_reports_inflight_high_water_mark() {
        let burst = patterns::burst(8, 1, &[], 1, SimDuration::from_secs(30), 0);
        let mut source = workloads::trace::VecTrace::new(burst);
        let out = run_trace(
            gateway(ColdStartAlways::new()),
            &mut source,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
            |_, _| {},
        );
        // All 8 arrive at t=0 and overlap.
        assert_eq!(out.max_inflight, 8);
        assert_eq!(out.requests, 8);
    }

    #[test]
    fn run_trace_surfaces_source_errors() {
        let csv = "100,alpha\n50,alpha\n";
        let mut source = workloads::trace::OpenDcTrace::new(csv.as_bytes());
        let out = run_trace(
            gateway(ColdStartAlways::new()),
            &mut source,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
            |_, _| {},
        );
        assert_eq!(out.requests, 1);
        assert!(out
            .trace_error
            .as_deref()
            .is_some_and(|e| e.contains("non-decreasing")));
    }

    /// The 1-thread degenerate parallel run goes through `PartitionTrace` +
    /// `run_trace_partition` + `run_partitioned` and must be
    /// indistinguishable from the sequential streaming driver.
    #[test]
    fn single_worker_partition_equals_sequential() {
        let w = patterns::burst(8, 10, &[1, 3], 6, SimDuration::from_secs(30), 0);
        let tick = SimDuration::from_secs(30);
        let route = |_| "random-number".to_string();

        let mut seq_finishes: Vec<(u64, RequestTrace)> = Vec::new();
        let mut source = workloads::trace::VecTrace::new(w.clone());
        let sequential = run_trace(
            gateway(HotC::with_defaults()),
            &mut source,
            route,
            tick,
            |s, t| {
                seq_finishes.push((s, *t));
            },
        );

        let assign = std::sync::Arc::new(vec![0usize]);
        let mut results = run_partitioned(1, |worker| {
            let mut part = PartitionTrace::new(
                workloads::trace::VecTrace::new(w.clone()),
                std::sync::Arc::clone(&assign),
                worker,
            );
            let mut finishes: Vec<(u64, RequestTrace)> = Vec::new();
            let out = run_trace_partition(
                gateway(HotC::with_defaults()),
                &mut part,
                route,
                tick,
                |s, t| finishes.push((s, *t)),
            );
            (out, finishes)
        });
        let (out, finishes) = results.remove(0);

        assert_eq!(out.requests, sequential.requests);
        assert_eq!(out.finished_at, sequential.finished_at);
        assert_eq!(out.live_samples, sequential.live_samples);
        assert_eq!(out.max_inflight, sequential.max_inflight);
        assert_eq!(finishes, seq_finishes);
        assert_eq!(
            format!("{:?}", out.gateway.metrics().snapshot()),
            format!("{:?}", sequential.gateway.metrics().snapshot())
        );
    }

    /// Two workers partitioning a two-config stream: the merged finishes (by
    /// global index) equal the sequential run's, every worker ticks at the
    /// sequential instants, and per-tick live counts sum to the sequential
    /// count.
    #[test]
    fn two_workers_cover_stream_and_share_tick_schedule() {
        // Alternating configs, overlapping lifetimes.
        let w: Vec<Arrival> = (0..20u64)
            .map(|i| Arrival {
                at: SimTime::from_millis(i * 700),
                config_id: (i % 2) as usize,
            })
            .collect();
        let tick = SimDuration::from_secs(30);
        let route = |_| "random-number".to_string();

        let mut seq_finishes: Vec<(u64, RequestTrace)> = Vec::new();
        let mut source = workloads::trace::VecTrace::new(w.clone());
        let sequential = run_trace(
            gateway(ColdStartAlways::new()),
            &mut source,
            route,
            tick,
            |s, t| seq_finishes.push((s, *t)),
        );

        let assign = std::sync::Arc::new(vec![0usize, 1]);
        let results = run_partitioned(2, |worker| {
            let mut part = PartitionTrace::new(
                workloads::trace::VecTrace::new(w.clone()),
                std::sync::Arc::clone(&assign),
                worker,
            );
            let mut finishes: Vec<(u64, RequestTrace)> = Vec::new();
            let out = run_trace_partition(
                gateway(ColdStartAlways::new()),
                &mut part,
                route,
                tick,
                |s, t| finishes.push((s, *t)),
            );
            (out, finishes)
        });

        assert_eq!(results.iter().map(|(o, _)| o.requests).sum::<u64>(), 20);
        let mut merged: Vec<(u64, RequestTrace)> = results
            .iter()
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        merged.sort_by_key(|&(s, _)| s);
        seq_finishes.sort_by_key(|&(s, _)| s);
        assert_eq!(merged, seq_finishes);

        let max_finished = results.iter().map(|(o, _)| o.finished_at).max();
        assert_eq!(max_finished, Some(sequential.finished_at));
        for (out, _) in &results {
            let instants: Vec<SimTime> = out.live_samples.iter().map(|&(t, _)| t).collect();
            let seq_instants: Vec<SimTime> =
                sequential.live_samples.iter().map(|&(t, _)| t).collect();
            assert_eq!(instants, seq_instants, "tick schedules must be global");
        }
        for (i, &(at, live)) in sequential.live_samples.iter().enumerate() {
            let summed: usize = results.iter().map(|(o, _)| o.live_samples[i].1).sum();
            assert_eq!(summed, live, "live count diverged at {at:?}");
        }
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_trace_rejected_mid_stream() {
        struct Backwards(usize);
        impl Trace for Backwards {
            fn peek(&mut self) -> Option<Arrival> {
                self.items().get(self.0).copied()
            }
            fn next_arrival(&mut self) -> Option<Arrival> {
                let out = self.items().get(self.0).copied();
                if out.is_some() {
                    self.0 += 1;
                }
                out
            }
            fn remaining_hint(&self) -> (u64, Option<u64>) {
                (0, None)
            }
        }
        impl Backwards {
            fn items(&self) -> Vec<Arrival> {
                vec![
                    Arrival {
                        at: SimTime::from_secs(5),
                        config_id: 0,
                    },
                    Arrival {
                        at: SimTime::from_secs(1),
                        config_id: 0,
                    },
                ]
            }
        }
        let _ = run_trace(
            gateway(ColdStartAlways::new()),
            &mut Backwards(0),
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
            |_, _| {},
        );
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_workload_rejected() {
        let w = vec![
            workloads::Arrival {
                at: SimTime::from_secs(5),
                config_id: 0,
            },
            workloads::Arrival {
                at: SimTime::from_secs(1),
                config_id: 0,
            },
        ];
        let _ = run_workload(
            gateway(ColdStartAlways::new()),
            &w,
            |_| "random-number".to_string(),
            SimDuration::from_secs(30),
        );
    }
}
